"""Event egress: a stadium empties and everyone wants a ride at once.

Demonstrates the pulse workload, driver cancellations mid-replay, and how
the per-cluster sorted index absorbs a burst of offers/requests at a single
location.

Run:  python examples/event_egress.py
"""

from repro import XARConfig, XAREngine, build_region, manhattan_city
from repro.sim import RideShareSimulator, XARAdapter
from repro.sim.simulator import SimulatorConfig
from repro.workloads import hotspot_pulse_workload, trips_to_requests


def main():
    city = manhattan_city(n_avenues=16, n_streets=50)
    region = build_region(city, XARConfig.validated())

    # 800 people leave the stadium within 15 minutes, heading everywhere.
    trips = hotspot_pulse_workload(
        city, n_trips=800, pulse_start_s=22 * 3600.0, pulse_length_s=900.0, seed=9
    )
    requests = trips_to_requests(trips, window_s=900.0, walk_threshold_m=800.0)
    print(f"Pulse: {len(requests)} requests in 15 minutes from one epicentre\n")

    engine = XAREngine(region)
    config = SimulatorConfig(cancellation_rate=0.05, cancellation_seed=1)
    report = RideShareSimulator(XARAdapter(engine), config).run(requests)
    print(report.describe())
    print(f"driver cancellations injected: {report.n_cancelled}")

    stats = engine.index_stats()
    print(f"\nindex after the pulse: {stats}")
    print(
        f"{report.n_booked} of {report.n_requests} attendees pooled "
        f"({100 * report.n_booked / report.n_requests:.0f}%), needing "
        f"{report.n_created} cars instead of {report.n_requests}."
    )


if __name__ == "__main__":
    main()
