"""Multi-modal trip planning with ride sharing (Section IX).

Builds a transit network (synthetic GTFS: subway + bus lines), plans a
commute with the multimodal planner, then shows both integration modes:

* Aider — infeasible segments (long walks / waits) are patched with shared
  rides;
* Enhancer — ride substitutions over hop combinations reduce hops and time.

Run:  python examples/multimodal_commute.py
"""

import random

from repro import XARConfig, XAREngine, build_region, manhattan_city
from repro.mmtp import AiderMode, EnhancerMode, MultiModalPlanner, synthetic_feed


def main():
    print("Building city, transit feed, and ride-share supply...")
    city = manhattan_city(n_avenues=16, n_streets=50)
    region = build_region(city, XARConfig.validated())
    feed = synthetic_feed(city, n_subway_lines=6, n_bus_lines=12, seed=23)
    planner = MultiModalPlanner(feed)
    print(f"  transit: {feed.n_routes} lines, {feed.n_stops} stops")

    # Ride-share supply: 150 drivers through the morning.
    engine = XAREngine(region)
    rng = random.Random(7)
    nodes = list(city.nodes())
    for _i in range(150):
        a, b = rng.sample(nodes, 2)
        try:
            engine.create_ride(
                city.position(a), city.position(b),
                departure_s=rng.uniform(7.9 * 3600, 8.8 * 3600),
            )
        except Exception:
            continue
    print(f"  ride share: {engine.n_active_rides} offers\n")

    source = city.position(3)
    destination = city.position(city.node_count - 7)
    depart = 8 * 3600.0

    print("=== Plain public-transport plan ===")
    base_plan = planner.plan(source, destination, depart)
    print(base_plan.describe())

    print("\n=== Aider mode (patch infeasible segments) ===")
    aider = AiderMode(planner, engine, max_walk_leg_m=700.0, max_wait_s=420.0, book=False)
    aided = aider.improve(source, destination, depart)
    print(aided.describe())

    print("\n=== Enhancer mode (ride over hop combinations) ===")
    enhancer = EnhancerMode(planner, engine)
    enhanced = enhancer.enhance(source, destination, depart)
    print(enhanced.describe())

    saved = base_plan.travel_time_s - enhanced.travel_time_s
    if saved > 1:
        print(f"\nEnhancer saved {saved / 60:.1f} minutes over plain PT.")
    else:
        print("\nNo ride improved this plan — PT was already competitive.")


if __name__ == "__main__":
    main()
