"""Head-to-head: XAR vs the T-Share baseline on the same request stream.

Reproduces the Fig. 4 comparison in miniature: search / create / book
latencies for both systems, plus the look-to-book extrapolation of Fig. 5b.

Run:  python examples/xar_vs_tshare.py [n_requests]
"""

import sys

from repro import TShareEngine, XARConfig, XAREngine, build_region, manhattan_city
from repro.sim import RideShareSimulator, TShareAdapter, XARAdapter
from repro.workloads import NYCWorkloadGenerator, trips_to_requests


def main(n_requests: int = 400):
    city = manhattan_city(n_avenues=16, n_streets=50)
    region = build_region(city, XARConfig.validated())
    trips = NYCWorkloadGenerator(city, seed=12).generate(n_requests, 6.0, 12.0)
    requests = trips_to_requests(trips)

    print(f"Replaying {n_requests} requests on both systems...\n")
    xar_report = RideShareSimulator(XARAdapter(XAREngine(region))).run(requests)
    tshare_report = RideShareSimulator(
        TShareAdapter(TShareEngine(city, cell_m=1000.0))
    ).run(requests)

    for report in (xar_report, tshare_report):
        print(report.describe())
        print()

    xar_search = sum(xar_report.timings.search_s) / len(xar_report.timings.search_s)
    ts_search = sum(tshare_report.timings.search_s) / len(tshare_report.timings.search_s)
    print(f"Search speedup (XAR over T-Share): {ts_search / xar_search:.0f}x")

    print("\nLook-to-book extrapolation (Fig. 5b): total seconds for r looks + 1 book")
    xar_book = (
        sum(xar_report.timings.book_s) / len(xar_report.timings.book_s)
        if xar_report.timings.book_s
        else 0.0
    )
    ts_book = (
        sum(tshare_report.timings.book_s) / len(tshare_report.timings.book_s)
        if tshare_report.timings.book_s
        else 0.0
    )
    print(f"{'r':>6}  {'XAR (s)':>10}  {'T-Share (s)':>12}")
    for r in (1, 10, 100, 1000):
        print(
            f"{r:>6}  {r * xar_search + xar_book:>10.4f}  "
            f"{r * ts_search + ts_book:>12.4f}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
