"""Quickstart: build a city, offer rides, search without shortest paths, book.

Run:  python examples/quickstart.py
"""

from repro import XARConfig, XAREngine, build_region, manhattan_city


def main():
    # 1. A synthetic Manhattan-style city (the OSM substitute): 12 avenues x
    #    40 streets, one-way streets, two-way avenues.
    print("Building city and discretization...")
    city = manhattan_city(n_avenues=12, n_streets=40)

    # 2. The three-tier discretization: grids -> landmarks -> clusters.
    #    delta_m is the cluster tightness target; the guarantee is 4*delta.
    config = XARConfig.validated(delta_m=250.0)
    region = build_region(city, config)
    print(
        f"  {city.node_count} intersections, {region.n_landmarks} landmarks, "
        f"{region.n_clusters} clusters"
    )
    print(
        f"  worst intra-cluster distance: {region.epsilon_realised:.0f} m "
        f"(guarantee: {config.epsilon_m:.0f} m)"
    )

    # 3. The runtime engine.
    engine = XAREngine(region)

    # 4. A driver offers a ride across town departing at 8:00.
    depart = 8 * 3600.0
    ride = engine.create_ride(
        source=city.position(0),
        destination=city.position(city.node_count - 1),
        departure_s=depart,
        detour_limit_m=3000.0,
        seats=3,
    )
    print(f"\nOffered: {ride}")

    # 5. A commuter wants to travel between two points near that route,
    #    departing 8:00-8:15, willing to walk up to 600 m in total.
    request = engine.make_request(
        source=city.position(45),
        destination=city.position(330),
        window_start_s=depart,
        window_end_s=depart + 900.0,
        walk_threshold_m=600.0,
    )

    # 6. Search.  No shortest path is computed here — only sorted-list and
    #    distance-matrix lookups.
    matches = engine.search(request)
    print(f"\nSearch found {len(matches)} match(es)")
    for match in matches:
        print(
            f"  ride {match.ride_id}: walk {match.walk_source_m:.0f} m to "
            f"landmark {match.pickup_landmark}, pickup ~{match.eta_pickup_s/3600:.2f}h, "
            f"drop near landmark {match.dropoff_landmark} "
            f"(+{match.walk_destination_m:.0f} m walk), "
            f"estimated ride detour {match.detour_estimate_m:.0f} m"
        )

    if not matches:
        print("No match this time — the request becomes a new ride offer.")
        return

    # 7. Book the best match.  This is where shortest paths run (at most 4).
    record = engine.book(request, matches[0])
    print(
        f"\nBooked on ride {record.ride_id}: actual detour "
        f"{record.detour_actual_m:.0f} m vs estimated "
        f"{record.detour_estimate_m:.0f} m "
        f"(approximation error {record.approximation_error_m:.0f} m, "
        f"guarantee <= {4 * config.epsilon_m:.0f} m), "
        f"{record.shortest_paths_computed} shortest paths computed"
    )
    print(f"Ride after booking: {ride}")

    # 8. Track the ride mid-journey: clusters behind it stop matching.
    halfway = ride.departure_s + ride.duration_s / 2
    engine.track(ride.ride_id, halfway)
    print(f"\nTracked to t={halfway/3600:.2f}h; index now: {engine.index_stats()}")


if __name__ == "__main__":
    main()
