"""Friend-priority ride matching (the Section VII safety motivation).

Builds a small-world social graph over commuters, registers ride offers with
driver identities, and shows how the same search results re-rank when the
requester's social circle is taken into account.

Run:  python examples/social_matching.py
"""

import random

from repro import (
    XARConfig,
    XAREngine,
    build_region,
    manhattan_city,
    small_world_network,
    social_ranking,
)


def main():
    city = manhattan_city(n_avenues=14, n_streets=44)
    region = build_region(city, XARConfig.validated())
    engine = XAREngine(region)

    # A 200-user small world; user 0 is our requester.
    social = small_world_network(200, mean_degree=6, seed=3)
    requester = 0
    friends = social.friends(requester)
    print(f"requester {requester} has {len(friends)} friends: {sorted(friends)}\n")

    # 120 ride offers from random drivers in the same population.
    rng = random.Random(17)
    nodes = list(city.nodes())
    for _i in range(120):
        a, b = rng.sample(nodes, 2)
        try:
            engine.create_ride(
                city.position(a), city.position(b),
                departure_s=rng.uniform(8 * 3600, 8.6 * 3600),
                driver_id=rng.randrange(200),
            )
        except Exception:
            continue

    ranking = social_ranking(social, requester, engine.driver_of)
    shown = 0
    for _trial in range(200):
        a, b = rng.sample(nodes, 2)
        request = engine.make_request(
            city.position(a), city.position(b), 8 * 3600.0, 8.75 * 3600.0
        )
        default = engine.search(request)
        if len(default) < 3:
            continue
        ranked = engine.search(request, ranking=ranking)
        tiers = []
        for match in ranked:
            driver = engine.driver_of(match.ride_id)
            hops = social.hop_distance(requester, driver, max_hops=2)
            tier = {1: "friend", 2: "friend-of-friend"}.get(hops, "stranger")
            tiers.append((match.ride_id, driver, tier, round(match.total_walk_m)))
        if any(t[2] != "stranger" for t in tiers):
            print("request with social matches — ranked options:")
            for ride_id, driver, tier, walk in tiers:
                print(f"  ride {ride_id:3d}  driver {driver:3d}  {tier:<16} walk {walk} m")
            default_first = default[0].ride_id
            ranked_first = ranked[0].ride_id
            if default_first != ranked_first:
                print(
                    f"  -> social ranking promoted ride {ranked_first} over the "
                    f"least-walk default {default_first}\n"
                )
            else:
                print("  -> best option unchanged (already a friend)\n")
            shown += 1
            if shown >= 3:
                break
    if shown == 0:
        print("No request matched a friend's ride this run — re-seed and retry.")


if __name__ == "__main__":
    main()
