"""Render a city's discretization and one ride's corridor as SVG files.

Produces ``city_region.svg`` (landmarks coloured by cluster over the road
grid) and ``city_ride.svg`` (a ride's route with its pass-through — green —
and reachable — orange — cluster landmarks).

Run:  python examples/draw_city.py [output_dir]
"""

import pathlib
import sys

from repro import XARConfig, XAREngine, build_region, manhattan_city
from repro.visualize import render_region_svg, render_ride_svg


def main(output_dir: str = "."):
    out = pathlib.Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)

    city = manhattan_city(n_avenues=14, n_streets=40)
    region = build_region(city, XARConfig.validated())
    print(
        f"city: {city.node_count} intersections; "
        f"{region.n_landmarks} landmarks in {region.n_clusters} clusters"
    )

    region_path = out / "city_region.svg"
    render_region_svg(region, region_path)
    print(f"wrote {region_path}")

    engine = XAREngine(region)
    ride = engine.create_ride(
        city.position(0), city.position(city.node_count - 1),
        departure_s=8 * 3600.0, detour_limit_m=2500.0,
    )
    entry = engine.ride_entries[ride.ride_id]
    ride_path = out / "city_ride.svg"
    render_ride_svg(region, ride, ride_path, entry=entry)
    print(
        f"wrote {ride_path}  ({len(entry.pass_through)} pass-through, "
        f"{len(entry.reachable)} reachable clusters)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
