"""Morning rush replay: the paper's core simulation on a synthetic workload.

Replays an NYC-style request stream (hotspots + rush-hour peaks) against
XAR: every request searches for a shared ride, books the least-walk match or
becomes a new driver.  Prints matching statistics, the detour-approximation
CDF milestones of Fig. 3a, and search-time percentiles.

Run:  python examples/morning_rush.py [n_requests]
"""

import sys

from repro import XARConfig, XAREngine, build_region, manhattan_city
from repro.sim import RideShareSimulator, XARAdapter
from repro.sim.metrics import fraction_below, percentile
from repro.workloads import NYCWorkloadGenerator, trips_to_requests


def main(n_requests: int = 1500):
    print(f"Simulating {n_requests} morning-rush ride requests...\n")
    city = manhattan_city(n_avenues=16, n_streets=50)
    region = build_region(city, XARConfig.validated())
    generator = NYCWorkloadGenerator(city, seed=42)
    trips = generator.generate(n_requests, start_hour=6.0, end_hour=10.0)
    requests = trips_to_requests(trips, window_s=600.0, walk_threshold_m=800.0)

    engine = XAREngine(region)
    simulator = RideShareSimulator(XARAdapter(engine))
    report = simulator.run(requests)

    print(report.describe())

    errors = report.detour_approx_errors_m
    epsilon = region.config.epsilon_m
    if errors:
        print("\nDetour approximation quality (Fig. 3a):")
        print(f"  epsilon = {epsilon:.0f} m")
        print(f"  <= eps  : {100 * fraction_below(errors, epsilon):.1f}%  (paper: 98%)")
        print(f"  <= 2eps : {100 * fraction_below(errors, 2 * epsilon):.1f}%  (paper: 99.9%)")
        print(f"  <= 4eps : {100 * fraction_below(errors, 4 * epsilon):.1f}%  (theory: 100%)")

    searches_ms = [1000.0 * s for s in report.timings.search_s]
    print("\nSearch latency (Fig. 4a regime):")
    for q in (50, 95, 99):
        print(f"  p{q}: {percentile(searches_ms, q):.3f} ms")

    sharing = report.n_booked / report.n_requests
    print(
        f"\n{report.n_booked} of {report.n_requests} commuters shared a ride "
        f"({100 * sharing:.1f}%); {report.n_created} cars on the road instead "
        f"of {report.n_requests}."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1500)
