"""Command-line interface: ``python -m repro.cli <command>`` (or ``xar``).

Commands mirror a deployment's lifecycle:

* ``build-city``    generate a synthetic city and save it (OSM substitute),
* ``build-region``  run the pre-processing pipeline and persist the region,
* ``info``          inspect a saved region,
* ``simulate``      replay an NYC-style workload on XAR or T-Share,
* ``loadtest``      drive the sharded service with the load generator
  (``--procs`` promotes shards to supervised subprocesses, ``--remote URL``
  drives a running gateway over HTTP),
* ``serve``         run the process-shard fleet behind the async HTTP
  gateway until SIGTERM,
* ``metrics``       replay a workload on an instrumented engine and dump
  its metrics (Prometheus text or JSON),
* ``compare``       head-to-head XAR vs T-Share on one stream,
* ``modes``         the four-transport-mode comparison (Fig. 6),
* ``fuzz``          differential-fuzz a seeded op sequence across engine
  façades against the brute-force oracle (non-zero exit on divergence),
* ``scenario``      run, sweep or list the declarative scenario matrix
  (``run`` executes one pinned name or a spec file, ``sweep`` executes
  the whole pinned grid and writes per-scenario reports, ``list`` shows
  what is pinned),
* ``recover``       rebuild an engine from a write-ahead log (+ optional
  checkpoint) and report what replay did,
* ``wal-dump``      human-readable dump of a write-ahead log, torn-tail
  detection included.

The ``loadtest`` command grows durability knobs: ``--durable DIR`` gives
every shard a WAL + checkpoints under ``DIR`` and ``--crash-every N`` kills
a rotating shard every N requests mid-run — the failover supervisor must
recover each one with zero lost acknowledged state.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from typing import List, Optional

from .baselines import TShareEngine
from .batch import BatchConfig, BatchMatcher
from .config import XARConfig
from .core import XAREngine
from .discretization import build_region, load_region, region_digest, save_region
from .durability import (
    DurabilityConfig,
    iter_frames,
    read_topology,
    recover_engine,
    topology_path,
)
from .mmtp import MultiModalPlanner, synthetic_feed
from .obs import MetricsRegistry, to_json, to_prometheus_text
from .roadnet import (
    load_network,
    manhattan_city,
    radial_city,
    random_planar_city,
    save_network,
)
from .resilience import ResilienceConfig, ResilientEngine
from .service import (
    Gateway,
    GatewayConfig,
    HttpServiceClient,
    LoadGenConfig,
    LoadGenerator,
    ProcRouter,
    ReshardConfig,
    ReshardController,
    ServiceSLO,
    ShardRouter,
    SupervisorConfig,
    skew_hotspot,
)
from .sim import (
    DriverCancellation,
    FaultInjectingAdapter,
    IndexCorruption,
    RideShareSimulator,
    RouterFault,
    TrackingDropout,
    TShareAdapter,
    XARAdapter,
)
from .sim.simulator import SimulatorConfig
from .sim.modes import compare_modes
from .workloads import NYCWorkloadGenerator, trips_to_requests


def _build_city(args: argparse.Namespace) -> int:
    if args.kind == "manhattan":
        network = manhattan_city(n_avenues=args.avenues, n_streets=args.streets)
    elif args.kind == "radial":
        network = radial_city(n_rings=args.rings, n_spokes=args.spokes)
    else:
        network = random_planar_city(n_nodes=args.nodes, seed=args.seed)
    save_network(network, args.output)
    print(
        f"wrote {args.kind} city: {network.node_count} nodes, "
        f"{network.edge_count} edges -> {args.output}"
    )
    return 0


def _build_region(args: argparse.Namespace) -> int:
    t0 = time.perf_counter()
    if args.city:
        network = load_network(args.city)
    else:
        network = manhattan_city(n_avenues=args.avenues, n_streets=args.streets)
    config = XARConfig.validated(delta_m=args.delta)
    region = build_region(network, config, poi_seed=args.seed)
    save_region(region, args.output)
    print(
        f"region built in {time.perf_counter() - t0:.1f}s: "
        f"{region.n_landmarks} landmarks, {region.n_clusters} clusters, "
        f"eps_realised {region.epsilon_realised:.0f} m "
        f"(guarantee {config.epsilon_m:.0f} m) -> {args.output}"
    )
    return 0


def _info(args: argparse.Namespace) -> int:
    region = load_region(args.region)
    config = region.config
    print(f"region       : {args.region}")
    print(f"network      : {region.network.node_count} nodes, "
          f"{region.network.edge_count} edges")
    print(f"landmarks    : {region.n_landmarks}")
    print(f"clusters     : {region.n_clusters}")
    print(f"delta / eps  : {config.delta_m:.0f} m / {config.epsilon_m:.0f} m "
          f"(realised {region.epsilon_realised:.0f} m)")
    print(f"grid side    : {config.grid_side_m:.0f} m "
          f"({region.grid.cell_count()} implicit cells)")
    print(f"walk limit W : {config.max_walk_m:.0f} m")
    return 0


def _workload(region_network, args):
    generator = NYCWorkloadGenerator(region_network, seed=args.seed)
    trips = generator.generate(args.requests, args.start_hour, args.end_hour)
    return trips_to_requests(trips, window_s=args.window, walk_threshold_m=args.walk)


def _parse_faults(spec: str) -> List:
    """``router=0.05,dropout=0.1,cancel=0.02,corrupt=0.01`` → policies."""
    makers = {
        "router": lambda rate: RouterFault(rate=rate),
        "dropout": lambda rate: TrackingDropout(rate=rate),
        "cancel": lambda rate: DriverCancellation(rate=rate),
        "corrupt": lambda rate: IndexCorruption(rate=rate),
    }
    policies = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _sep, value = part.partition("=")
        if name not in makers:
            raise SystemExit(
                f"unknown fault policy {name!r} (choose from {sorted(makers)})"
            )
        policies.append(makers[name](float(value) if value else 0.05))
    return policies


def _simulate(args: argparse.Namespace) -> int:
    region = load_region(args.region)
    requests = _workload(region.network, args)
    if args.engine == "xar":
        adapter = XARAdapter(XAREngine(
            region,
            optimize_insertion=args.optimize,
            use_flat_index=not args.legacy_search,
        ))
    else:
        adapter = TShareAdapter(TShareEngine(region.network))
    if args.faults:
        adapter = FaultInjectingAdapter(
            adapter, _parse_faults(args.faults), seed=args.fault_seed
        )
    if args.resilient:
        adapter = ResilientEngine(adapter, ResilienceConfig(seed=args.fault_seed))
    config = SimulatorConfig(audit_every_s=args.audit_every)
    report = RideShareSimulator(adapter, config).run(requests)
    print(report.describe())
    if args.audit_every > 0 and report.audit.get("post_run_violations", 0) > 0:
        print("post-run invariant audit FAILED", file=sys.stderr)
        return 1
    return 0


def _loadtest(args: argparse.Namespace) -> int:
    region = load_region(args.region)
    generator = NYCWorkloadGenerator(region.network, seed=args.seed)
    trips = generator.generate(
        args.requests + args.prepopulate, args.start_hour, args.end_hour
    )
    requests = trips_to_requests(
        trips, window_s=args.window, walk_threshold_m=args.walk
    )
    if getattr(args, "hotspot_frac", 0.0):
        # Satellite workload skew: concentrate sources on a few Zipf-weighted
        # zones — the load a static partition cannot absorb.
        requests = skew_hotspot(
            region,
            requests,
            hotspot_frac=args.hotspot_frac,
            hotspot_zones=args.hotspot_zones,
            seed=args.seed,
        )
    supply, demand = requests[: args.prepopulate], requests[args.prepopulate:]

    if getattr(args, "matcher", "greedy") == "batch" and (
        args.procs or args.remote
    ):
        raise SystemExit("--matcher batch wraps the in-process thread-shard "
                         "router; drop --procs/--remote")

    if args.legacy_search and (args.procs or args.remote):
        raise SystemExit("--legacy-search pins the in-process thread-shard "
                         "engines to the pre-flat search path; drop "
                         "--procs/--remote")

    reshard = None
    if getattr(args, "reshard", 0):
        if args.remote:
            raise SystemExit("--reshard drives a local router; drop --remote")
        if args.reshard < args.shards:
            raise SystemExit(f"--reshard {args.reshard} must be >= --shards "
                             f"{args.shards} (it is the lifetime lane budget)")
        if not args.procs and not args.durable:
            raise SystemExit("--reshard needs durable shards: add "
                             "--durable DIR (or --procs)")
        reshard = ReshardConfig(
            max_shards=args.reshard,
            min_interval_ops=args.reshard_interval_ops,
            split_pressure=args.reshard_pressure,
        )

    if args.remote:
        return _loadtest_remote(args, region, supply, demand)

    durability = None
    if args.durable and not args.procs:
        os.makedirs(args.durable, exist_ok=True)
        durability = DurabilityConfig(
            directory=args.durable,
            fsync_every=args.fsync_every,
            checkpoint_every=args.checkpoint_every,
        )
    if args.crash_every and durability is None and not args.procs:
        raise SystemExit("--crash-every requires --durable DIR "
                         "(process shards are always durable: use --procs)")

    if args.procs:
        # Process mode: every shard is a supervised subprocess with its own
        # WAL directory under run_dir, so crash injection needs no opt-in.
        run_dir = args.durable or tempfile.mkdtemp(prefix="xar-proc-")
        os.makedirs(run_dir, exist_ok=True)
        service_cm = ProcRouter(
            region,
            SupervisorConfig(
                n_shards=args.shards,
                run_dir=run_dir,
                queue_depth=args.queue_depth,
                fsync_every=args.fsync_every,
                checkpoint_every=args.checkpoint_every,
                resilient=args.resilient,
                seed=args.seed,
            ),
            fanout=args.fanout,
            reshard=reshard,
        )
    else:
        service_cm = ShardRouter(
            region,
            args.shards,
            queue_depth=args.queue_depth,
            fanout=args.fanout,
            resilient=args.resilient,
            use_flat_index=not args.legacy_search,
            seed=args.seed,
            durability=durability,
            reshard=reshard,
        )

    with service_cm as service:
        for request in supply:
            service.create(request.source, request.destination,
                           request.window_start_s,
                           seats=args.supply_seats,
                           detour_limit_m=args.supply_detour)

        chaos = None
        if args.crash_every:
            # Kill a rotating shard every N served requests; the failover
            # supervisor replays its WAL and the run keeps going.
            crash_lock = threading.Lock()
            crash_state = {"due": args.crash_every, "victim": 0}

            def chaos(global_index: int) -> None:
                with crash_lock:
                    if global_index < crash_state["due"]:
                        return
                    crash_state["due"] += args.crash_every
                    victim = crash_state["victim"] % len(
                        getattr(service, "active_slot_ids",
                                lambda: range(service.n_shards))())
                    crash_state["victim"] += 1
                service.crash_shard(victim)

        controller = None
        if reshard is not None:
            # The controller rides the load generator's chaos seam: a cheap
            # tick every few requests (op-volume gating keeps real reshard
            # decisions far rarer than the probe).
            controller = ReshardController(service, reshard)
            crash_chaos = chaos

            def chaos(global_index: int) -> None:
                if crash_chaos is not None:
                    crash_chaos(global_index)
                if global_index % 25 == 0:
                    controller.tick()

        config = LoadGenConfig(
            workers=args.workers,
            target_qps=args.qps,
            looks_per_book=args.looks,
            create_on_miss=not args.no_create,
            seed=args.seed,
            chaos=chaos,
            arrival=args.arrival,
        )
        target = service
        batch = None
        if args.matcher == "batch":
            batch = BatchMatcher(
                service,
                BatchConfig(
                    window_s=args.window_ms / 1000.0,
                    max_batch=args.batch_max,
                ),
            )
            target = batch
        try:
            report = LoadGenerator(target, demand, config).run()
        finally:
            if batch is not None:
                batch.close()
        if batch is not None:
            ledger = batch.ledger()
            print(f"batch ledger      : {ledger}")
        if durability is not None or args.procs:
            counter = ("xar_proc_restarts_total" if args.procs
                       else "xar_failovers_total")
            failovers = {
                labels["shard"]: int(child.value)
                for labels, child in service.metrics.counter(
                    counter,
                    labels=("shard",),
                ).collect()
                if child.value
            }
            replayed = {
                shard_id: (result["replayed_ops"] if isinstance(result, dict)
                           else result.replayed_ops)
                for shard_id, result in sorted(service.last_recoveries.items())
            }
            label = "restarts" if args.procs else "failovers"
            print(f"{label:<18}: {failovers or 'none'}")
            print(f"replayed ops      : {replayed or 'none'}")
        if controller is not None:
            status = controller.status()
            taken = [
                "{action} {slot}->{peer}".format(**entry)
                for entry in status["actions"]
                if entry["action"] != "refused"
            ]
            print(f"reshard epoch     : {status['epoch']} "
                  f"(slots {status['active_slots']})")
            print(f"reshard actions   : {', '.join(taken) or 'none'}")

    return _finish_loadtest(args, report, service.metrics)


def _finish_loadtest(args: argparse.Namespace, report, metrics) -> int:
    """Shared loadtest epilogue: report, metric dumps, SLO evaluation."""
    print(report.describe())
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"wrote report -> {args.json_path}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus_text(metrics))
        print(f"wrote metrics (Prometheus text) -> {args.metrics_out}")
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            handle.write(to_json(metrics))
        print(f"wrote metrics (JSON) -> {args.metrics_json}")

    slo = ServiceSLO(
        latency_ms=(
            {"search": {95: args.search_p95_ms}} if args.search_p95_ms else {}
        ),
        max_shed_rate=args.max_shed_rate,
        min_match_rate=args.min_match_rate,
    )
    breaches = slo.evaluate(report)
    for breach in breaches:
        print(f"SLO breach: {breach}", file=sys.stderr)
    if breaches:
        return 1
    return 0


def _loadtest_remote(args: argparse.Namespace, region, supply, demand) -> int:
    """Drive a running ``xar serve`` gateway over HTTP."""
    if args.crash_every:
        raise SystemExit("--crash-every cannot target a remote gateway "
                         "(the server owns its own fault injection)")
    if args.supply_seats is not None or args.supply_detour is not None:
        raise SystemExit("--supply-seats/--supply-detour only apply to "
                         "in-process loadtests (the gateway's create API "
                         "uses the server's engine config)")
    client = HttpServiceClient(args.remote, region,
                               deadline_ms=args.deadline_ms)
    try:
        health = client.healthz()
        print(f"gateway {args.remote}: {health}")
        for request in supply:
            client.create(request.source, request.destination,
                          request.window_start_s)
        config = LoadGenConfig(
            workers=args.workers,
            target_qps=args.qps,
            looks_per_book=args.looks,
            create_on_miss=not args.no_create,
            seed=args.seed,
            arrival=args.arrival,
        )
        generator = LoadGenerator(client, demand, config)
        report = generator.run()
    finally:
        client.close()
    return _finish_loadtest(args, report, generator.metrics)


def _serve(args: argparse.Namespace) -> int:
    """Run the process-shard fleet behind the HTTP gateway until SIGTERM."""
    region = load_region(args.region)
    run_dir = args.run_dir or tempfile.mkdtemp(prefix="xar-serve-")
    os.makedirs(run_dir, exist_ok=True)
    service = ProcRouter(
        region,
        SupervisorConfig(
            n_shards=args.shards,
            run_dir=run_dir,
            queue_depth=args.queue_depth,
            fsync_every=args.fsync_every,
            checkpoint_every=args.checkpoint_every,
            resilient=args.resilient,
            seed=args.seed,
        ),
        fanout=args.fanout,
    )
    gateway = Gateway(service, GatewayConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        default_deadline_ms=args.deadline_ms,
    ))
    print(f"spawned {service.n_shards} process shards "
          f"(run dir {run_dir})", file=sys.stderr)
    try:
        gateway.serve_forever(
            on_start=lambda url: print(f"gateway listening on {url}",
                                       file=sys.stderr, flush=True)
        )
    finally:
        service.close()
    return 0


def _metrics(args: argparse.Namespace) -> int:
    """Replay a workload on an instrumented engine, dump the registry."""
    region = load_region(args.region)
    requests = _workload(region.network, args)
    registry = MetricsRegistry()
    engine = XAREngine(region, optimize_insertion=args.optimize,
                       metrics=registry)
    report = RideShareSimulator(XARAdapter(engine)).run(requests)
    if args.format == "prom":
        rendered = to_prometheus_text(registry)
    else:
        rendered = to_json(registry, tracers=[engine.tracer])
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(report.describe(), file=sys.stderr)
        print(f"wrote metrics -> {args.out}", file=sys.stderr)
    else:
        print(report.describe(), file=sys.stderr)
        print(rendered)
    return 0


def _compare(args: argparse.Namespace) -> int:
    region = load_region(args.region)
    requests = _workload(region.network, args)
    for adapter in (
        XARAdapter(XAREngine(region)),
        TShareAdapter(TShareEngine(region.network)),
    ):
        report = RideShareSimulator(adapter).run(requests)
        print(report.describe())
        print()
    return 0


def _modes(args: argparse.Namespace) -> int:
    region = load_region(args.region)
    requests = _workload(region.network, args)
    feed = synthetic_feed(region.network, seed=args.seed)
    planner = MultiModalPlanner(feed)
    results = compare_modes(region, planner, requests)
    print("mode     travel(min)  walk(min)  wait(min)   cars")
    for name in ("Taxi", "PT", "RS", "RS+PT"):
        row = results[name].row()
        print(
            f"{name:<8} {row['travel_min']:10.1f} {row['walk_min']:10.1f} "
            f"{row['wait_min']:10.1f} {row['cars']:6.0f}"
        )
    return 0


def _fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing: one seeded op sequence, N façades, oracle diff."""
    from .verify import (
        DifferentialHarness,
        FuzzConfig,
        generate_ops,
        save_repro,
        shrink_ops,
    )

    if args.region:
        region = load_region(args.region)
        region_spec = {"region_path": args.region}
    else:
        network = manhattan_city(n_avenues=args.avenues, n_streets=args.streets)
        config = XARConfig.validated(delta_m=args.delta)
        region = build_region(network, config, poi_seed=args.poi_seed)
        region_spec = {
            "avenues": args.avenues,
            "streets": args.streets,
            "delta": args.delta,
            "poi_seed": args.poi_seed,
        }

    engines = [name.strip() for name in args.engines.split(",") if name.strip()]
    fuzz_config = FuzzConfig(seed=args.seed, n_ops=args.ops)
    ops = generate_ops(region, fuzz_config)
    registry = MetricsRegistry()

    def run(sequence):
        harness = DifferentialHarness(
            region,
            engines=engines,
            seed=args.seed,
            audit_every=args.audit_every,
            metrics=registry,
        )
        return harness.run(sequence)

    report = run(ops)
    print(report.describe())
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus_text(registry))
        print(f"wrote metrics (Prometheus text) -> {args.metrics_out}")
    if report.ok:
        return 0

    repro = list(ops)
    if args.shrink:
        print("shrinking the failing sequence (delta debugging) ...",
              file=sys.stderr)
        repro = shrink_ops(ops, lambda candidate: not run(candidate).ok)
        print(f"shrunk {len(ops)} ops -> {len(repro)} ops", file=sys.stderr)
    if args.corpus_out:
        path = save_repro(
            args.corpus_out,
            f"fuzz_seed{args.seed}",
            seed=args.seed,
            engines=engines,
            ops=repro,
            region_spec=region_spec,
            note=report.divergences[0].describe(),
        )
        print(f"wrote repro -> {path}", file=sys.stderr)
    return 1


def _scenario_load(args: argparse.Namespace):
    """Resolve ``run``'s target: a pinned name or a spec file."""
    from .scenarios import ScenarioSpec, pinned_scenario

    if args.spec:
        return ScenarioSpec.load(args.spec)
    if not args.name:
        raise SystemExit("scenario run: give a pinned NAME or --spec FILE")
    return pinned_scenario(args.name)


def _scenario_run(args: argparse.Namespace) -> int:
    """Execute one scenario and print (optionally save) its report."""
    from .scenarios import run_scenario

    spec = _scenario_load(args)
    report = run_scenario(spec)
    # With --canonical, stdout carries only the deterministic JSON (so two
    # runs can be byte-compared); the human-readable report moves to stderr.
    print(report.describe(), file=sys.stderr if args.canonical else sys.stdout)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(include_timing=True), handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote report -> {args.out}")
    if args.canonical:
        sys.stdout.write(report.canonical_json())
    return 0 if report.passed else 1


def _scenario_sweep(args: argparse.Namespace) -> int:
    """Run every pinned scenario; non-zero exit names each red spec+seed."""
    from .scenarios import pinned_names, pinned_scenario, run_scenario

    names = ([name.strip() for name in args.only.split(",") if name.strip()]
             if args.only else pinned_names())
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
    failures = []
    for name in names:
        spec = pinned_scenario(name)
        t0 = time.perf_counter()
        report = run_scenario(spec)
        elapsed = time.perf_counter() - t0
        status = "PASS" if report.passed else "FAIL"
        print(f"{status}  {name:<24} facade={spec.facade:<9} "
              f"seed={spec.seed:<3} booked={report.counts['booked']:<4} "
              f"pool={report.counts['max_pool']} ({elapsed:.1f}s)")
        if not report.passed:
            failures.append((name, spec.seed))
            for entry in report.assertions:
                if not entry["ok"]:
                    print(f"      {entry['name']}: {entry['detail']}",
                          file=sys.stderr)
        if args.out_dir:
            path = os.path.join(args.out_dir, f"{name}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(report.to_dict(include_timing=True), handle,
                          indent=2, sort_keys=True)
                handle.write("\n")
    if failures:
        detail = ", ".join(f"{name} (seed {seed})" for name, seed in failures)
        print(f"scenario sweep FAILED: {detail}", file=sys.stderr)
        print("replay one locally with: "
              f"xar scenario run {failures[0][0]}", file=sys.stderr)
        return 1
    print(f"scenario sweep: {len(names)} scenario(s) green")
    return 0


def _scenario_list(args: argparse.Namespace) -> int:
    """Print the pinned matrix, one row per scenario."""
    from .scenarios import pinned_names, pinned_scenario

    print(f"{'name':<24} {'facade':<9} {'seed':<5} {'city':<18} "
          f"{'requests':<9} overlays")
    for name in pinned_names():
        spec = pinned_scenario(name)
        city = (f"{spec.city.kind} {spec.city.avenues}x{spec.city.streets}")
        overlays = []
        if spec.demand.surge:
            overlays.append("surge")
        if spec.demand.cancel_storm:
            overlays.append("storm")
        if spec.faults.policies:
            overlays.append("faults")
        if spec.faults.crash_every:
            overlays.append("crashes")
        if spec.supply.shift_length_s:
            overlays.append("shifts")
        print(f"{name:<24} {spec.facade:<9} {spec.seed:<5} {city:<18} "
              f"{spec.demand.requests:<9} {','.join(overlays) or '-'}")
    return 0


def _recover(args: argparse.Namespace) -> int:
    """Rebuild an engine from a WAL (+ optional checkpoint) and report."""
    from .resilience.audit import InvariantAuditor

    region = load_region(args.region)
    result = recover_engine(region, args.wal, args.checkpoint)
    engine = result.engine
    print(f"wal               : {args.wal}")
    if args.checkpoint:
        print(f"checkpoint        : {args.checkpoint} "
              f"(covers seq <= {result.checkpoint_seq})")
    print(f"shard             : {result.shard_id}")
    print(f"replayed ops      : {result.replayed_ops} "
          f"(skipped {result.skipped_ops} aborted, "
          f"{result.failed_ops} failed)")
    print(f"torn tail         : {result.torn_tail_bytes} bytes truncated")
    print(f"last seq          : {result.last_seq}")
    print(f"recovered in      : {result.duration_s * 1000.0:.1f} ms")
    with engine.lock:
        print(f"state             : {len(engine.rides)} live rides, "
              f"{len(engine.completed_rides)} completed, "
              f"{len(engine.bookings)} bookings, "
              f"{len(engine.rollbacks)} rollbacks")
    if args.audit:
        audit = InvariantAuditor(engine).audit()
        if audit.ok:
            print("invariant audit   : clean")
        else:
            print(f"invariant audit   : FAILED {audit.by_kind()}",
                  file=sys.stderr)
            return 1
    return 0


def _reshard_slot_files(directory, manifest):
    """Per active slot: (wal_path, checkpoint_path) the manifest names.

    Thread-mode entries carry generation-suffixed ``wal``/``ckpt`` file
    names; process-mode entries carry a ``dir`` (a run-dir subdirectory
    holding the slot's default-named files).  A service that never
    resharded has no manifest — fall back to the deterministic static
    layout, both flat (thread mode) and per-shard-directory (process mode).
    """
    slots = {}
    if manifest is not None:
        for entry in sorted(manifest["slots"], key=lambda e: e["slot"]):
            if not entry.get("active"):
                continue
            slot = int(entry["slot"])
            if "dir" in entry:
                base = os.path.join(directory, entry["dir"])
                slots[slot] = (os.path.join(base, f"shard{slot}.wal"),
                               os.path.join(base, f"shard{slot}.ckpt"))
            elif "wal" in entry:
                slots[slot] = (os.path.join(directory, entry["wal"]),
                               os.path.join(directory, entry["ckpt"]))
            else:
                # Default layout: flat files in thread mode, a per-shard
                # subdirectory in process mode.
                flat = os.path.join(directory, f"shard{slot}.wal")
                nested = os.path.join(
                    directory, f"shard{slot}", f"shard{slot}.wal")
                if os.path.exists(flat) or not os.path.exists(nested):
                    slots[slot] = (flat, flat[:-4] + ".ckpt")
                else:
                    slots[slot] = (nested, nested[:-4] + ".ckpt")
        return slots
    slot = 0
    while True:
        flat = os.path.join(directory, f"shard{slot}.wal")
        nested = os.path.join(directory, f"shard{slot}", f"shard{slot}.wal")
        if os.path.exists(flat):
            slots[slot] = (flat, os.path.join(directory, f"shard{slot}.ckpt"))
        elif os.path.exists(nested):
            slots[slot] = (nested, nested[:-4] + ".ckpt")
        else:
            break
        slot += 1
    return slots


def _reshard_status(args: argparse.Namespace) -> int:
    """Pretty-print the committed topology manifest of a durable run dir."""
    manifest = read_topology(topology_path(args.dir))
    if manifest is None:
        print(f"{args.dir}: no topology manifest — static topology "
              "(never resharded, or reshard mode was off)")
        return 0
    entries = sorted(manifest["slots"], key=lambda e: e["slot"])
    active = [e for e in entries if e.get("active")]
    print(f"run dir           : {args.dir}")
    print(f"routing epoch     : {manifest['epoch']}")
    print(f"lane modulus      : {manifest['lane_modulus']} "
          f"(lifetime shard budget)")
    print(f"active slots      : {[e['slot'] for e in active]} "
          f"({len(entries)} ever created)")
    for entry in entries:
        slot = entry["slot"]
        where = entry.get("dir") or entry.get("wal") or f"shard{slot}.wal"
        state = "active" if entry.get("active") else "retired"
        print(f"  slot {slot:<3} {state:<8} lane={entry.get('lane', slot)} "
              f"-> {where}")
    redirect = manifest.get("redirect", {})
    if redirect:
        print(f"merge redirects   : "
              f"{ {int(k): v for k, v in redirect.items()} }")
    homes = manifest.get("ride_homes", {})
    print(f"migrated rides    : {len(homes)} pinned to an explicit home")
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
        print(f"wrote manifest -> {args.json_path}")
    return 0


def _reshard_verify(args: argparse.Namespace) -> int:
    """Offline exactly-once proof over a (possibly resharded) run dir.

    Replays every active slot's WAL from scratch, audits each recovered
    engine, and checks the cross-slot invariants a reshard must preserve:
    no ride or booking duplicated across slots, and every ride living in
    the slot the committed routing tables say owns it.
    """
    from .resilience.audit import InvariantAuditor

    region = load_region(args.region)
    manifest = read_topology(
        topology_path(args.dir), expected_digest=region_digest(region)
    )
    slot_files = _reshard_slot_files(args.dir, manifest)
    if not slot_files:
        print(f"{args.dir}: no shard WALs found", file=sys.stderr)
        return 1

    def owner_of(ride_id: int) -> Optional[int]:
        if manifest is None:
            return None
        slot = manifest.get("ride_homes", {}).get(str(ride_id))
        if slot is None:
            lane = (ride_id - 1) % int(manifest["lane_modulus"])
            slot = manifest["lane_owner"][lane]
        redirect = manifest.get("redirect", {})
        while str(slot) in redirect:
            slot = redirect[str(slot)]
        return int(slot)

    failures = []
    ride_seen = {}
    booking_seen = {}
    total_rides = total_bookings = total_replayed = 0
    for slot, (wal, ckpt) in sorted(slot_files.items()):
        result = recover_engine(region, wal, ckpt)
        engine = result.engine
        total_replayed += result.replayed_ops
        audit = InvariantAuditor(engine).audit()
        with engine.lock:
            ride_ids = sorted(set(engine.rides) | set(engine.completed_rides))
            bookings = list(engine.bookings)
        total_rides += len(ride_ids)
        total_bookings += len(bookings)
        print(f"slot {slot:<3}: {result.replayed_ops} ops replayed, "
              f"{len(ride_ids)} rides, {len(bookings)} bookings, "
              f"audit {'clean' if audit.ok else 'FAILED'}")
        if not audit.ok:
            failures.append(f"slot {slot}: invariant audit {audit.by_kind()}")
        for ride_id in ride_ids:
            if ride_id in ride_seen:
                failures.append(
                    f"ride {ride_id} recovered in both slot "
                    f"{ride_seen[ride_id]} and slot {slot}"
                )
            ride_seen[ride_id] = slot
            home = owner_of(ride_id)
            if home is not None and home != slot:
                failures.append(
                    f"ride {ride_id} recovered in slot {slot} but the "
                    f"routing tables assign it to slot {home}"
                )
        for booking in bookings:
            # A ledger row follows its ride through every carve, and a ride
            # lives in exactly one slot — the same (request, ride) row in
            # two slots means a migration duplicated it.
            key = (booking.request_id, booking.ride_id)
            if key in booking_seen and booking_seen[key] != slot:
                failures.append(
                    f"booking (request {key[0]}, ride {key[1]}) recovered "
                    f"in both slot {booking_seen[key]} and slot {slot} "
                    f"(exactly-once ledger violated)"
                )
            booking_seen.setdefault(key, slot)

    epoch = manifest["epoch"] if manifest is not None else 0
    print(f"topology          : epoch {epoch}, "
          f"{len(slot_files)} active slots")
    print(f"totals            : {total_replayed} ops replayed, "
          f"{total_rides} rides, {total_bookings} bookings")
    if failures:
        print(f"verify FAILED ({len(failures)} violation(s)):",
              file=sys.stderr)
        for failure in failures[:20]:
            print(f"  {failure}", file=sys.stderr)
        if len(failures) > 20:
            print(f"  ... and {len(failures) - 20} more", file=sys.stderr)
        return 1
    print("verify ok         : ledger exact, ownership consistent")
    return 0


def _wal_dump(args: argparse.Namespace) -> int:
    """Dump a WAL frame by frame; flags the torn tail when there is one."""
    try:
        return _wal_dump_frames(args)
    except BrokenPipeError:
        # Output piped into head/less and closed early: not an error.
        # Re-point stdout at devnull so interpreter teardown doesn't
        # trip over the closed pipe again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _wal_dump_frames(args: argparse.Namespace) -> int:
    torn = False
    frames_seen = 0
    ops_seen = 0
    for frame in iter_frames(args.wal):
        frames_seen += 1
        if not frame.crc_ok:
            torn = True
            print(f"@{frame.offset:<10} TORN TAIL: {frame.error}",
                  file=sys.stderr)
            break
        record = frame.record
        if args.json_lines:
            print(json.dumps(record, sort_keys=True))
            continue
        kind = record.get("kind", "?")
        if kind == "header":
            detail = (f"v{record.get('version')} shard={record.get('shard_id')} "
                      f"lane=({record.get('ride_id_start')},"
                      f"+{record.get('ride_id_step')}) "
                      f"digest={str(record.get('region_digest'))[:12]}")
        elif kind == "abort":
            detail = (f"aborts seq {record.get('aborts')} "
                      f"({record.get('error')}: {record.get('reason')})")
        else:
            op = record.get("op", "?")
            if op == "create":
                detail = f"create ride {record.get('ride_id')}"
            elif op == "book":
                request = record.get("request", {})
                match = record.get("match", {})
                detail = (f"book request {request.get('request_id')} "
                          f"on ride {match.get('ride_id')}")
            elif op == "cancel":
                detail = f"cancel ride {record.get('ride_id')}"
            elif op == "track":
                detail = f"track to t={record.get('now_s')}"
            else:
                detail = json.dumps(record, sort_keys=True)
        if kind != "header":
            ops_seen += 1
        seq = record.get("seq", "-")
        print(f"@{frame.offset:<10} seq={seq:<6} {kind:<7} {detail}")
    # Empty and header-only logs are *valid* states, not damage: a shard
    # killed before its first write leaves a 0-byte WAL, one killed right
    # after spawn leaves just the header.  Say so explicitly (recovery
    # treats both as "young", and --strict must not fail a healthy fleet).
    if frames_seen == 0:
        print("(empty WAL: no frames yet — shard died before its "
              "first write)")
    elif ops_seen == 0 and not torn and not args.json_lines:
        print("(header only: no operations logged yet)")
    if torn and args.strict:
        return 1
    return 0


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--requests", type=int, default=500)
    parser.add_argument("--start-hour", type=float, default=6.0, dest="start_hour")
    parser.add_argument("--end-hour", type=float, default=12.0, dest="end_hour")
    parser.add_argument("--window", type=float, default=600.0,
                        help="departure window per request, seconds")
    parser.add_argument("--walk", type=float, default=800.0,
                        help="walk threshold per request, metres")
    parser.add_argument("--seed", type=int, default=42)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xar", description="Xhare-a-Ride reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build-city", help="generate a synthetic city")
    p.add_argument("output")
    p.add_argument("--kind", choices=["manhattan", "radial", "random"],
                   default="manhattan")
    p.add_argument("--avenues", type=int, default=16)
    p.add_argument("--streets", type=int, default=50)
    p.add_argument("--rings", type=int, default=6)
    p.add_argument("--spokes", type=int, default=12)
    p.add_argument("--nodes", type=int, default=300)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_build_city)

    p = sub.add_parser("build-region", help="pre-process a city into a region")
    p.add_argument("output")
    p.add_argument("--city", help="saved network JSON (default: generate)")
    p.add_argument("--avenues", type=int, default=16)
    p.add_argument("--streets", type=int, default=50)
    p.add_argument("--delta", type=float, default=250.0,
                   help="cluster tightness target delta (m); eps = 4*delta")
    p.add_argument("--seed", type=int, default=11)
    p.set_defaults(func=_build_region)

    p = sub.add_parser("info", help="inspect a saved region")
    p.add_argument("region")
    p.set_defaults(func=_info)

    p = sub.add_parser("simulate", help="replay a workload on one engine")
    p.add_argument("region")
    p.add_argument("--engine", choices=["xar", "tshare"], default="xar")
    p.add_argument("--optimize", action="store_true",
                   help="XAR insertion optimization at booking")
    p.add_argument("--legacy-search", action="store_true", dest="legacy_search",
                   help="use the pre-flat per-object search path instead of "
                        "the flat struct-of-arrays core (same results, "
                        "slower; for A/B comparison)")
    p.add_argument("--faults", default="",
                   help="inject faults, e.g. "
                        "'router=0.05,dropout=0.1,cancel=0.02,corrupt=0.01'")
    p.add_argument("--fault-seed", type=int, default=0, dest="fault_seed")
    p.add_argument("--resilient", action="store_true",
                   help="wrap the engine in the fault-tolerant runtime "
                        "(retries, circuit breaker, degraded search tiers)")
    p.add_argument("--audit-every", type=float, default=0.0, dest="audit_every",
                   help="invariant-audit cadence in simulated seconds "
                        "(0 disables; audits self-heal and a post-run sweep "
                        "must come back clean)")
    _add_workload_args(p)
    p.set_defaults(func=_simulate)

    p = sub.add_parser(
        "loadtest",
        help="drive the sharded service with the closed-loop load generator",
    )
    p.add_argument("region")
    p.add_argument("--shards", type=int, default=2,
                   help="spatial shards, each with its own engine + worker")
    p.add_argument("--workers", type=int, default=4,
                   help="closed-loop driver threads")
    p.add_argument("--qps", type=float, default=None,
                   help="target offered load (requests/s; default: unpaced)")
    p.add_argument("--looks", type=int, default=0,
                   help="extra look searches per request (look-to-book - 1)")
    p.add_argument("--matcher", choices=["greedy", "batch"], default="greedy",
                   help="assignment mode: per-request greedy (default) or "
                        "windowed batch assignment with swap improvement")
    p.add_argument("--window-ms", type=float, default=500.0, dest="window_ms",
                   help="batch window length in milliseconds "
                        "(--matcher batch)")
    p.add_argument("--batch-max", type=int, default=32, dest="batch_max",
                   help="flush a batch window early at this many requests "
                        "(--matcher batch)")
    p.add_argument("--arrival", choices=["paced", "poisson"], default="paced",
                   help="arrival process when --qps is set: deterministic "
                        "pacing or seeded Poisson bursts")
    p.add_argument("--no-create", action="store_true", dest="no_create",
                   help="do not create rides from unmatched requests (fixed "
                        "supply: matcher comparisons at equal supply)")
    p.add_argument("--legacy-search", action="store_true", dest="legacy_search",
                   help="pin every shard engine to the pre-flat per-object "
                        "search path (same results, slower; for A/B "
                        "comparison — in-process shards only)")
    p.add_argument("--queue-depth", type=int, default=128, dest="queue_depth",
                   help="per-shard request queue bound (admission control)")
    p.add_argument("--fanout", choices=["local", "all"], default="local",
                   help="search fan-out: walkable shards only, or all shards "
                        "(full recall)")
    p.add_argument("--resilient", action="store_true",
                   help="wrap each shard engine in the fault-tolerant runtime")
    p.add_argument("--prepopulate", type=int, default=0,
                   help="rides created before the measured run (supply)")
    p.add_argument("--supply-seats", type=int, default=None,
                   dest="supply_seats",
                   help="seats per prepopulated ride (default: engine "
                        "config)")
    p.add_argument("--supply-detour", type=float, default=None,
                   dest="supply_detour",
                   help="detour budget in meters per prepopulated ride "
                        "(default: engine config; tighten to create "
                        "contention)")
    p.add_argument("--json", dest="json_path",
                   help="write the load report as JSON to this path")
    p.add_argument("--max-shed-rate", type=float, default=None,
                   dest="max_shed_rate",
                   help="SLO: fail if shed/requests exceeds this")
    p.add_argument("--min-match-rate", type=float, default=None,
                   dest="min_match_rate",
                   help="SLO: fail if matched/requests is below this")
    p.add_argument("--search-p95-ms", type=float, default=None,
                   dest="search_p95_ms",
                   help="SLO: fail if search p95 latency exceeds this (ms)")
    p.add_argument("--metrics-out", dest="metrics_out",
                   help="write the service's metric registry in Prometheus "
                        "text exposition format to this path")
    p.add_argument("--metrics-json", dest="metrics_json",
                   help="write the service's metric registry as JSON to "
                        "this path")
    p.add_argument("--durable", metavar="DIR",
                   help="per-shard write-ahead logs + checkpoints under DIR "
                        "(created if missing); enables crash injection and "
                        "restart recovery")
    p.add_argument("--fsync-every", type=int, default=64, dest="fsync_every",
                   help="WAL appends between fsync barriers (1 = every op; "
                        "batching keeps durable throughput near baseline)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   dest="checkpoint_every",
                   help="mutations between automatic checkpoints per shard "
                        "(0 = recover from the log alone)")
    p.add_argument("--crash-every", type=int, default=0, dest="crash_every",
                   help="kill a rotating shard worker every N requests "
                        "(requires --durable in thread mode); the supervisor "
                        "must recover each")
    p.add_argument("--reshard", type=int, default=0, metavar="MAX_SHARDS",
                   help="enable elastic resharding with this lifetime shard "
                        "budget (>= --shards); a load-watching controller "
                        "splits hot shards / merges cold ones during the run "
                        "(requires --durable or --procs)")
    p.add_argument("--reshard-interval-ops", type=int, default=400,
                   dest="reshard_interval_ops",
                   help="completed ops between reshard controller decisions "
                        "(volume-gated for reproducible cadence)")
    p.add_argument("--reshard-pressure", type=float, default=1.75,
                   dest="reshard_pressure",
                   help="split the hottest shard when its load ratio (share "
                        "of the active-slot mean) reaches this")
    p.add_argument("--hotspot-frac", type=float, default=0.0,
                   dest="hotspot_frac",
                   help="fraction of request sources relocated onto a few "
                        "hot zones (seeded Zipf over --hotspot-zones); the "
                        "skew a static partition cannot absorb")
    p.add_argument("--hotspot-zones", type=int, default=2,
                   dest="hotspot_zones",
                   help="number of hot zones for --hotspot-frac")
    p.add_argument("--procs", action="store_true",
                   help="process mode: each shard is a supervised subprocess "
                        "behind length-prefixed RPC (--durable names its run "
                        "dir; crash injection sends real SIGKILL)")
    p.add_argument("--remote", metavar="URL",
                   help="drive a running 'xar serve' gateway at URL over "
                        "HTTP instead of an in-process fleet")
    p.add_argument("--deadline-ms", type=int, default=30_000,
                   dest="deadline_ms",
                   help="per-request deadline the HTTP client attaches "
                        "(X-Deadline-Ms; --remote only)")
    _add_workload_args(p)
    p.set_defaults(func=_loadtest)

    p = sub.add_parser(
        "serve",
        help="run the process-shard fleet behind the async HTTP gateway "
             "until SIGTERM (drains in-flight requests on shutdown)",
    )
    p.add_argument("region")
    p.add_argument("--shards", type=int, default=4,
                   help="supervised shard subprocesses")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8314,
                   help="listen port (0 picks a free one)")
    p.add_argument("--run-dir", dest="run_dir",
                   help="sockets, per-shard WALs and logs live here "
                        "(default: a fresh temp dir)")
    p.add_argument("--queue-depth", type=int, default=128, dest="queue_depth",
                   help="per-shard request queue bound (admission control)")
    p.add_argument("--fanout", choices=["local", "all"], default="local",
                   help="search fan-out policy")
    p.add_argument("--resilient", action="store_true",
                   help="wrap each shard engine in the fault-tolerant runtime")
    p.add_argument("--fsync-every", type=int, default=64, dest="fsync_every",
                   help="WAL appends between fsync barriers per shard")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   dest="checkpoint_every",
                   help="mutations between automatic checkpoints per shard")
    p.add_argument("--max-inflight", type=int, default=64,
                   dest="max_inflight",
                   help="gateway admission bound: concurrent requests "
                        "executing before 'capacity' shedding starts")
    p.add_argument("--deadline-ms", type=int, default=30_000,
                   dest="deadline_ms",
                   help="default request deadline when the caller sends no "
                        "X-Deadline-Ms header")
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=_serve)

    p = sub.add_parser(
        "metrics",
        help="replay a workload on an instrumented single engine and dump "
             "its metrics (per-stage latency histograms included)",
    )
    p.add_argument("region")
    p.add_argument("--format", choices=["prom", "json"], default="prom",
                   help="exposition format (Prometheus text or JSON)")
    p.add_argument("--out", help="write to this path instead of stdout")
    p.add_argument("--optimize", action="store_true",
                   help="XAR insertion optimization at booking")
    _add_workload_args(p)
    p.set_defaults(func=_metrics)

    p = sub.add_parser("compare", help="XAR vs T-Share on one stream")
    p.add_argument("region")
    _add_workload_args(p)
    p.set_defaults(func=_compare)

    p = sub.add_parser("modes", help="four-transport-mode comparison (Fig. 6)")
    p.add_argument("region")
    _add_workload_args(p)
    p.set_defaults(func=_modes)

    p = sub.add_parser(
        "fuzz",
        help="differential-fuzz engine façades against the brute-force oracle",
    )
    p.add_argument("--region", help="saved region (defaults to a synthetic "
                                    "Manhattan grid built in-process)")
    p.add_argument("--seed", type=int, default=0, help="op-sequence seed")
    p.add_argument("--ops", type=int, default=200,
                   help="number of operations to generate")
    p.add_argument("--engines", default="xar,shard2",
                   help="comma-separated façades to diff against the oracle "
                        "(xar, shard1, shard2, shard4, resilient, durable, "
                        "batch — batch runs relaxed: quality checks only)")
    p.add_argument("--shrink", action="store_true",
                   help="delta-debug a failing sequence to a minimal repro")
    p.add_argument("--corpus-out",
                   help="directory to write the (shrunken) failing repro JSON")
    p.add_argument("--audit-every", type=int, default=50,
                   help="run the invariant auditor every N ops")
    p.add_argument("--metrics-out",
                   help="write fuzz counters (Prometheus text) to this path")
    p.add_argument("--avenues", type=int, default=6,
                   help="synthetic grid avenues (when --region is omitted)")
    p.add_argument("--streets", type=int, default=12,
                   help="synthetic grid streets (when --region is omitted)")
    p.add_argument("--delta", type=float, default=400.0,
                   help="cell size for the synthetic region")
    p.add_argument("--poi-seed", type=int, default=0,
                   help="POI seed for the synthetic region")
    p.set_defaults(func=_fuzz)

    p = sub.add_parser(
        "scenario",
        help="run, sweep or list the declarative scenario matrix",
    )
    scenario_sub = p.add_subparsers(dest="scenario_command", required=True)

    sp = scenario_sub.add_parser(
        "run", help="execute one scenario (pinned name or spec file)"
    )
    sp.add_argument("name", nargs="?",
                    help="pinned scenario name (see 'scenario list')")
    sp.add_argument("--spec", help="JSON/TOML scenario spec file to run "
                                   "instead of a pinned name")
    sp.add_argument("--out", help="write the full report (timing included) "
                                  "as JSON to this path")
    sp.add_argument("--canonical", action="store_true",
                    help="print the canonical (deterministic) report JSON "
                         "to stdout — byte-identical for the same spec+seed")
    sp.set_defaults(func=_scenario_run)

    sp = scenario_sub.add_parser(
        "sweep", help="run every pinned scenario; red exits non-zero and "
                      "names each failing spec+seed"
    )
    sp.add_argument("--out-dir", dest="out_dir",
                    help="write one <name>.json report per scenario here")
    sp.add_argument("--only", help="comma-separated subset of pinned names")
    sp.set_defaults(func=_scenario_sweep)

    sp = scenario_sub.add_parser("list", help="show the pinned matrix")
    sp.set_defaults(func=_scenario_list)

    p = sub.add_parser(
        "recover",
        help="rebuild an engine from a write-ahead log (+ checkpoint) and "
             "report what replay did",
    )
    p.add_argument("region", help="the saved region the WAL was written "
                                  "against (digests must match)")
    p.add_argument("--wal", required=True, help="write-ahead log path")
    p.add_argument("--checkpoint", help="checkpoint path (optional; replay "
                                        "then covers only the log suffix)")
    p.add_argument("--audit", action="store_true",
                   help="run the invariant auditor on the recovered engine "
                        "(non-zero exit on violations)")
    p.set_defaults(func=_recover)

    p = sub.add_parser(
        "reshard",
        help="inspect or verify the elastic-resharding state of a durable "
             "run directory",
    )
    reshard_sub = p.add_subparsers(dest="reshard_cmd", required=True)

    sp = reshard_sub.add_parser(
        "status",
        help="pretty-print the committed topology manifest (epoch, slots, "
             "lanes, redirects)",
    )
    sp.add_argument("dir", help="durable run directory (--durable DIR / "
                                "proc run dir)")
    sp.add_argument("--json", dest="json_path",
                    help="also write the raw manifest as JSON to this path")
    sp.set_defaults(func=_reshard_status)

    sp = reshard_sub.add_parser(
        "verify",
        help="offline exactly-once proof: replay every active slot's WAL, "
             "audit each engine, check cross-slot ownership and ledger "
             "uniqueness (non-zero exit on violation)",
    )
    sp.add_argument("region", help="the saved region the WALs were written "
                                   "against (digests must match)")
    sp.add_argument("dir", help="durable run directory")
    sp.set_defaults(func=_reshard_verify)

    p = sub.add_parser(
        "wal-dump",
        help="dump a write-ahead log frame by frame (torn tails flagged)",
    )
    p.add_argument("wal", help="write-ahead log path")
    p.add_argument("--json-lines", action="store_true", dest="json_lines",
                   help="one raw JSON record per line instead of summaries")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero when the log has a torn tail")
    p.set_defaults(func=_wal_dump)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
