"""Durable primitives for elastic resharding: topology manifest + state carve.

A reshard action (split or merge) rewrites *which files hold which shard's
truth*.  Two pieces make that crash-safe:

* **State carving** — a parent shard's serialized :func:`engine_state`
  snapshot is partitioned into per-child states by ride ownership
  (:func:`split_engine_state`) or united from several parents
  (:func:`merge_engine_states`).  Ledger entries (bookings, rollbacks,
  cancellations) and tracking watermarks follow their ride; records whose
  ride the predicate cannot place stay with the left/first child, so no
  ledger row is ever dropped — the offline exactly-once proof replays the
  children and must balance against the parent.

* **The topology manifest** — ``topology.json`` in the durability
  directory, written with the same atomic tmp-file + rename +
  directory-fsync protocol as checkpoints.  The manifest names, per slot,
  the WAL/checkpoint files (or directory, in process mode) holding that
  slot's truth, plus the routing assignment, the ride-id lane table and the
  epoch.  Its atomic replacement is the *single commit point* of a reshard:
  child checkpoints and WAL headers are written first under new
  (generation-suffixed) names, so a crash before the manifest lands
  recovers the **old** topology from the old files, and a crash after
  recovers the **new** topology from the new files — never a mix.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..exceptions import DurabilityError
from .checkpoint import _fsync_directory

TOPOLOGY_VERSION = 1
TOPOLOGY_FILENAME = "topology.json"


def topology_path(directory: str) -> str:
    return os.path.join(directory, TOPOLOGY_FILENAME)


# ----------------------------------------------------------------------
# Manifest I/O
# ----------------------------------------------------------------------
def write_topology(path: str, payload: Dict[str, Any]) -> None:
    """Atomically commit a topology manifest (THE reshard commit point)."""
    payload = dict(payload)
    payload.setdefault("format", "xar.topology")
    payload.setdefault("version", TOPOLOGY_VERSION)
    for required in ("epoch", "lane_modulus", "slots", "assignment"):
        if required not in payload:
            raise DurabilityError(
                f"topology manifest missing required field {required!r}"
            )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(directory)


def read_topology(
    path: str, *, expected_digest: str = ""
) -> Optional[Dict[str, Any]]:
    """Load a topology manifest; ``None`` when none has been committed yet.

    A missing manifest is the common case — a service that never resharded —
    and means "use the deterministic default topology".  A *present but
    invalid* manifest is an error: guessing would route ops at the wrong
    WALs.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise DurabilityError(f"{path}: unreadable topology manifest ({exc})") from exc
    if payload.get("format") != "xar.topology":
        raise DurabilityError(f"{path}: not a topology manifest")
    if payload.get("version") != TOPOLOGY_VERSION:
        raise DurabilityError(
            f"{path}: unsupported topology version {payload.get('version')!r} "
            f"(this build reads {TOPOLOGY_VERSION})"
        )
    if expected_digest and payload.get("region_digest", "") not in (
        "", expected_digest
    ):
        raise DurabilityError(
            f"{path}: topology manifest was committed against a different "
            f"discretization build (digest "
            f"{str(payload.get('region_digest'))[:12]}…, expected "
            f"{expected_digest[:12]}…)"
        )
    return payload


# ----------------------------------------------------------------------
# State carving
# ----------------------------------------------------------------------
def _empty_state(counters: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "rides": [],
        "completed_rides": [],
        "tracked_to": [],
        "bookings": [],
        "rollbacks": [],
        "cancellations": [],
        "counters": dict(counters),
    }


def split_engine_state(
    state: Dict[str, Any],
    goes_right: Callable[[Dict[str, Any]], bool],
    *,
    left_counters: Dict[str, Any],
    right_counters: Dict[str, Any],
) -> Dict[str, Any]:
    """Partition a parent :func:`engine_state` snapshot into two children.

    ``goes_right`` inspects one serialized ride state (it has ``source`` as
    ``[lat, lon]``, which the router resolves to a cluster and then to the
    carved side).  Everything keyed by ride id — tracking watermarks and the
    three ledgers — follows its ride; entries whose ride id appears in
    neither child's rides (e.g. a rollback against a ride cancelled long
    ago) stay **left**, the child that keeps the parent's identity, so the
    union of the children is exactly the parent.

    Returns ``{"left": state, "right": state, "moved_rides": [ride ids]}``.
    """
    left = _empty_state(left_counters)
    right = _empty_state(right_counters)
    side: Dict[int, Dict[str, Any]] = {}
    for key in ("rides", "completed_rides"):
        for ride in state.get(key, []):
            target = right if goes_right(ride) else left
            target[key].append(ride)
            side[int(ride["ride_id"])] = target
    moved = sorted(
        int(ride["ride_id"])
        for key in ("rides", "completed_rides")
        for ride in right[key]
    )
    for ride_id, tracked in state.get("tracked_to", []):
        side.get(int(ride_id), left)["tracked_to"].append([ride_id, tracked])
    for key in ("bookings", "rollbacks", "cancellations"):
        for record in state.get(key, []):
            side.get(int(record["ride_id"]), left)[key].append(record)
    return {"left": left, "right": right, "moved_rides": moved}


def merge_engine_states(
    states: Iterable[Dict[str, Any]],
    counters: Dict[str, Any],
) -> Dict[str, Any]:
    """Union several :func:`engine_state` snapshots into one.

    Used by shard merges: the parents own disjoint ride-id lanes, so plain
    concatenation is collision-free.  ``counters`` are the destination
    child's allocator state (the merge keeps the destination's lane; the
    source's lane is parked and routed by the lane-owner table).
    """
    merged = _empty_state(counters)
    for state in states:
        for key in ("rides", "completed_rides", "tracked_to", "bookings",
                    "rollbacks", "cancellations"):
            merged[key].extend(state.get(key, []))
    merged["tracked_to"] = sorted(merged["tracked_to"])
    return merged


def state_ride_ids(state: Dict[str, Any]) -> List[int]:
    """All ride ids (live + completed) a serialized state holds."""
    return sorted(
        int(ride["ride_id"])
        for key in ("rides", "completed_rides")
        for ride in state.get(key, [])
    )
