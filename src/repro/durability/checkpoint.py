"""Engine checkpoints: versioned, digest-stamped snapshots of an XAREngine.

A checkpoint bounds recovery time: instead of replaying a shard's entire
write-ahead log from empty, recovery restores the latest checkpoint and
replays only the WAL suffix past the checkpoint's ``wal_seq``.

The file is JSON (atomic tmp-file + ``os.replace`` write) holding the full
mutable engine state — rides with their live routes / via-points / seat and
detour budgets / tracking progress, the completed-ride archive, the booking
and rollback ledgers, and the id allocators.  The cluster index is **not**
serialized: it is a pure function of the rides plus their tracked progress,
so restore rebuilds it deterministically (:func:`restore_engine_state`),
which both shrinks the file and means a checkpoint can never carry a
corrupted index forward.

Every checkpoint is stamped with the discretization build's content digest
(:func:`~repro.discretization.region_digest`).  Search and booking answers
depend on the cluster geometry, so restoring a checkpoint against a
different build would silently diverge — the reader rejects it with
:class:`~repro.exceptions.CheckpointError` instead.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from ..core.booking import BookingRecord, BookingRollback, CancellationRecord
from ..core.engine import XAREngine
from ..core.ride import PassengerRecord, Ride, RideStatus, ViaPoint
from ..core.tracking import apply_obsolescence
from ..discretization import DiscretizedRegion, region_digest
from ..exceptions import CheckpointError
from ..geo import GeoPoint

CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _ride_state(ride: Ride) -> Dict[str, Any]:
    return {
        "ride_id": ride.ride_id,
        "route": ride.route,
        "departure_s": ride.departure_s,
        "detour_limit_m": ride.detour_limit_m,
        "detour_limit_initial_m": ride.detour_limit_initial_m,
        "seats_total": ride.seats_total,
        "seats_available": ride.seats_available,
        "status": ride.status.value,
        "progressed_m": ride.progressed_m,
        "base_length_m": ride.base_length_m,
        "driver_id": ride.driver_id,
        "shift_end_s": ride.shift_end_s,
        "retired": ride.retired,
        "source": [ride.source_point.lat, ride.source_point.lon],
        "destination": [ride.destination_point.lat, ride.destination_point.lon],
        "via_points": [
            [via.node, via.route_index, via.label, via.request_id]
            for via in ride.via_points
        ],
        "passengers": [
            [p.request_id, p.max_detour_m, p.baseline_onboard_m]
            for p in ride.passengers.values()
        ],
    }


def engine_state(engine: XAREngine) -> Dict[str, Any]:
    """The full mutable state of an engine, as a JSON-serializable dict.

    Call under ``engine.lock`` (the durable adapter does) so the snapshot is
    a consistent point-in-time cut.
    """
    return {
        "rides": [_ride_state(r) for r in engine.rides.values()],
        "completed_rides": [
            _ride_state(r) for r in engine.completed_rides.values()
        ],
        "tracked_to": sorted(
            [ride_id, t] for ride_id, t in engine.tracked_to.items()
        ),
        "bookings": [_booking_state(b) for b in engine.bookings],
        "rollbacks": [
            {
                "request_id": r.request_id,
                "ride_id": r.ride_id,
                "error": r.error,
                "reason": r.reason,
            }
            for r in engine.rollbacks
        ],
        "cancellations": [
            {
                "request_id": c.request_id,
                "ride_id": c.ride_id,
                "route_delta_m": c.route_delta_m,
                "detour_restored_m": c.detour_restored_m,
                "shortest_paths_computed": c.shortest_paths_computed,
            }
            for c in engine.cancellations
        ],
        "counters": engine.counter_state(),
    }


def _booking_state(record: BookingRecord) -> Dict[str, Any]:
    return {
        "request_id": record.request_id,
        "ride_id": record.ride_id,
        "pickup_landmark": record.pickup_landmark,
        "dropoff_landmark": record.dropoff_landmark,
        "walk_source_m": record.walk_source_m,
        "walk_destination_m": record.walk_destination_m,
        "eta_pickup_s": record.eta_pickup_s,
        "eta_dropoff_s": record.eta_dropoff_s,
        "detour_estimate_m": record.detour_estimate_m,
        "detour_actual_m": record.detour_actual_m,
        "shortest_paths_computed": record.shortest_paths_computed,
    }


def write_checkpoint(
    path: str,
    engine: XAREngine,
    *,
    shard_id: int = 0,
    wal_seq: int = -1,
    digest: Optional[str] = None,
) -> None:
    """Atomically persist the engine's state.

    ``wal_seq`` is the highest WAL sequence number already reflected in this
    state; recovery replays only records past it.  The tmp-file +
    ``os.replace`` dance means a crash mid-checkpoint leaves the previous
    checkpoint intact rather than a half-written file.

    The parent *directory* is fsynced after the rename: ``os.replace``
    updates a directory entry, and that entry lives in the directory's own
    data blocks — without the directory fsync a power cut can forget the
    rename entirely and resurface the pre-checkpoint file (or nothing),
    even though the new file's *contents* were fsynced.  Recovery would
    then replay from a WAL position the lost checkpoint was supposed to
    cover.
    """
    write_checkpoint_state(
        path,
        engine_state(engine),
        region_digest=(
            digest if digest is not None else region_digest(engine.region)
        ),
        shard_id=shard_id,
        wal_seq=wal_seq,
    )


def write_checkpoint_state(
    path: str,
    state: Dict[str, Any],
    *,
    region_digest: str,
    shard_id: int = 0,
    wal_seq: int = -1,
) -> None:
    """Atomically persist an already-serialized :func:`engine_state` dict.

    The resharding carve path builds child states by partitioning a parent
    snapshot — no child engine exists yet to snapshot — so the atomic
    tmp-file + rename + directory-fsync protocol is exposed at the state
    level too.  :func:`write_checkpoint` is now a thin wrapper over this.
    """
    payload = {
        "format": "xar.checkpoint",
        "version": CHECKPOINT_VERSION,
        "region_digest": region_digest,
        "shard_id": shard_id,
        "wal_seq": wal_seq,
        "engine": state,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(directory)


def _fsync_directory(directory: str) -> None:
    """Flush a directory's entries to disk (durability of renames).

    Best-effort on platforms whose directories cannot be opened/fsynced
    (e.g. Windows): the rename is still atomic there, just not guaranteed
    durable across power loss.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
def read_checkpoint(path: str, *, expected_digest: str = "") -> Dict[str, Any]:
    """Load and validate a checkpoint file (format, version, digest)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: unreadable checkpoint ({exc})") from exc
    if payload.get("format") != "xar.checkpoint":
        raise CheckpointError(f"{path}: not a checkpoint file")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version "
            f"{payload.get('version')!r} (this build reads "
            f"{CHECKPOINT_VERSION})"
        )
    if expected_digest and payload.get("region_digest") != expected_digest:
        raise CheckpointError(
            f"{path}: checkpoint was taken against a different discretization "
            f"build (digest {str(payload.get('region_digest'))[:12]}…, "
            f"expected {expected_digest[:12]}…) — stale checkpoints cannot be "
            "replayed onto new geometry"
        )
    return payload


def _restore_ride(region: DiscretizedRegion, state: Dict[str, Any]) -> Ride:
    route = [int(n) for n in state["route"]]
    shift_end = state.get("shift_end_s")
    ride = Ride(
        ride_id=int(state["ride_id"]),
        network=region.network,
        route=route,
        departure_s=float(state["departure_s"]),
        detour_limit_m=float(state["detour_limit_m"]),
        seats=int(state["seats_total"]),
        source_point=GeoPoint(*[float(c) for c in state["source"]]),
        destination_point=GeoPoint(*[float(c) for c in state["destination"]]),
        driver_id=state["driver_id"],
        shift_end_s=None if shift_end is None else float(shift_end),
    )
    ride.replace_route(
        route,
        [
            ViaPoint(
                node=int(node),
                route_index=int(index),
                label=str(label),
                request_id=None if request_id is None else int(request_id),
            )
            for node, index, label, request_id in state["via_points"]
        ],
    )
    ride.seats_available = int(state["seats_available"])
    ride.status = RideStatus(state["status"])
    ride.progressed_m = float(state["progressed_m"])
    # The ctor recomputed base_length_m from the stored (possibly already
    # spliced) route; put back the original offer's length.  Same for the
    # declared initial detour budget (the ctor copied the *current* one).
    ride.base_length_m = float(state["base_length_m"])
    ride.detour_limit_initial_m = float(
        state.get("detour_limit_initial_m", state["detour_limit_m"])
    )
    ride.retired = bool(state.get("retired", False))
    for request_id, max_detour, baseline in state.get("passengers", []):
        ride.passengers[int(request_id)] = PassengerRecord(
            request_id=int(request_id),
            max_detour_m=None if max_detour is None else float(max_detour),
            baseline_onboard_m=float(baseline),
        )
    return ride


def restore_engine_state(engine: XAREngine, state: Dict[str, Any]) -> None:
    """Populate a freshly constructed engine from :func:`engine_state`.

    The cluster index is rebuilt from scratch: every live ride is re-indexed
    against the current region, then each ride's obsolescence is re-applied
    at its checkpointed tracking watermark (obsolescence is monotone in
    time, so the one-shot application at the final watermark reproduces the
    incremental sweeps exactly).
    """
    region = engine.region
    with engine.lock:
        tracked_to = {int(rid): float(t) for rid, t in state["tracked_to"]}
        for ride_state in state["rides"]:
            ride = _restore_ride(region, ride_state)
            engine.rides[ride.ride_id] = ride
            engine._index_ride(ride)
        for ride_state in state["completed_rides"]:
            ride = _restore_ride(region, ride_state)
            engine.completed_rides[ride.ride_id] = ride
        engine.tracked_to.update(tracked_to)
        for ride_id, tracked in tracked_to.items():
            ride = engine.rides.get(ride_id)
            if ride is not None and tracked > ride.departure_s:
                apply_obsolescence(engine, ride_id, tracked)
        engine.bookings.extend(
            BookingRecord(**booking) for booking in state["bookings"]
        )
        engine.rollbacks.extend(
            BookingRollback(**rollback) for rollback in state["rollbacks"]
        )
        engine.cancellations.extend(
            CancellationRecord(**cancellation)
            for cancellation in state.get("cancellations", [])
        )
        engine.restore_counter_state(state["counters"])
