"""Durable state: write-ahead log, checkpoints, crash recovery.

The durability layer makes a shard engine's state survive process death:

* :mod:`~repro.durability.wal` — append-only, CRC-framed, fsync-batched
  write-ahead log of every mutating operation;
* :mod:`~repro.durability.checkpoint` — versioned engine snapshots stamped
  with the discretization build's content digest;
* :mod:`~repro.durability.recovery` — deterministic replay (checkpoint +
  WAL suffix) reconstructing an engine that matches the pre-crash one
  exactly (the differential harness asserts fingerprint equality);
* :mod:`~repro.durability.adapter` — the log-before-apply decorator that
  wires the above into the adapter stack, plus the service-level
  :class:`DurabilityConfig`.
"""

from .adapter import DurabilityConfig, DurableAdapter
from .checkpoint import (
    CHECKPOINT_VERSION,
    engine_state,
    read_checkpoint,
    restore_engine_state,
    write_checkpoint,
    write_checkpoint_state,
)
from .recovery import RecoveryResult, recover_engine, replay_record
from .reshard import (
    TOPOLOGY_VERSION,
    merge_engine_states,
    read_topology,
    split_engine_state,
    state_ride_ids,
    topology_path,
    write_topology,
)
from .wal import (
    WAL_VERSION,
    WalFrame,
    WalScan,
    WriteAheadLog,
    iter_frames,
    scan_wal,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "DurabilityConfig",
    "DurableAdapter",
    "RecoveryResult",
    "TOPOLOGY_VERSION",
    "WAL_VERSION",
    "WalFrame",
    "WalScan",
    "WriteAheadLog",
    "engine_state",
    "iter_frames",
    "merge_engine_states",
    "read_checkpoint",
    "read_topology",
    "recover_engine",
    "replay_record",
    "restore_engine_state",
    "scan_wal",
    "split_engine_state",
    "state_ride_ids",
    "topology_path",
    "write_checkpoint",
    "write_checkpoint_state",
    "write_topology",
]
