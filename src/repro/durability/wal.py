"""Append-only, CRC-framed, fsync-batched write-ahead log.

One WAL file per shard engine.  Every mutating operation (create / book /
cancel / track tick) is logged **before** it is applied — log-before-apply —
so any state the engine reached is reconstructible by redoing the log, and
an op interrupted mid-flight (crash between append and apply) is *completed*
by recovery rather than lost.

Frame format (little-endian)::

    +----------------+----------------+----------------------+
    | length: u32 LE | crc32: u32 LE  | payload (JSON, UTF-8) |
    +----------------+----------------+----------------------+

The CRC covers the payload bytes.  Record kinds:

* ``header`` — first frame of every log: format version, shard identity
  (id + ride-id lane) and the discretization build's content digest
  (:func:`~repro.discretization.region_digest`), so a log can never be
  replayed onto a different region;
* ``op`` — one mutating operation with a monotonically increasing ``seq``;
  checkpoints record the last ``seq`` they contain, making the replay
  suffix a simple ``seq >`` filter;
* ``abort`` — a logged op later failed cleanly inside the engine (an
  :class:`~repro.exceptions.XARError`, e.g. a stale match).  Replay skips
  the op it names and re-records the rollback, so deterministic failures
  stay failures even if the environment that caused them is gone.

Durability batching: every append is *written and flushed* to the OS
immediately (so a simulated crash that merely stops the process loses
nothing), but ``fsync`` — the expensive disk barrier — runs every
``fsync_every`` appends and on close.  Torn tails from a real power cut (or
the :class:`~repro.sim.faults.TornWrite` policy) are detected on open by the
CRC framing and truncated to the last complete record.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..exceptions import DurabilityError, WALCorruptionError
from ..obs import MetricsRegistry

#: Frame prefix: payload length + payload CRC32, both little-endian u32.
_FRAME = struct.Struct("<II")

WAL_VERSION = 1


def _encode(record: Dict[str, Any]) -> bytes:
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class WalFrame:
    """One decoded frame (or the undecodable tail), for scans and dumps."""

    offset: int
    record: Optional[Dict[str, Any]]
    crc_ok: bool
    #: Why decoding stopped here, when it did ("" for a good frame).
    error: str = ""


@dataclass
class WalScan:
    """Everything a recovery needs to know about an existing log."""

    header: Optional[Dict[str, Any]]
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: Byte offset of the first byte *after* the last complete record.
    good_length: int = 0
    #: Bytes past ``good_length`` (0 == the log ended on a frame boundary).
    torn_bytes: int = 0
    torn_reason: str = ""

    @property
    def last_seq(self) -> int:
        seqs = [int(r["seq"]) for r in self.records if "seq" in r]
        return max(seqs) if seqs else -1


def iter_frames(path: str) -> Iterator[WalFrame]:
    """Tolerant frame iterator: yields good frames, then the bad tail (once).

    Unlike :func:`scan_wal` this never raises on damage — it is the
    ``wal-dump`` back-end and must render corrupt logs, not reject them.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            yield WalFrame(offset, None, False, "truncated frame header")
            return
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            yield WalFrame(offset, None, False,
                           f"truncated payload ({len(data) - start}/{length} bytes)")
            return
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            yield WalFrame(offset, None, False, "crc mismatch")
            return
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            yield WalFrame(offset, None, False, f"undecodable payload: {exc}")
            return
        yield WalFrame(offset, record, True)
        offset = end


def scan_wal(path: str) -> WalScan:
    """Decode a WAL: header + op/abort records + torn-tail measurement.

    The first structurally bad frame marks the torn tail; everything before
    it is returned, everything after is measured as ``torn_bytes``.  A
    missing or malformed *header* (very first frame) is not a torn tail —
    the file is not a WAL at all — and raises
    :class:`~repro.exceptions.WALCorruptionError`.
    """
    scan = WalScan(header=None)
    size = os.path.getsize(path)
    for frame in iter_frames(path):
        if not frame.crc_ok:
            if scan.header is None:
                raise WALCorruptionError(
                    f"{path}: no valid header frame ({frame.error})"
                )
            scan.torn_reason = frame.error
            break
        record = frame.record
        if scan.header is None:
            if record.get("kind") != "header":
                raise WALCorruptionError(
                    f"{path}: first frame is {record.get('kind')!r}, "
                    "expected the WAL header"
                )
            if record.get("version") != WAL_VERSION:
                raise WALCorruptionError(
                    f"{path}: unsupported WAL version {record.get('version')!r}"
                )
            scan.header = record
        else:
            scan.records.append(record)
        scan.good_length = frame.offset + _FRAME.size + len(
            json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        )
    scan.torn_bytes = size - scan.good_length
    return scan


class WriteAheadLog:
    """The per-shard append side of the log.

    Use :meth:`open` — it creates a fresh log (writing the header frame) or
    appends to an existing one after validating its header and truncating
    any torn tail.
    """

    def __init__(
        self,
        path: str,
        handle,
        next_seq: int,
        *,
        fsync_every: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        metrics_labels: Optional[Dict[str, str]] = None,
    ):
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every!r}")
        self.path = path
        self._handle = handle
        self._next_seq = next_seq
        self.fsync_every = fsync_every
        self._appends_since_sync = 0
        self._closed = False
        self._m_appends = self._m_fsyncs = self._m_bytes = None
        if metrics is not None:
            labels = dict(metrics_labels or {})
            label_names = tuple(sorted(labels))
            self._m_appends = metrics.counter(
                "xar_wal_appends_total",
                "Records appended to the write-ahead log",
                labels=label_names,
            ).labels(**labels)
            self._m_fsyncs = metrics.counter(
                "xar_wal_fsyncs_total",
                "fsync barriers issued by the write-ahead log",
                labels=label_names,
            ).labels(**labels)
            self._m_bytes = metrics.counter(
                "xar_wal_bytes_total",
                "Bytes appended to the write-ahead log (framing included)",
                labels=label_names,
            ).labels(**labels)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str,
        *,
        shard_id: int = 0,
        ride_id_start: int = 1,
        ride_id_step: int = 1,
        region_digest: str = "",
        fsync_every: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        metrics_labels: Optional[Dict[str, str]] = None,
    ) -> "WriteAheadLog":
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        if exists:
            scan = scan_wal(path)
            header = scan.header
            if region_digest and header.get("region_digest") not in ("", region_digest):
                raise DurabilityError(
                    f"{path}: WAL was written for a different discretization "
                    f"build (digest {str(header.get('region_digest'))[:12]}…, "
                    f"expected {region_digest[:12]}…)"
                )
            if (header.get("shard_id"), header.get("ride_id_start"),
                    header.get("ride_id_step")) != (
                    shard_id, ride_id_start, ride_id_step):
                raise DurabilityError(
                    f"{path}: WAL belongs to another shard lane "
                    f"(shard {header.get('shard_id')}, "
                    f"lane {header.get('ride_id_start')}"
                    f"+k*{header.get('ride_id_step')})"
                )
            if scan.torn_bytes:
                # Truncate the torn tail so appends resume on a frame
                # boundary; the count is recovery's torn-tail metric source.
                with open(path, "r+b") as trunc:
                    trunc.truncate(scan.good_length)
            handle = open(path, "ab")
            next_seq = scan.last_seq + 1
        else:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            handle = open(path, "ab")
            header = {
                "kind": "header",
                "version": WAL_VERSION,
                "shard_id": shard_id,
                "ride_id_start": ride_id_start,
                "ride_id_step": ride_id_step,
                "region_digest": region_digest,
            }
            handle.write(_encode(header))
            handle.flush()
            os.fsync(handle.fileno())
            next_seq = 0
        return cls(
            path,
            handle,
            next_seq,
            fsync_every=fsync_every,
            metrics=metrics,
            metrics_labels=metrics_labels,
        )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        return self._next_seq

    def append(self, record: Dict[str, Any]) -> int:
        """Frame, write and flush one record; returns its assigned ``seq``.

        The write always reaches the OS (flush); the disk barrier (fsync)
        is batched every ``fsync_every`` appends.
        """
        if self._closed:
            raise DurabilityError(f"{self.path}: WAL is closed")
        seq = self._next_seq
        self._next_seq += 1
        framed = _encode({**record, "seq": seq})
        self._handle.write(framed)
        self._handle.flush()
        self._appends_since_sync += 1
        if self._m_appends is not None:
            self._m_appends.inc()
            self._m_bytes.inc(len(framed))
        if self._appends_since_sync >= self.fsync_every:
            self.sync()
        return seq

    def sync(self) -> None:
        """Issue the fsync barrier now (no-op when nothing is pending)."""
        if self._closed or self._appends_since_sync == 0:
            return
        os.fsync(self._handle.fileno())
        self._appends_since_sync = 0
        if self._m_fsyncs is not None:
            self._m_fsyncs.inc()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self.sync()
        self._closed = True
        self._handle.close()

    def abandon(self) -> None:
        """Drop the handle without syncing — simulates dying mid-write.

        Appends were flushed to the OS, so the bytes survive (this is a
        process death, not a power cut); only the batched fsync is skipped.
        """
        self._closed = True
        self._handle.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def tail_size(path: str) -> Tuple[int, int]:
    """(total bytes, torn-tail bytes) of a log — cheap health probe."""
    scan = scan_wal(path)
    return scan.good_length + scan.torn_bytes, scan.torn_bytes
