"""Crash recovery: checkpoint restore + deterministic WAL replay.

:func:`recover_engine` rebuilds a shard engine after a crash:

1. scan the write-ahead log (torn tail measured and ignored — the last
   complete record wins), validating its header against the live region's
   content digest;
2. restore the latest checkpoint, if one exists (rejected when stale
   against the region or written by another shard);
3. replay the WAL suffix — every ``op`` record with ``seq`` greater than
   the checkpoint's watermark — against a freshly constructed engine.

Replay is deterministic because every nondeterministic input was resolved
*before* logging: creates carry the ride id the allocator was about to hand
out (the replayer pins the allocator to it), books carry the full request
and the full match (no search is re-run), tracks carry the simulated
timestamp.  Ops that failed cleanly in the live run have an ``abort``
record; replay skips them and re-records the rollback, so an environment-
dependent failure (an injected fault that is gone now) cannot make the
replayed engine diverge from the pre-crash one.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..core.booking import BookingRollback
from ..core.engine import XAREngine
from ..core.request import RideRequest
from ..core.search import MatchOption
from ..discretization import DiscretizedRegion, region_digest
from ..exceptions import RecoveryError, XARError
from ..geo import GeoPoint
from ..obs import MetricsRegistry
from .checkpoint import read_checkpoint, restore_engine_state
from .wal import WalScan, scan_wal


@dataclass
class RecoveryResult:
    """What a recovery did, for supervisors, CLIs and tests."""

    engine: XAREngine
    shard_id: int
    #: Ops re-executed from the WAL suffix.
    replayed_ops: int
    #: Ops skipped because the live run aborted them (abort records).
    skipped_ops: int
    #: Ops that raised a (deterministic) XARError again during replay.
    failed_ops: int
    #: Bytes discarded past the last complete WAL record (0 = clean tail).
    torn_tail_bytes: int
    #: WAL watermark the checkpoint covered (-1 = no checkpoint).
    checkpoint_seq: int
    #: Highest WAL seq observed (-1 = empty log).
    last_seq: int
    duration_s: float


def _request_from(state: Dict[str, Any]) -> RideRequest:
    max_detour = state.get("max_detour_m")
    return RideRequest(
        request_id=int(state["request_id"]),
        source=GeoPoint(*[float(c) for c in state["source"]]),
        destination=GeoPoint(*[float(c) for c in state["destination"]]),
        window_start_s=float(state["window_start_s"]),
        window_end_s=float(state["window_end_s"]),
        walk_threshold_m=float(state["walk_threshold_m"]),
        max_detour_m=None if max_detour is None else float(max_detour),
    )


def _match_from(state: Dict[str, Any]) -> MatchOption:
    return MatchOption(
        ride_id=int(state["ride_id"]),
        request_id=int(state["request_id"]),
        pickup_cluster=int(state["pickup_cluster"]),
        pickup_landmark=int(state["pickup_landmark"]),
        walk_source_m=float(state["walk_source_m"]),
        dropoff_cluster=int(state["dropoff_cluster"]),
        dropoff_landmark=int(state["dropoff_landmark"]),
        walk_destination_m=float(state["walk_destination_m"]),
        eta_pickup_s=float(state["eta_pickup_s"]),
        eta_dropoff_s=float(state["eta_dropoff_s"]),
        detour_estimate_m=float(state["detour_estimate_m"]),
    )


def replay_record(engine: XAREngine, record: Dict[str, Any]) -> None:
    """Re-execute one WAL ``op`` record against the engine."""
    op = record["op"]
    if op == "create":
        # Pin the allocator to the id the live run predicted; this also
        # self-heals the gap left by a create that consumed an id and then
        # failed without an abort record reaching the log.
        engine._ride_ids.next_value = int(record["ride_id"])
        engine.create_ride(
            GeoPoint(*[float(c) for c in record["src"]]),
            GeoPoint(*[float(c) for c in record["dst"]]),
            departure_s=float(record["departure_s"]),
            detour_limit_m=(
                None
                if record.get("detour_limit_m") is None
                else float(record["detour_limit_m"])
            ),
            seats=None if record.get("seats") is None else int(record["seats"]),
            driver_id=record.get("driver_id"),
            shift_end_s=(
                None
                if record.get("shift_end_s") is None
                else float(record["shift_end_s"])
            ),
        )
    elif op == "book":
        request = _request_from(record["request"])
        match = _match_from(record["match"])
        engine.book(request, match)
        # Keep the request-id allocator ahead of every replayed request so a
        # post-recovery make_request cannot reuse a logged id.
        if engine._request_ids.next_value <= request.request_id:
            engine._request_ids.next_value = request.request_id + 1
    elif op == "cancel":
        engine.remove_ride(int(record["ride_id"]))
    elif op == "cancel_booking":
        engine.cancel_booking(int(record["request_id"]), int(record["ride_id"]))
    elif op == "track":
        engine.track_all(float(record["now_s"]))
    else:
        raise RecoveryError(f"WAL op record with unknown op {op!r}")


def recover_engine(
    region: DiscretizedRegion,
    wal_path: str,
    checkpoint_path: Optional[str] = None,
    *,
    engine_factory: Optional[Callable[[], XAREngine]] = None,
    metrics: Optional[MetricsRegistry] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> RecoveryResult:
    """Rebuild a shard engine from its checkpoint + WAL suffix.

    ``engine_factory`` builds the empty engine to replay into; it must
    mirror the live engine's configuration (optimize_insertion, router,
    metrics labels).  When omitted, a plain engine on the WAL header's
    ride-id lane is constructed.  ``checkpoint_path`` pointing at a missing
    file is treated as "no checkpoint yet" — replay starts from empty.
    """
    started = clock()
    digest = region_digest(region)
    scan: WalScan = scan_wal(wal_path)
    header = scan.header
    if header is None:
        # Empty (or header-less) WAL: the shard died before its very first
        # write — even the header frame — which SIGKILL at spawn time can
        # produce.  Valid, just young: recover to the checkpoint if one
        # exists, else an empty engine; nothing to replay.
        header = {}
    if header.get("region_digest", "") not in ("", digest):
        raise RecoveryError(
            f"{wal_path}: WAL was written for a different discretization "
            f"build (digest {str(header.get('region_digest'))[:12]}…, "
            f"expected {digest[:12]}…)"
        )
    shard_id = int(header.get("shard_id", 0))
    labels = {"shard": str(shard_id)}

    if engine_factory is not None:
        engine = engine_factory()
    else:
        engine = XAREngine(
            region,
            ride_id_start=int(header.get("ride_id_start", 1)),
            ride_id_step=int(header.get("ride_id_step", 1)),
        )

    checkpoint_seq = -1
    if checkpoint_path is not None and os.path.exists(checkpoint_path):
        payload = read_checkpoint(checkpoint_path, expected_digest=digest)
        if int(payload.get("shard_id", 0)) != shard_id:
            raise RecoveryError(
                f"{checkpoint_path}: checkpoint belongs to shard "
                f"{payload.get('shard_id')}, WAL to shard {shard_id}"
            )
        restore_engine_state(engine, payload["engine"])
        checkpoint_seq = int(payload.get("wal_seq", -1))

    # Ops the live run aborted after logging: skip on replay, but re-record
    # the rollback so the ledger matches the pre-crash engine.
    aborts = {
        int(record["aborts"]): record
        for record in scan.records
        if record.get("kind") == "abort"
    }

    replayed = skipped = failed = 0
    for record in scan.records:
        if record.get("kind") != "op" or int(record["seq"]) <= checkpoint_seq:
            continue
        abort = aborts.get(int(record["seq"]))
        if abort is not None:
            skipped += 1
            if record["op"] == "book":
                engine.rollbacks.append(
                    BookingRollback(
                        request_id=int(abort["request_id"]),
                        ride_id=int(abort["ride_id"]),
                        error=str(abort["error"]),
                        reason=str(abort["reason"]),
                    )
                )
            continue
        try:
            replay_record(engine, record)
            replayed += 1
        except XARError:
            # A deterministic failure that crashed the worker before its
            # abort record could be written; the engine has already rolled
            # back and recorded it, exactly as the live run would have.
            failed += 1

    duration = clock() - started
    if metrics is not None:
        label_names = ("shard",)
        metrics.counter(
            "xar_recovery_replayed_ops_total",
            "WAL ops re-executed during crash recovery",
            labels=label_names,
        ).labels(**labels).inc(replayed)
        if scan.torn_bytes:
            metrics.counter(
                "xar_wal_torn_tail_total",
                "Recoveries that found (and truncated past) a torn WAL tail",
                labels=label_names,
            ).labels(**labels).inc()
        metrics.histogram(
            "xar_recovery_duration_seconds",
            "Wall-clock duration of crash recoveries",
            labels=label_names,
        ).labels(**labels).observe(duration)

    return RecoveryResult(
        engine=engine,
        shard_id=shard_id,
        replayed_ops=replayed,
        skipped_ops=skipped,
        failed_ops=failed,
        torn_tail_bytes=scan.torn_bytes,
        checkpoint_seq=checkpoint_seq,
        last_seq=scan.last_seq,
        duration_s=duration,
    )
