"""DurableAdapter: log-before-apply WAL wrapper around an engine adapter.

Sits *innermost* in the service stack — directly around
:class:`~repro.sim.adapters.XARAdapter`, underneath the resilient runtime
and the shard worker — so that every mutation that actually reaches the
engine is logged, including the retries and create-on-miss calls the
resilient layer issues on its own.

Protocol per mutating op (create / book / cancel / track):

1. append an ``op`` record resolving all nondeterminism up front (the ride
   id the allocator will hand out, the full request + match for a book);
2. apply the op on the inner adapter;
3. on a clean engine failure (:class:`~repro.exceptions.XARError`) append
   an ``abort`` record naming the op's seq, then re-raise — replay skips
   aborted ops and re-records their rollbacks;
4. on a crash (anything else, e.g.
   :class:`~repro.exceptions.WorkerCrashError`) append nothing — the op
   record without an abort is exactly the signal recovery needs to
   *complete* the interrupted op.

Checkpoints are cut every ``checkpoint_every`` mutations (0 = only on
demand) under the engine lock, stamped with the WAL watermark they cover.
Reads (search, introspection) bypass the log entirely.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.request import RideRequest
from ..exceptions import XARError
from ..geo import GeoPoint
from ..obs import MetricsRegistry
from ..sim.adapters import XARAdapter
from .checkpoint import write_checkpoint
from .wal import WriteAheadLog


@dataclass
class DurabilityConfig:
    """Where and how aggressively a service persists its state."""

    #: Directory holding one ``shard<k>.wal`` + ``shard<k>.ckpt`` per shard.
    directory: str
    #: Appends between fsync barriers (1 = fsync every op; the default
    #: batches, which is what keeps durable throughput near the in-memory
    #: baseline).
    fsync_every: int = 64
    #: Mutations between automatic checkpoints (0 = never automatically).
    checkpoint_every: int = 0
    #: Per-slot file-name overrides, ``slot -> (wal_name, ckpt_name)``.
    #: Elastic resharding retires a slot's files and adopts
    #: generation-suffixed successors (``shard0.g3.wal``); the topology
    #: manifest is the durable source of truth for this table, and the
    #: router mirrors it here so every stack (re)build opens the right
    #: files.  Empty for services that never reshard.
    names: Dict[int, Tuple[str, str]] = field(default_factory=dict)

    def wal_path(self, shard_id: int) -> str:
        named = self.names.get(shard_id)
        if named is not None:
            return os.path.join(self.directory, named[0])
        return os.path.join(self.directory, f"shard{shard_id}.wal")

    def checkpoint_path(self, shard_id: int) -> str:
        named = self.names.get(shard_id)
        if named is not None:
            return os.path.join(self.directory, named[1])
        return os.path.join(self.directory, f"shard{shard_id}.ckpt")


def _point(point: GeoPoint) -> List[float]:
    return [point.lat, point.lon]


def _request_record(request: RideRequest) -> Dict[str, Any]:
    return {
        "request_id": request.request_id,
        "source": _point(request.source),
        "destination": _point(request.destination),
        "window_start_s": request.window_start_s,
        "window_end_s": request.window_end_s,
        "walk_threshold_m": request.walk_threshold_m,
        "max_detour_m": request.max_detour_m,
    }


def _match_record(match) -> Dict[str, Any]:
    return {
        "ride_id": match.ride_id,
        "request_id": match.request_id,
        "pickup_cluster": match.pickup_cluster,
        "pickup_landmark": match.pickup_landmark,
        "walk_source_m": match.walk_source_m,
        "dropoff_cluster": match.dropoff_cluster,
        "dropoff_landmark": match.dropoff_landmark,
        "walk_destination_m": match.walk_destination_m,
        "eta_pickup_s": match.eta_pickup_s,
        "eta_dropoff_s": match.eta_dropoff_s,
        "detour_estimate_m": match.detour_estimate_m,
    }


class DurableAdapter:
    """WAL + checkpoint decorator over :class:`XARAdapter`.

    Implements the full :class:`~repro.sim.adapters.EngineAdapter` surface;
    the wrapped adapter stays reachable as ``.inner`` and the raw engine as
    ``.engine`` (auditor/simulator convention).
    """

    def __init__(
        self,
        inner: XARAdapter,
        wal: WriteAheadLog,
        *,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 0,
        shard_id: int = 0,
        digest: str = "",
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.inner = inner
        self.wal = wal
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.shard_id = shard_id
        self.digest = digest
        self.name = f"{inner.name}+wal"
        #: Highest WAL seq whose effect (apply or abort) is in the engine.
        self._last_seq = wal.next_seq - 1
        self._mutations_since_checkpoint = 0
        self._m_checkpoints = None
        if metrics is not None:
            self._m_checkpoints = metrics.counter(
                "xar_checkpoints_total",
                "Engine checkpoints written",
                labels=("shard",),
            ).labels(shard=str(shard_id))

    @property
    def engine(self):
        return self.inner.engine

    # ------------------------------------------------------------------
    # Logged mutations
    # ------------------------------------------------------------------
    def _logged(self, record: Dict[str, Any], fn, *, request_id=None,
                ride_id=None):
        seq = self.wal.append(record)
        self._last_seq = seq
        try:
            result = fn()
        except XARError as exc:
            self._last_seq = self.wal.append(
                {
                    "kind": "abort",
                    "aborts": seq,
                    "request_id": request_id,
                    "ride_id": ride_id,
                    "error": type(exc).__name__,
                    "reason": str(exc),
                }
            )
            self._after_mutation()
            raise
        self._after_mutation()
        return result

    def _after_mutation(self) -> None:
        self._mutations_since_checkpoint += 1
        if (
            self.checkpoint_every > 0
            and self._mutations_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()

    def create(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
        shift_end_s: Optional[float] = None,
    ):
        engine = self.engine
        record = {
            "kind": "op",
            "op": "create",
            "ride_id": engine.peek_next_ride_id(),
            "src": _point(source),
            "dst": _point(destination),
            "departure_s": depart_s,
            "seats": seats,
            "detour_limit_m": detour_limit_m,
            "driver_id": None,
            "shift_end_s": shift_end_s,
        }
        return self._logged(
            record,
            lambda: self.inner.create(
                source, destination, depart_s, seats, detour_limit_m,
                shift_end_s=shift_end_s,
            ),
            ride_id=record["ride_id"],
        )

    def book(self, request: RideRequest, match):
        record = {
            "kind": "op",
            "op": "book",
            "request": _request_record(request),
            "match": _match_record(match),
        }
        return self._logged(
            record,
            lambda: self.inner.book(request, match),
            request_id=request.request_id,
            ride_id=match.ride_id,
        )

    def cancel(self, ride) -> None:
        record = {"kind": "op", "op": "cancel", "ride_id": ride.ride_id}
        return self._logged(
            record, lambda: self.inner.cancel(ride), ride_id=ride.ride_id
        )

    def cancel_booking(self, request_id: int, ride_id: int):
        record = {
            "kind": "op",
            "op": "cancel_booking",
            "request_id": request_id,
            "ride_id": ride_id,
        }
        return self._logged(
            record,
            lambda: self.inner.cancel_booking(request_id, ride_id),
            request_id=request_id,
            ride_id=ride_id,
        )

    def track_all(self, now_s: float) -> int:
        record = {"kind": "op", "op": "track", "now_s": now_s}
        return self._logged(record, lambda: self.inner.track_all(now_s))

    # ------------------------------------------------------------------
    # Unlogged reads
    # ------------------------------------------------------------------
    def search(self, request: RideRequest, k: Optional[int] = None):
        return self.inner.search(request, k)

    def active_rides(self):
        return self.inner.active_rides()

    def rollback_count(self) -> int:
        return self.inner.rollback_count()

    def index_stats(self) -> Dict[str, int]:
        return self.inner.index_stats()

    # ------------------------------------------------------------------
    # Checkpointing / lifecycle
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Cut a checkpoint covering everything logged so far."""
        if self.checkpoint_path is None:
            return
        engine = self.engine
        with engine.lock:
            # Barrier first: a checkpoint must never cover records the disk
            # does not hold yet.
            self.wal.sync()
            write_checkpoint(
                self.checkpoint_path,
                engine,
                shard_id=self.shard_id,
                wal_seq=self._last_seq,
                digest=self.digest or None,
            )
        self._mutations_since_checkpoint = 0
        if self._m_checkpoints is not None:
            self._m_checkpoints.inc()

    def close(self) -> None:
        self.wal.close()

    def abandon(self) -> None:
        """Drop the WAL handle without the final sync (crash simulation)."""
        self.wal.abandon()
