"""Scenario city builders: single lattices and bridged twin regions.

The twin city is two Manhattan-style lattices separated by an empty gap and
joined by a small number of two-way bridge edges.  Its point is spatial:
the service's shard map partitions geographically, so with two shards each
lattice lands on its own shard and every cross-region trip exercises
cross-shard search fan-out plus the bridges' capacity as a routing choke
point.  Strong connectivity is verified at build time, exactly like the
stock generators.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..discretization import DiscretizedRegion, build_region
from ..config import XARConfig
from ..exceptions import ScenarioError
from ..geo import destination_point
from ..roadnet import RoadNetwork, manhattan_city
from ..roadnet.generators import AVENUE_SPEED, DEFAULT_ORIGIN, is_strongly_connected

from .spec import CitySpec


def build_city(spec: CitySpec) -> RoadNetwork:
    """Build the scenario's road network from its city spec."""
    if spec.kind == "lattice":
        return manhattan_city(n_avenues=spec.avenues, n_streets=spec.streets)
    if spec.kind == "twin":
        return twin_city(
            n_avenues=spec.avenues,
            n_streets=spec.streets,
            separation_m=spec.separation_m,
            n_bridges=spec.bridges,
        )
    raise ScenarioError(f"unknown city kind {spec.kind!r}")


def twin_city(
    n_avenues: int = 6,
    n_streets: int = 12,
    avenue_spacing_m: float = 250.0,
    street_spacing_m: float = 100.0,
    separation_m: float = 2000.0,
    n_bridges: int = 2,
) -> RoadNetwork:
    """Two lattices joined by ``n_bridges`` two-way bridge edges.

    The west lattice keeps its stock geometry; the east one is shifted east
    by the west lattice's width plus ``separation_m``.  Bridges connect the
    west lattice's easternmost avenue to the east lattice's westernmost
    avenue at evenly spaced streets, so every cross-region route funnels
    through at most ``n_bridges`` corridors.
    """
    if n_bridges < 1:
        raise ScenarioError("a twin city needs at least one bridge")
    if n_bridges > n_streets:
        raise ScenarioError(
            f"cannot place {n_bridges} bridges across {n_streets} streets"
        )
    west = manhattan_city(
        n_avenues=n_avenues, n_streets=n_streets,
        avenue_spacing_m=avenue_spacing_m, street_spacing_m=street_spacing_m,
    )
    east_origin = destination_point(
        DEFAULT_ORIGIN, 90.0,
        (n_avenues - 1) * avenue_spacing_m + separation_m,
    )
    east = manhattan_city(
        n_avenues=n_avenues, n_streets=n_streets,
        avenue_spacing_m=avenue_spacing_m, street_spacing_m=street_spacing_m,
        origin=east_origin,
    )

    merged = RoadNetwork()
    offset = west.node_count
    for node in west.nodes():
        merged.add_node(node, west.position(node))
    for node in east.nodes():
        merged.add_node(node + offset, east.position(node))
    for edge in west.edges():
        merged.add_edge(edge.source, edge.target,
                        length_m=edge.length_m, speed_mps=edge.speed_mps)
    for edge in east.edges():
        merged.add_edge(edge.source + offset, edge.target + offset,
                        length_m=edge.length_m, speed_mps=edge.speed_mps)

    # Bridge street indices, evenly spread (lattice node ids are
    # avenue-major: node (ai, si) = ai * n_streets + si).
    for k in range(n_bridges):
        si = (k * (n_streets - 1)) // max(1, n_bridges - 1) if n_bridges > 1 \
            else n_streets // 2
        west_node = (n_avenues - 1) * n_streets + si
        east_node = offset + si  # east lattice's avenue 0, street si
        merged.add_edge(west_node, east_node,
                        speed_mps=AVENUE_SPEED, bidirectional=True)

    if not is_strongly_connected(merged):
        raise ScenarioError("twin city is not strongly connected")
    return merged


#: Session-level region cache: scenario sweeps reuse regions across specs
#: with identical city sections (the region build runs Dijkstras over the
#: landmark set, by far the most expensive step of a scenario).
_REGION_CACHE: Dict[Tuple, DiscretizedRegion] = {}


def region_for(spec: CitySpec) -> DiscretizedRegion:
    """Build (or fetch from cache) the discretized region for a city spec."""
    key = (
        spec.kind, spec.avenues, spec.streets, spec.delta_m, spec.poi_seed,
        spec.separation_m, spec.bridges,
    )
    region = _REGION_CACHE.get(key)
    if region is None:
        network = build_city(spec)
        config = XARConfig.validated(delta_m=spec.delta_m)
        region = build_region(network, config, poi_seed=spec.poi_seed)
        _REGION_CACHE[key] = region
    return region
