"""Declarative scenario assertions evaluated on a finished run.

Each assertion is a pure function of the run's collected facts (counts,
audit outcome, ledgers, budget sweep) — no re-execution.  Deterministic
assertions land in the canonical report; the wall-clock p95 ceiling is
evaluated separately because its outcome varies run to run and would break
the byte-identical-report guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from .spec import AssertionSpec


@dataclass(frozen=True)
class AssertionResult:
    """One evaluated assertion."""

    name: str
    ok: bool
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


def evaluate(
    asserts: AssertionSpec,
    counts: Dict[str, int],
    audit: Dict[str, Any],
    ledger: Dict[str, Any],
    budget: Dict[str, Any],
) -> List[AssertionResult]:
    """Evaluate every deterministic assertion; returns one result each."""
    results: List[AssertionResult] = []
    requests = max(1, counts.get("requests", 0))
    match_rate = counts.get("matched", 0) / requests

    if asserts.min_match_rate is not None:
        results.append(AssertionResult(
            "min_match_rate",
            match_rate >= asserts.min_match_rate,
            f"match rate {match_rate:.3f} vs floor {asserts.min_match_rate}",
        ))
    if asserts.min_booked:
        booked = counts.get("booked", 0)
        results.append(AssertionResult(
            "min_booked",
            booked >= asserts.min_booked,
            f"booked {booked} vs floor {asserts.min_booked}",
        ))
    if asserts.min_cancels:
        cancels = counts.get("cancels_applied", 0)
        results.append(AssertionResult(
            "min_cancels",
            cancels >= asserts.min_cancels,
            f"cancels applied {cancels} vs floor {asserts.min_cancels}",
        ))
    if asserts.min_pool:
        pool = counts.get("max_pool", 0)
        results.append(AssertionResult(
            "min_pool",
            pool >= asserts.min_pool,
            f"peak co-riders {pool} vs floor {asserts.min_pool}",
        ))
    if asserts.require_clean_audit:
        violations = int(audit.get("violations", 0))
        results.append(AssertionResult(
            "clean_audit",
            violations == 0,
            f"{violations} invariant violation(s)" if violations
            else "invariant audit clean",
        ))
    if asserts.require_balanced_ledger:
        balanced = bool(ledger.get("balanced", False))
        results.append(AssertionResult(
            "balanced_ledger",
            balanced,
            ledger.get("detail", "ledger balanced") if balanced
            else f"ledger imbalance: {ledger}",
        ))
    if asserts.require_budgets_respected:
        violations = int(budget.get("violations", 0))
        checked = budget.get("checked", 0)
        results.append(AssertionResult(
            "budgets_respected",
            violations == 0,
            f"{violations} budget violation(s)" if violations
            else f"{checked} budgeted passenger(s) all within budget",
        ))
    return results


def evaluate_timing(
    asserts: AssertionSpec, timing: Dict[str, Any]
) -> List[AssertionResult]:
    """Evaluate the wall-clock assertions (non-canonical)."""
    results: List[AssertionResult] = []
    if asserts.max_search_p95_ms is not None:
        p95 = timing.get("search_p95_ms")
        ok = p95 is not None and p95 <= asserts.max_search_p95_ms
        results.append(AssertionResult(
            "max_search_p95_ms",
            ok,
            f"search p95 {p95 if p95 is None else round(p95, 2)} ms "
            f"vs ceiling {asserts.max_search_p95_ms} ms",
        ))
    return results
