"""The pinned scenario matrix swept by CI (``xar scenario sweep``).

Each entry is a fully-declared :class:`~repro.scenarios.spec.ScenarioSpec`
pinned by name and seed, so a red sweep names the exact spec+seed to
replay locally.  The matrix spans the dimensions the engine grew across
PRs: high-capacity pooling with per-passenger budgets, fleet dynamics
(shifts, repositioning), demand overlays (surge, cancellation storms),
multi-region topology across shards, chaos policies, and every façade
family (single engine, thread shards, process shards, resilient, durable,
batch).
"""

from __future__ import annotations

from typing import Dict, List

from ..exceptions import ScenarioError

from .spec import (
    AssertionSpec,
    CitySpec,
    DemandSpec,
    FaultSpec,
    ScenarioSpec,
    SupplySpec,
)

#: Tiny city reused by the fast scenarios (region build stays cheap).
_TINY = CitySpec(kind="lattice", avenues=5, streets=10)
_SMALL = CitySpec(kind="lattice", avenues=6, streets=12)

PINNED: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        # Tier-1 smoke: small, fast, runs on every pytest invocation.
        ScenarioSpec(
            name="smoke_tiny",
            facade="xar",
            seed=11,
            city=_TINY,
            supply=SupplySpec(fleet=10, seats=4),
            demand=DemandSpec(
                workload="uniform", requests=50, duration_s=1200.0,
                budget_scales=(1.0, None),
            ),
            asserts=AssertionSpec(min_booked=5, min_pool=2),
        ),
        # High-capacity pooling: 4-seat fleet, heterogeneous passenger
        # budgets, corridor demand so rides actually fill up.
        ScenarioSpec(
            name="capacity4_budgets",
            facade="xar",
            seed=5,
            city=_SMALL,
            supply=SupplySpec(fleet=8, seats=4),
            demand=DemandSpec(
                workload="corridor", requests=80, duration_s=1200.0,
                budget_scales=(0.25, 0.5, 1.0, None),
            ),
            asserts=AssertionSpec(min_booked=10, min_match_rate=0.1, min_pool=3),
        ),
        # The same pooling pressure through the 2-shard thread service.
        ScenarioSpec(
            name="corridor_pool_shard2",
            facade="shard2",
            seed=7,
            city=_SMALL,
            supply=SupplySpec(fleet=10, seats=4),
            demand=DemandSpec(
                workload="corridor", requests=100, duration_s=1500.0,
                budget_scales=(0.5, 1.0),
            ),
            asserts=AssertionSpec(min_booked=15, min_pool=3),
        ),
        # Event egress + surge through the windowed batch matcher; the
        # batch ledger must account for every submitted request.
        ScenarioSpec(
            name="hotspot_surge_batch",
            facade="batch",
            seed=13,
            city=_SMALL,
            supply=SupplySpec(fleet=12, seats=4),
            demand=DemandSpec(
                workload="hotspot", requests=70, duration_s=900.0,
                surge=(0.0, 450.0, 2.0),
                budget_scales=(1.0, None),
            ),
            asserts=AssertionSpec(min_booked=10, min_pool=2),
        ),
        # Mid-window cancellation storm: half of all bookings cancelled in
        # one burst; seats/budgets must restore exactly and the auditor
        # must stay clean.
        ScenarioSpec(
            name="cancel_storm_resilient",
            facade="resilient",
            seed=17,
            city=_SMALL,
            supply=SupplySpec(fleet=10, seats=4),
            demand=DemandSpec(
                workload="corridor", requests=90, duration_s=1500.0,
                budget_scales=(0.5, 1.0, None),
                cancel_storm=(300.0, 1500.0, 0.5),
            ),
            asserts=AssertionSpec(min_booked=20, min_cancels=10),
        ),
        # Two lattices joined by bridges, spatially split across 2 shards:
        # corridor demand runs diagonal so cross-region trips hammer the
        # bridge corridors and cross-shard fan-out.
        ScenarioSpec(
            name="twin_bridge_shard2",
            facade="shard2",
            seed=23,
            city=CitySpec(kind="twin", avenues=5, streets=10,
                          separation_m=2000.0, bridges=2),
            supply=SupplySpec(fleet=12, seats=4,
                              detour_limit_m=8000.0),
            demand=DemandSpec(
                workload="corridor", requests=80, duration_s=1500.0,
                walk_threshold_m=1200.0,
            ),
            asserts=AssertionSpec(min_booked=15, min_pool=3),
        ),
        # Driver shifts: the whole fleet retires mid-run and fresh supply
        # is repositioned onto unserved corridors; retirement must drain
        # passengers strand-free (clean audit) and keep ledgers balanced.
        ScenarioSpec(
            name="shift_churn_reposition",
            facade="xar",
            seed=29,
            city=_SMALL,
            supply=SupplySpec(fleet=10, seats=4,
                              shift_length_s=300.0, reposition_on_miss=True),
            demand=DemandSpec(
                workload="uniform", requests=100, duration_s=2400.0,
                budget_scales=(1.0, None),
            ),
            asserts=AssertionSpec(min_booked=10),
        ),
        # Chaos: transient router faults, tracking dropouts and driver
        # cancellations under the resilient runtime.
        ScenarioSpec(
            name="chaos_faults_resilient",
            facade="xar",
            seed=31,
            city=_SMALL,
            supply=SupplySpec(fleet=10, seats=4),
            demand=DemandSpec(
                workload="uniform", requests=90, duration_s=1500.0,
                budget_scales=(1.0,),
            ),
            faults=FaultSpec(
                policies="router=0.05,dropout=0.1,cancel=0.05",
                seed=13, resilient=True,
            ),
            asserts=AssertionSpec(min_booked=5),
        ),
        # Supervised subprocess shards with real SIGKILL crash injection:
        # every crash must recover through WAL replay with the run's
        # accounting intact.
        ScenarioSpec(
            name="proc2_crash_recovery",
            facade="proc2",
            seed=37,
            city=_TINY,
            supply=SupplySpec(fleet=8, seats=4),
            demand=DemandSpec(
                workload="uniform", requests=60, duration_s=1200.0,
            ),
            faults=FaultSpec(crash_every=25),
            asserts=AssertionSpec(min_booked=5),
        ),
        # Durable single engine under a cancellation storm: WAL'd cancel
        # ops and exact budget restoration on the recovery path's engine.
        ScenarioSpec(
            name="durable_cancel_storm",
            facade="durable",
            seed=41,
            city=_TINY,
            supply=SupplySpec(fleet=8, seats=4),
            demand=DemandSpec(
                workload="corridor", requests=70, duration_s=1200.0,
                budget_scales=(0.5, 1.0),
                cancel_storm=(200.0, 1200.0, 0.4),
            ),
            asserts=AssertionSpec(min_booked=10, min_cancels=3),
        ),
    )
}


def pinned_names() -> List[str]:
    return sorted(PINNED)


def get(name: str) -> ScenarioSpec:
    try:
        return PINNED[name]
    except KeyError:
        raise ScenarioError(
            f"unknown pinned scenario {name!r} "
            f"(choose from {pinned_names()})"
        ) from None
