"""Scenario execution: build a façade, replay the scenario, emit a report.

The runner is façade-agnostic: any :class:`~repro.sim.adapters.EngineAdapter`
surface works, so one spec can be replayed on the single engine, the
thread- or process-sharded service, the resilient runtime, the durable
engine, or the windowed batch matcher just by changing ``spec.facade``.

Determinism is a hard contract: the same spec and seed produce a
byte-identical :meth:`ScenarioReport.canonical_json` — wall-clock latencies
(and the timing assertions judged on them) live in the report's
``timing`` section, which the canonical serialization excludes.
"""

from __future__ import annotations

import dataclasses
import json
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import ScenarioError, XARError
from ..resilience import ResilienceConfig, ResilientEngine
from ..resilience.audit import InvariantAuditor
from ..service import ProcRouter, SupervisorConfig
from ..sim import (
    DriverCancellation,
    FaultInjectingAdapter,
    IndexCorruption,
    RouterFault,
    TrackingDropout,
)
from ..verify.differential import Facade, make_facade
from ..workloads import trips_to_requests
from ..workloads.nyc import TripRecord
from ..workloads.synthetic import (
    corridor_workload,
    hotspot_pulse_workload,
    uniform_workload,
)

from .assertions import evaluate, evaluate_timing
from .city import region_for
from .spec import DemandSpec, ScenarioSpec


@dataclass
class ScenarioReport:
    """Everything one scenario run produced.

    ``canonical_json`` is the determinism contract: it serializes only the
    replay-derived facts (sorted keys, fixed separators), never wall-clock
    measurements, so identical spec+seed yields identical bytes.
    """

    name: str
    facade: str
    seed: int
    counts: Dict[str, int] = field(default_factory=dict)
    match_rate: float = 0.0
    audit: Dict[str, Any] = field(default_factory=dict)
    ledger: Dict[str, Any] = field(default_factory=dict)
    budget: Dict[str, Any] = field(default_factory=dict)
    assertions: List[Dict[str, Any]] = field(default_factory=list)
    #: Volatile section: latencies + timing assertions (excluded from the
    #: canonical serialization).
    timing: Dict[str, Any] = field(default_factory=dict)

    @property
    def deterministic_ok(self) -> bool:
        return all(entry["ok"] for entry in self.assertions)

    @property
    def timing_ok(self) -> bool:
        return all(entry["ok"] for entry in self.timing.get("assertions", []))

    @property
    def passed(self) -> bool:
        return self.deterministic_ok and self.timing_ok

    def to_dict(self, include_timing: bool = True) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "facade": self.facade,
            "seed": self.seed,
            "counts": dict(self.counts),
            "match_rate": round(self.match_rate, 6),
            "audit": self.audit,
            "ledger": self.ledger,
            "budget": self.budget,
            "assertions": list(self.assertions),
            "deterministic_ok": self.deterministic_ok,
        }
        if include_timing:
            data["timing"] = dict(self.timing)
            data["passed"] = self.passed
        return data

    def canonical_json(self) -> str:
        return json.dumps(
            self.to_dict(include_timing=False),
            sort_keys=True, separators=(",", ":"),
        ) + "\n"

    def describe(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"scenario {self.name} [{self.facade}, seed {self.seed}]: "
            f"{verdict}",
            f"  counts : " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.counts.items())
            ),
            f"  match  : {self.match_rate:.2%}   "
            f"audit violations {self.audit.get('violations', '?')}",
        ]
        for entry in self.assertions + self.timing.get("assertions", []):
            mark = "ok " if entry["ok"] else "FAIL"
            lines.append(f"  [{mark}] {entry['name']}: {entry['detail']}")
        return "\n".join(lines)


def _parse_policies(spec: str, seed: int) -> List[Any]:
    """The CLI fault mini-language, raising ScenarioError on bad input."""
    makers = {
        "router": RouterFault,
        "dropout": TrackingDropout,
        "cancel": DriverCancellation,
        "corrupt": IndexCorruption,
    }
    policies: List[Any] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _sep, value = part.partition("=")
        if name not in makers:
            raise ScenarioError(
                f"unknown fault policy {name!r} (choose from {sorted(makers)})"
            )
        policies.append(makers[name](rate=float(value) if value else 0.05))
    return policies


def build_facade(spec: ScenarioSpec, region) -> Facade:
    """Build the spec's façade (with fault/resilience wrapping applied)."""
    name = spec.facade
    if name.startswith("proc"):
        n_shards = int(name[len("proc"):])
        run_dir = tempfile.mkdtemp(prefix="xar-scenario-proc-")
        router = ProcRouter(
            region,
            SupervisorConfig(
                n_shards=n_shards,
                run_dir=run_dir,
                queue_depth=4096,
                seed=spec.seed,
            ),
            fanout="all",
        )

        def close() -> None:
            router.close()
            shutil.rmtree(run_dir, ignore_errors=True)

        facade = Facade(name, router, closer=close)
    else:
        facade = make_facade(name, region, seed=spec.seed)

    target = facade.target
    if spec.faults.policies:
        target = FaultInjectingAdapter(
            target, _parse_policies(spec.faults.policies, spec.faults.seed),
            seed=spec.faults.seed,
        )
    if spec.faults.resilient:
        target = ResilientEngine(
            target, ResilienceConfig(seed=spec.faults.seed,
                                     sleep=lambda _s: None)
        )
    facade.target = target
    return facade


def _demand_trips(network, demand: DemandSpec, seed: int) -> List[TripRecord]:
    """Base workload + surge overlay, renumbered in arrival order."""
    if demand.workload == "uniform":
        trips = uniform_workload(
            network, n_trips=demand.requests,
            start_s=0.0, end_s=demand.duration_s, seed=seed,
        )
    elif demand.workload == "corridor":
        trips = corridor_workload(
            network, n_trips=demand.requests,
            start_s=0.0, band_s=demand.duration_s, seed=seed,
        )
    elif demand.workload == "hotspot":
        trips = hotspot_pulse_workload(
            network, n_trips=demand.requests,
            pulse_start_s=0.0, pulse_length_s=demand.duration_s, seed=seed,
        )
    else:  # pragma: no cover - spec.validate() rejects earlier
        raise ScenarioError(f"unknown workload {demand.workload!r}")

    if demand.surge is not None:
        start_s, end_s, multiplier = demand.surge
        rng = random.Random(seed * 7919 + 1)
        extra: List[TripRecord] = []
        copies = max(0, int(round(multiplier)) - 1)
        for trip in trips:
            if start_s <= trip.pickup_s < end_s:
                for _c in range(copies):
                    extra.append(dataclasses.replace(
                        trip,
                        pickup_s=min(end_s, trip.pickup_s
                                     + rng.uniform(0.0, 60.0)),
                    ))
        trips = trips + extra

    trips.sort(key=lambda t: (t.pickup_s, t.trip_id))
    return [
        dataclasses.replace(trip, trip_id=index)
        for index, trip in enumerate(trips)
    ]


class ScenarioRunner:
    """Executes one :class:`ScenarioSpec` and produces a report."""

    def __init__(self, spec: ScenarioSpec, region=None):
        spec.validate()
        self.spec = spec
        self.region = region if region is not None else region_for(spec.city)

    # ------------------------------------------------------------------
    def run(self) -> ScenarioReport:
        spec = self.spec
        facade = build_facade(spec, self.region)
        try:
            return self._drive(facade)
        finally:
            facade.close()

    # ------------------------------------------------------------------
    def _drive(self, facade: Facade) -> ScenarioReport:
        spec = self.spec
        region = self.region
        target = facade.target
        config = region.config
        counts: Dict[str, int] = {
            "requests": 0, "matched": 0, "booked": 0, "book_conflicts": 0,
            "unmatched": 0, "search_failures": 0, "track_failures": 0,
            "cancels_applied": 0, "cancel_misses": 0,
            "fleet_created": 0, "repositioned": 0, "retired": 0,
            "crashes": 0, "max_pool": 0,
        }
        search_latencies: List[float] = []

        # --- supply -----------------------------------------------------
        # Fleet corridors mirror the demand workload unless overridden:
        # drivers travel where passengers want to go, which is what lets
        # capacity-4 rides actually fill up.
        supply = spec.supply
        fleet_kind = supply.workload or spec.demand.workload
        fleet_spec = DemandSpec(
            workload=fleet_kind, requests=max(1, supply.fleet),
            duration_s=1.0,
        )
        fleet_trips = (
            _demand_trips(region.network, fleet_spec, spec.seed * 1009 + 17)
            [: supply.fleet]
        )
        stagger_s = (
            supply.stagger_s if supply.stagger_s is not None
            else spec.demand.duration_s / max(1, supply.fleet)
        )
        for index, trip in enumerate(fleet_trips):
            depart_s = index * stagger_s
            shift_end = (
                depart_s + supply.shift_length_s
                if supply.shift_length_s is not None else None
            )
            target.create(
                trip.pickup, trip.dropoff, depart_s,
                seats=supply.seats,
                detour_limit_m=supply.detour_limit_m,
                shift_end_s=shift_end,
            )
            counts["fleet_created"] += 1

        # --- demand -----------------------------------------------------
        demand = spec.demand
        trips = _demand_trips(region.network, demand, spec.seed)
        if demand.walk_threshold_m is not None:
            requests = trips_to_requests(
                trips, window_s=demand.window_s,
                walk_threshold_m=demand.walk_threshold_m,
            )
        else:
            requests = trips_to_requests(trips, window_s=demand.window_s)
        if demand.budget_scales:
            scales = demand.budget_scales
            requests = [
                dataclasses.replace(
                    request,
                    max_detour_m=(
                        None if scales[i % len(scales)] is None
                        else config.default_detour_m * scales[i % len(scales)]
                    ),
                )
                for i, request in enumerate(requests)
            ]

        # --- replay -----------------------------------------------------
        storm = demand.cancel_storm
        storm_rng = random.Random(spec.seed * 6011 + 3)
        storm_seen: set = set()
        booked_live: List[Tuple[int, int]] = []
        occupancy: Dict[int, int] = {}
        crash_due = spec.faults.crash_every
        crash_victim = 0
        clock = 0.0

        for request in requests:
            counts["requests"] += 1
            clock = max(clock, request.window_start_s)
            if crash_due and counts["requests"] >= crash_due:
                crash_due += spec.faults.crash_every
                victim = crash_victim % getattr(target, "n_shards", 1)
                crash_victim += 1
                target.crash_shard(victim)
                counts["crashes"] += 1
            try:
                target.track_all(clock)
            except XARError:
                counts["track_failures"] += 1

            if storm is not None and storm[0] <= clock < storm[1]:
                # Every booking alive during the band flips one seeded coin:
                # heads, the passenger bails.  Bookings made before the band
                # are processed at its first in-band request — the burst.
                for key in list(booked_live):
                    if key in storm_seen:
                        continue
                    storm_seen.add(key)
                    if storm_rng.random() >= storm[2]:
                        continue
                    request_id, ride_id = key
                    try:
                        target.cancel_booking(request_id, ride_id)
                        counts["cancels_applied"] += 1
                        occupancy[ride_id] = occupancy.get(ride_id, 1) - 1
                    except XARError:
                        counts["cancel_misses"] += 1
                    booked_live.remove(key)

            started = time.perf_counter()
            try:
                options = target.search(request, demand.k)
            except XARError:
                counts["search_failures"] += 1
                continue
            finally:
                search_latencies.append(time.perf_counter() - started)

            if not options:
                counts["unmatched"] += 1
                if supply.reposition_on_miss:
                    # Forecast-chasing repositioning: offer fresh supply on
                    # the very corridor demand just went unserved on.
                    depart_s = request.window_start_s
                    shift_end = (
                        depart_s + supply.shift_length_s
                        if supply.shift_length_s is not None else None
                    )
                    try:
                        target.create(
                            request.source, request.destination, depart_s,
                            seats=supply.seats,
                            detour_limit_m=supply.detour_limit_m,
                            shift_end_s=shift_end,
                        )
                        counts["repositioned"] += 1
                    except XARError:
                        pass
                continue

            counts["matched"] += 1
            for option in options[:3]:
                try:
                    record = target.book(request, option)
                except XARError:
                    counts["book_conflicts"] += 1
                    continue
                counts["booked"] += 1
                booked_live.append((record.request_id, record.ride_id))
                occupancy[record.ride_id] = (
                    occupancy.get(record.ride_id, 0) + 1
                )
                counts["max_pool"] = max(counts["max_pool"],
                                         occupancy[record.ride_id])
                break

        # Drain: advance well past the last window so shift retirement and
        # completions settle before the final audit.
        try:
            target.track_all(clock + demand.window_s + 600.0)
        except XARError:
            counts["track_failures"] += 1

        audit = self._final_audit(facade)
        ledger = self._ledger(facade, counts)
        budget = self._budget_sweep(facade, counts)
        assertion_results = evaluate(spec.asserts, counts, audit, ledger,
                                     budget)

        timing: Dict[str, Any] = {}
        if search_latencies:
            ordered = sorted(search_latencies)
            index = min(len(ordered) - 1, int(0.95 * len(ordered)))
            timing["search_p95_ms"] = ordered[index] * 1000.0
            timing["searches_timed"] = len(ordered)
        timing["assertions"] = [
            result.to_dict()
            for result in evaluate_timing(spec.asserts, timing)
        ]

        return ScenarioReport(
            name=spec.name,
            facade=spec.facade,
            seed=spec.seed,
            counts=counts,
            match_rate=counts["matched"] / max(1, counts["requests"]),
            audit=audit,
            ledger=ledger,
            budget=budget,
            assertions=[result.to_dict() for result in assertion_results],
            timing=timing,
        )

    # ------------------------------------------------------------------
    def _final_audit(self, facade: Facade) -> Dict[str, Any]:
        if facade.xar_engines:
            violations = 0
            by_kind: Dict[str, int] = {}
            for engine in facade.xar_engines:
                report = InvariantAuditor(engine).audit()
                violations += len(report.violations)
                for kind, count in report.by_kind().items():
                    by_kind[kind] = by_kind.get(kind, 0) + count
            return {"violations": violations, "by_kind": by_kind}
        audit = getattr(facade.target, "audit", None)
        if callable(audit):
            result = audit()
            return {
                "violations": int(result.get("violations", 0)),
                "per_shard": {
                    str(k): v for k, v in result.get("per_shard", {}).items()
                },
            }
        return {"violations": 0, "by_kind": {}}

    def _ledger(self, facade: Facade, counts: Dict[str, int]) -> Dict[str, Any]:
        ledger: Dict[str, Any] = {}
        if facade.xar_engines:
            engine_bookings = sum(
                len(engine.bookings) for engine in facade.xar_engines
            )
            engine_cancellations = sum(
                len(engine.cancellations) for engine in facade.xar_engines
            )
            ledger["engine_bookings"] = engine_bookings
            ledger["engine_cancellations"] = engine_cancellations
            ledger["balanced"] = (
                engine_bookings == counts["booked"]
                and engine_cancellations == counts["cancels_applied"]
            )
            ledger["detail"] = (
                f"{engine_bookings} engine bookings == {counts['booked']} "
                f"runner bookings; {engine_cancellations} cancellations "
                f"== {counts['cancels_applied']} applied"
            )
        else:
            bookings = getattr(facade.target, "bookings", None)
            if callable(bookings):
                engine_bookings = len(bookings())
                ledger["engine_bookings"] = engine_bookings
                ledger["balanced"] = engine_bookings == counts["booked"]
                ledger["detail"] = (
                    f"{engine_bookings} shard bookings == "
                    f"{counts['booked']} runner bookings "
                    "(cancellations audited in-worker)"
                )
            else:
                ledger["balanced"] = True
                ledger["detail"] = "no ledger surface on this façade"

        batch_ledger = getattr(facade.target, "ledger", None)
        if callable(batch_ledger):
            entries = batch_ledger()
            accounted = sum(
                entries[key]
                for key in ("assigned", "fallback", "unmatched", "failed")
            )
            ledger["batch"] = entries
            ledger["balanced"] = bool(
                ledger.get("balanced", True)
                and accounted == entries["submitted"]
                and entries["committed"] == counts["booked"]
            )
        return ledger

    def _budget_sweep(
        self, facade: Facade, counts: Dict[str, int]
    ) -> Dict[str, Any]:
        if not facade.xar_engines:
            # Shard engines live in worker processes; the in-worker
            # invariant audit enforces the same per-passenger bound.
            return {"checked": 0, "violations": 0,
                    "delegated_to_audit": True}
        checked = 0
        violations = 0
        worst_over_m = 0.0
        for engine in facade.xar_engines:
            with engine.lock:
                rides = list(engine.rides.values())
                rides.extend(engine.completed_rides.values())
                for ride in rides:
                    if ride.retired:
                        counts["retired"] += 1
                    for request_id, passenger in ride.passengers.items():
                        if passenger.max_detour_m is None:
                            continue
                        checked += 1
                        consumed = ride.passenger_consumed_m(request_id)
                        over = consumed - passenger.max_detour_m
                        if over > 1e-6:
                            violations += 1
                            worst_over_m = max(worst_over_m, over)
        result: Dict[str, Any] = {"checked": checked, "violations": violations}
        if violations:
            result["worst_over_m"] = round(worst_over_m, 3)
        return result


def run_scenario(spec: ScenarioSpec, region=None) -> ScenarioReport:
    """Convenience wrapper: build the runner and execute the spec."""
    return ScenarioRunner(spec, region=region).run()
