"""Declarative scenario matrix: specs, runner, assertions, pinned grid.

``repro.scenarios`` turns end-to-end simulations into data: a
:class:`ScenarioSpec` declares the city (single lattice or bridged twin
region), the driver supply (fleet size, seat capacity, detour budgets,
shift lengths, repositioning), the demand (workload shape plus surge and
cancellation-storm overlays), the fault policies to compose, and the
declarative pass/fail assertions.  :class:`ScenarioRunner` executes a spec
against any engine façade and emits a deterministic
:class:`ScenarioReport` — same spec and seed, byte-identical canonical
JSON.  The pinned matrix in :mod:`repro.scenarios.grid` is what CI sweeps.

See ``docs/scenarios.md``.
"""

from .assertions import AssertionResult, evaluate, evaluate_timing
from .city import build_city, region_for, twin_city
from .grid import PINNED, get as pinned_scenario, pinned_names
from .runner import ScenarioReport, ScenarioRunner, build_facade, run_scenario
from .spec import (
    AssertionSpec,
    CitySpec,
    DemandSpec,
    FaultSpec,
    ScenarioSpec,
    SupplySpec,
)

__all__ = [
    "AssertionResult",
    "AssertionSpec",
    "CitySpec",
    "DemandSpec",
    "FaultSpec",
    "PINNED",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "SupplySpec",
    "build_city",
    "build_facade",
    "evaluate",
    "evaluate_timing",
    "pinned_names",
    "pinned_scenario",
    "region_for",
    "run_scenario",
    "twin_city",
]
