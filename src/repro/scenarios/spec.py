"""Declarative scenario specs: city + supply + demand + faults + assertions.

A :class:`ScenarioSpec` is a frozen, JSON-serializable description of one
end-to-end simulation: which synthetic city to build, what driver supply to
seed it with (fleet size, seat capacity, shift lengths, repositioning),
what demand to replay (workload shape plus surge and cancellation-storm
overlays), which fault policies to compose around the engine, and which
declarative pass/fail assertions the finished run must satisfy.

Specs are plain data so the same scenario can live in three places without
drift: the pinned grid in :mod:`repro.scenarios.grid`, a JSON/TOML file on
disk (``xar scenario run path/to/spec.json``), and a pytest parametrization.
TOML loading is gated on :mod:`tomllib` (Python 3.11+); JSON always works.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..exceptions import ScenarioError

try:  # Python 3.11+; requires-python is 3.9 so the import is optional.
    import tomllib
except ImportError:  # pragma: no cover - version-dependent
    tomllib = None

#: Façades the runner can build.  ``shardN``/``procN`` accept any N >= 1.
KNOWN_FACADES = (
    "xar", "legacy", "oracle", "resilient", "durable", "batch",
)

#: Workload generators the demand section understands.
KNOWN_WORKLOADS = ("uniform", "corridor", "hotspot")


@dataclass(frozen=True)
class CitySpec:
    """Which synthetic city the scenario runs on.

    ``kind="lattice"`` is one Manhattan-style grid; ``kind="twin"`` joins
    two lattices with a handful of bridge edges — a two-region city whose
    spatial shard split puts the regions on different shards, stressing
    cross-shard search fan-out.
    """

    kind: str = "lattice"
    avenues: int = 6
    streets: int = 12
    #: Region pre-processing knobs (delta -> epsilon = 4*delta).
    delta_m: float = 400.0
    poi_seed: int = 0
    #: Twin-city only: gap between the two lattices and bridge count.
    separation_m: float = 2000.0
    bridges: int = 2

    def validate(self) -> None:
        if self.kind not in ("lattice", "twin"):
            raise ScenarioError(f"unknown city kind {self.kind!r}")
        if self.avenues < 2 or self.streets < 2:
            raise ScenarioError("city needs at least a 2x2 lattice")
        if self.kind == "twin" and self.bridges < 1:
            raise ScenarioError("a twin city needs at least one bridge")


@dataclass(frozen=True)
class SupplySpec:
    """The driver fleet seeded before demand starts."""

    fleet: int = 12
    #: Workload shape the fleet's corridors are drawn from (None -> mirror
    #: the demand workload, which is what makes pooling happen: drivers
    #: travel the corridors passengers want).
    workload: Optional[str] = None
    #: Passenger seats per ride (None -> the engine's configured default,
    #: which is 3; the high-capacity scenarios pin 4).
    seats: Optional[int] = None
    #: Ride-level detour budget in metres (None -> config default).
    detour_limit_m: Optional[float] = None
    #: Driver shift length in seconds past departure (None -> open-ended).
    #: At shift end the ride retires from matching and drains its booked
    #: passengers — nobody is stranded, but no new matches land on it.
    shift_length_s: Optional[float] = None
    #: Seconds between consecutive fleet departures (None -> spread the
    #: fleet evenly across the demand duration, so late demand still finds
    #: live rides).
    stagger_s: Optional[float] = None
    #: When demand finds no feasible ride, reposition supply by offering a
    #: fresh ride on the unmatched corridor (the forecast-chasing policy).
    reposition_on_miss: bool = False

    def validate(self) -> None:
        if self.fleet < 0:
            raise ScenarioError(f"fleet must be >= 0, got {self.fleet}")
        if self.workload is not None and self.workload not in KNOWN_WORKLOADS:
            raise ScenarioError(
                f"unknown supply workload {self.workload!r} "
                f"(choose from {KNOWN_WORKLOADS})"
            )
        if self.seats is not None and self.seats < 1:
            raise ScenarioError(f"seats must be >= 1, got {self.seats}")
        if self.shift_length_s is not None and self.shift_length_s <= 0:
            raise ScenarioError("shift_length_s must be > 0 when set")


@dataclass(frozen=True)
class DemandSpec:
    """The request stream replayed against the supplied fleet."""

    workload: str = "uniform"
    requests: int = 100
    #: Demand arrives in [0, duration_s).
    duration_s: float = 1800.0
    #: Departure-window length per request, seconds.
    window_s: float = 600.0
    #: Walk threshold per request, metres (None -> config default).
    walk_threshold_m: Optional[float] = None
    #: Searches are cut to the top k options (None -> all).
    k: Optional[int] = None
    #: Per-passenger detour budgets, as fractions of the config default
    #: detour, cycled across booking requests.  ``None`` entries leave the
    #: passenger unbudgeted.  Empty tuple -> nobody carries a budget.
    budget_scales: Tuple[Optional[float], ...] = ()
    #: Surge overlay: (start_s, end_s, multiplier) — demand inside the band
    #: is densified to ``multiplier`` times the base rate.
    surge: Optional[Tuple[float, float, float]] = None
    #: Cancellation storm: (start_s, end_s, fraction) — once the replay
    #: clock enters the band, ``fraction`` of the bookings made so far are
    #: cancelled in one burst (seats and budgets must restore exactly).
    cancel_storm: Optional[Tuple[float, float, float]] = None

    def validate(self) -> None:
        if self.workload not in KNOWN_WORKLOADS:
            raise ScenarioError(
                f"unknown workload {self.workload!r} "
                f"(choose from {KNOWN_WORKLOADS})"
            )
        if self.requests < 1:
            raise ScenarioError("demand needs at least one request")
        for name, band in (("surge", self.surge),
                           ("cancel_storm", self.cancel_storm)):
            if band is None:
                continue
            if len(band) != 3 or band[1] <= band[0]:
                raise ScenarioError(
                    f"{name} must be (start_s, end_s, value) with end > start"
                )
        if self.surge is not None and self.surge[2] < 1.0:
            raise ScenarioError("surge multiplier must be >= 1.0")
        if self.cancel_storm is not None and not (
            0.0 <= self.cancel_storm[2] <= 1.0
        ):
            raise ScenarioError("cancel_storm fraction must be in [0, 1]")


@dataclass(frozen=True)
class FaultSpec:
    """Chaos composed around the engine façade."""

    #: The CLI mini-language: ``"router=0.05,dropout=0.1,cancel=0.02"``.
    policies: str = ""
    seed: int = 0
    #: Wrap the (possibly fault-injected) target in the resilient runtime.
    resilient: bool = False
    #: Crash a rotating shard every N served requests (façades with
    #: ``crash_shard`` only: shardN with durability, procN).
    crash_every: int = 0

    def validate(self) -> None:
        if self.crash_every < 0:
            raise ScenarioError("crash_every must be >= 0")


@dataclass(frozen=True)
class AssertionSpec:
    """Declarative pass/fail criteria evaluated on the finished run."""

    #: matched / requests floor (None disables).
    min_match_rate: Optional[float] = None
    min_booked: int = 0
    #: Cancellation-storm scenarios: at least this many cancels must have
    #: actually applied (0 disables).
    min_cancels: int = 0
    #: Peak simultaneous passengers observed on one ride must reach this
    #: (the high-capacity scenarios pin >= 2 to prove pooling happened;
    #: engine-visible façades only — 0 disables).
    min_pool: int = 0
    #: The post-run invariant audit must report zero violations.
    require_clean_audit: bool = True
    #: Engine booking/cancellation ledgers must balance the runner's
    #: counts (and the batch ledger must account for every request).
    require_balanced_ledger: bool = True
    #: No booked passenger's consumed detour may exceed their budget.
    require_budgets_respected: bool = True
    #: Wall-clock ceiling on search p95 (None disables).  Timing-based, so
    #: its outcome lives in the report's non-canonical section.
    max_search_p95_ms: Optional[float] = None

    def validate(self) -> None:
        if self.min_match_rate is not None and not (
            0.0 <= self.min_match_rate <= 1.0
        ):
            raise ScenarioError("min_match_rate must be in [0, 1]")


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete scenario; see the module docstring."""

    name: str
    facade: str = "xar"
    seed: int = 0
    city: CitySpec = field(default_factory=CitySpec)
    supply: SupplySpec = field(default_factory=SupplySpec)
    demand: DemandSpec = field(default_factory=DemandSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    asserts: AssertionSpec = field(default_factory=AssertionSpec)

    def validate(self) -> None:
        if not self.name:
            raise ScenarioError("a scenario needs a name")
        base = self.facade
        if base.startswith(("shard", "proc")):
            suffix = base[5:] if base.startswith("shard") else base[4:]
            if not suffix.isdigit() or int(suffix) < 1:
                raise ScenarioError(f"malformed façade name {base!r}")
        elif base not in KNOWN_FACADES:
            raise ScenarioError(
                f"unknown façade {base!r} (choose from {KNOWN_FACADES}, "
                f"shardN, or procN)"
            )
        if self.faults.crash_every and not self.facade.startswith("proc"):
            raise ScenarioError(
                "crash_every needs a crash-capable façade (procN)"
            )
        for section in (self.city, self.supply, self.demand, self.faults,
                        self.asserts):
            section.validate()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise ScenarioError(f"scenario spec must be a mapping, got "
                                f"{type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(f"unknown scenario keys: {sorted(unknown)}")
        sections = {
            "city": CitySpec,
            "supply": SupplySpec,
            "demand": DemandSpec,
            "faults": FaultSpec,
            "asserts": AssertionSpec,
        }
        kwargs: Dict[str, Any] = {}
        for key, value in data.items():
            if key in sections:
                kwargs[key] = _section_from(sections[key], key, value)
            else:
                kwargs[key] = value
        try:
            spec = cls(**kwargs)
        except TypeError as err:
            raise ScenarioError(f"bad scenario spec: {err}") from err
        spec.validate()
        return spec

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise ScenarioError(f"invalid scenario JSON: {err}") from err
        return cls.from_dict(data)

    @classmethod
    def from_toml(cls, text: str) -> "ScenarioSpec":
        if tomllib is None:
            raise ScenarioError(
                "TOML scenario specs need Python 3.11+ (tomllib); "
                "use JSON on older interpreters"
            )
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as err:
            raise ScenarioError(f"invalid scenario TOML: {err}") from err
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        """Load a spec file, dispatching on the extension."""
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if path.endswith(".toml"):
            return cls.from_toml(text)
        return cls.from_json(text)


def _section_from(section_cls, key: str, value: Any):
    """Build one nested section, tolerating already-built instances."""
    if isinstance(value, section_cls):
        return value
    if not isinstance(value, dict):
        raise ScenarioError(f"scenario section {key!r} must be a mapping")
    known = {f.name for f in dataclasses.fields(section_cls)}
    unknown = set(value) - known
    if unknown:
        raise ScenarioError(
            f"unknown keys in scenario section {key!r}: {sorted(unknown)}"
        )
    coerced = {
        name: tuple(v) if isinstance(v, list) else v
        for name, v in value.items()
    }
    try:
        return section_cls(**coerced)
    except TypeError as err:
        raise ScenarioError(f"bad scenario section {key!r}: {err}") from err
