"""Ride model: route, via-points, segments, detour budget (paper Section VI).

Ride entities mirror the paper's list exactly: source/destination locations,
departure time, seats, the route (shortest path unless overridden),
*via-points* (pickup/drop-off points including the endpoints — different from
road waypoints), *segments* between consecutive via-points, and the detour
limit remaining.

The route is a node path on the road network.  Cumulative distance and time
offsets are precomputed so that the ETA at any route index is O(1); those
ETAs feed the cluster index.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import RideError
from ..geo import GeoPoint
from ..roadnet import RoadNetwork


class RideStatus(enum.Enum):
    PLANNED = "planned"
    ACTIVE = "active"
    COMPLETED = "completed"


@dataclass(frozen=True)
class ViaPoint:
    """A location the ride must pass through (Section VI item 6).

    ``route_index`` is the index of the via-point's node in the ride's route
    node list; via-points are kept sorted by it.
    """

    node: int
    route_index: int
    label: str  # 'source' | 'destination' | 'pickup' | 'dropoff'
    request_id: Optional[int] = None


@dataclass(frozen=True)
class PassengerRecord:
    """Per-passenger pooling state (high-capacity pooling support).

    ``baseline_onboard_m`` is the onboard span (pickup via → dropoff via
    route distance) the passenger was promised at their own booking commit;
    later splices may stretch it by at most ``max_detour_m`` (``None`` means
    unbounded — the ride-level budget is then the only constraint).
    """

    request_id: int
    max_detour_m: Optional[float]
    baseline_onboard_m: float


class Ride:
    """A mutable ride offer with its live spatio-temporal state."""

    def __init__(
        self,
        ride_id: int,
        network: RoadNetwork,
        route: Sequence[int],
        departure_s: float,
        detour_limit_m: float,
        seats: int,
        source_point: Optional[GeoPoint] = None,
        destination_point: Optional[GeoPoint] = None,
        driver_id: Optional[int] = None,
        shift_end_s: Optional[float] = None,
    ):
        if len(route) < 2:
            raise RideError(f"ride {ride_id}: route must have >= 2 nodes")
        if detour_limit_m < 0:
            raise RideError(f"ride {ride_id}: negative detour limit")
        if seats < 1:
            raise RideError(f"ride {ride_id}: needs at least one seat")
        self.ride_id = ride_id
        self.network = network
        self.departure_s = departure_s
        self.detour_limit_m = detour_limit_m
        #: Detour budget as declared at creation; with ``base_length_m`` this
        #: recovers the exact remaining budget after a booking is cancelled.
        self.detour_limit_initial_m = detour_limit_m
        self.seats_total = seats
        self.seats_available = seats
        self.status = RideStatus.PLANNED
        self.source_point = source_point or network.position(route[0])
        self.destination_point = destination_point or network.position(route[-1])
        #: User id of the offering driver (social-ranking support); optional.
        self.driver_id = driver_id
        #: Driver shift end (fleet dynamics): once tracking passes this time
        #: the ride stops accepting bookings and leaves the search index, but
        #: keeps driving until arrival so booked passengers are never
        #: stranded.  ``None`` — no shift limit.
        self.shift_end_s = shift_end_s
        #: True once the shift-end retirement has fired.
        self.retired = False
        #: Booked passengers keyed by request id (per-passenger budgets).
        self.passengers: Dict[int, PassengerRecord] = {}
        #: Route offset (metres) the ride has verifiably progressed past;
        #: maintained by tracking.
        self.progressed_m = 0.0

        self._route: List[int] = []
        self._offsets_m: List[float] = []
        self._times_s: List[float] = []
        self.via_points: List[ViaPoint] = []
        self._set_route(list(route))
        self.via_points = [
            ViaPoint(node=self._route[0], route_index=0, label="source"),
            ViaPoint(
                node=self._route[-1],
                route_index=len(self._route) - 1,
                label="destination",
            ),
        ]
        #: Length of the original (un-detoured) route, fixed at creation.
        self.base_length_m = self.length_m

    # ------------------------------------------------------------------
    # Route geometry
    # ------------------------------------------------------------------
    def _set_route(self, route: List[int]) -> None:
        offsets = [0.0]
        times = [0.0]
        for a, b in zip(route, route[1:]):
            edge = self.network._find_edge(a, b)
            if edge is None:
                raise RideError(
                    f"ride {self.ride_id}: route hop {a}->{b} is not a road edge"
                )
            offsets.append(offsets[-1] + edge.length_m)
            times.append(times[-1] + edge.travel_seconds)
        self._route = route
        self._offsets_m = offsets
        self._times_s = times

    @property
    def route(self) -> List[int]:
        return list(self._route)

    @property
    def length_m(self) -> float:
        return self._offsets_m[-1]

    @property
    def duration_s(self) -> float:
        return self._times_s[-1]

    @property
    def arrival_s(self) -> float:
        return self.departure_s + self.duration_s

    def offset_at_index(self, route_index: int) -> float:
        return self._offsets_m[route_index]

    def eta_at_index(self, route_index: int) -> float:
        """Estimated time of arrival at a route node (departure + cum. time)."""
        return self.departure_s + self._times_s[route_index]

    def index_at_time(self, now_s: float) -> int:
        """Last route index reached by time ``now_s`` (0 before departure)."""
        elapsed = now_s - self.departure_s
        if elapsed <= 0:
            return 0
        index = bisect_right(self._times_s, elapsed) - 1
        return min(index, len(self._route) - 1)

    def position_at_time(self, now_s: float) -> GeoPoint:
        """Node-resolution position of the ride at ``now_s``."""
        return self.network.position(self._route[self.index_at_time(now_s)])

    # ------------------------------------------------------------------
    # Via-points and segments
    # ------------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        return len(self.via_points) - 1

    def segment_bounds(self, segment_index: int) -> Tuple[int, int]:
        """Route-index span [start, end] of a segment (Section VI item 7)."""
        if not (0 <= segment_index < self.n_segments):
            raise RideError(
                f"ride {self.ride_id}: segment {segment_index} out of range "
                f"(has {self.n_segments})"
            )
        return (
            self.via_points[segment_index].route_index,
            self.via_points[segment_index + 1].route_index,
        )

    def segment_of_route_index(self, route_index: int) -> int:
        """Segment containing a route index (last segment for the endpoint)."""
        for segment_index in range(self.n_segments):
            start, end = self.segment_bounds(segment_index)
            if start <= route_index < end:
                return segment_index
        return self.n_segments - 1

    def replace_route(
        self,
        route: List[int],
        via_points: List[ViaPoint],
    ) -> None:
        """Install a post-booking route + via-point set (booking back-end).

        Validates that via-points are sorted, anchored at the route ends, and
        reference the claimed nodes.
        """
        self._set_route(route)
        if not via_points or via_points[0].route_index != 0:
            raise RideError(f"ride {self.ride_id}: first via-point must be index 0")
        if via_points[-1].route_index != len(route) - 1:
            raise RideError(f"ride {self.ride_id}: last via-point must be route end")
        previous = 0
        for via in via_points:
            # Non-decreasing: two via-points may share a node (pickup at an
            # existing stop), never move backwards.
            if via.route_index < previous:
                raise RideError(
                    f"ride {self.ride_id}: via-points out of order at {via}"
                )
            if route[via.route_index] != via.node:
                raise RideError(
                    f"ride {self.ride_id}: via-point node mismatch at {via}"
                )
            previous = via.route_index
        self.via_points = list(via_points)

    # ------------------------------------------------------------------
    # Per-passenger accounting
    # ------------------------------------------------------------------
    def passenger_vias(self, request_id: int) -> Tuple[ViaPoint, ViaPoint]:
        """The (pickup, dropoff) via-points of a booked passenger."""
        pickup = dropoff = None
        for via in self.via_points:
            if via.request_id != request_id:
                continue
            if via.label == "pickup":
                pickup = via
            elif via.label == "dropoff":
                dropoff = via
        if pickup is None or dropoff is None:
            raise RideError(
                f"ride {self.ride_id}: request {request_id} has no "
                f"pickup/dropoff via-points"
            )
        return pickup, dropoff

    def onboard_span_m(self, request_id: int) -> float:
        """Route distance a booked passenger spends onboard (pickup→dropoff)."""
        pickup, dropoff = self.passenger_vias(request_id)
        return self._offsets_m[dropoff.route_index] - self._offsets_m[pickup.route_index]

    def passenger_consumed_m(self, request_id: int) -> float:
        """Detour consumed against a passenger's own budget so far."""
        record = self.passengers.get(request_id)
        if record is None:
            raise RideError(
                f"ride {self.ride_id}: request {request_id} is not a passenger"
            )
        return max(0.0, self.onboard_span_m(request_id) - record.baseline_onboard_m)

    # ------------------------------------------------------------------
    # Seats / detour accounting
    # ------------------------------------------------------------------
    def consume_seat(self) -> None:
        if self.seats_available <= 0:
            raise RideError(f"ride {self.ride_id}: no seats available")
        self.seats_available -= 1

    def release_seat(self) -> None:
        if self.seats_available >= self.seats_total:
            raise RideError(f"ride {self.ride_id}: all seats already free")
        self.seats_available += 1

    def consume_detour(self, metres: float) -> None:
        if metres < 0:
            raise RideError(f"ride {self.ride_id}: negative detour {metres}")
        self.detour_limit_m = max(0.0, self.detour_limit_m - metres)

    def __repr__(self) -> str:
        return (
            f"Ride(id={self.ride_id}, depart={self.departure_s:.0f}s, "
            f"len={self.length_m:.0f}m, seats={self.seats_available}/"
            f"{self.seats_total}, detour_left={self.detour_limit_m:.0f}m, "
            f"vias={len(self.via_points)})"
        )
