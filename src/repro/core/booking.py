"""Ride booking (paper Section VIII-B).

Booking is the only runtime operation allowed to compute shortest paths, and
it is bounded: at most 4 computations per booking (3 when pickup and drop lie
on the same segment), run "in the back-end after the booking is confirmed".

Steps (mirroring the paper):

1. locate the segments on which the pickup (src) and drop-off (dest) lie,
   using the supporting pass-through clusters recorded in the ride index;
2. same segment s: compute SP(s₁→src), SP(src→dest), SP(dest→s₂) and splice;
3. different segments: compute SP(s₁→src), SP(src→s₂) and SP(d₁→dest),
   SP(dest→d₂) and splice both segments;
4. charge the ride's detour budget with the *actual* detour (new route length
   − old route length), decrement seats, install the new via-points, and
   re-index the ride (pass-through / reachable clusters may all change).

The difference between the actual detour and the cluster-level estimate made
at search time is the *approximation error* the paper bounds by 4ε and
measures empirically in Figure 3a; we record it on every booking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..exceptions import BookingError
from ..index import PassThrough
from ..obs.trace import NULL_SPAN
from ..roadnet import dijkstra_path
from .request import RideRequest
from .ride import PassengerRecord, Ride, ViaPoint
from .search import MatchOption, _splice_estimate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import XAREngine


@dataclass(frozen=True)
class BookingRecord:
    """The persisted outcome of a successful booking."""

    request_id: int
    ride_id: int
    pickup_landmark: int
    dropoff_landmark: int
    walk_source_m: float
    walk_destination_m: float
    eta_pickup_s: float
    eta_dropoff_s: float
    #: Cluster-level estimate promised at search time.
    detour_estimate_m: float
    #: Actual detour measured after the shortest-path splice.
    detour_actual_m: float
    #: Shortest-path computations performed (<= 4, Section VIII-B).
    shortest_paths_computed: int

    @property
    def approximation_error_m(self) -> float:
        """|actual − estimated| detour: the Fig. 3a quantity."""
        return abs(self.detour_actual_m - self.detour_estimate_m)


@dataclass(frozen=True)
class BookingRollback:
    """The persisted outcome of a booking that failed and was rolled back.

    Transactional booking (``XAREngine.book``) snapshots the ride before the
    splice and restores it on any :class:`~repro.exceptions.XARError`, so a
    failed booking is a no-op on engine state; this record is the audit
    trail of that rollback.
    """

    request_id: int
    ride_id: int
    #: Exception class name that aborted the booking (e.g. ``NoPathError``).
    error: str
    reason: str


@dataclass(frozen=True)
class CancellationRecord:
    """The persisted outcome of a successful booking cancellation."""

    request_id: int
    ride_id: int
    #: Route metres the un-splice removed (old length − new length).
    route_delta_m: float
    #: Detour budget returned to the ride by the cancellation.
    detour_restored_m: float
    #: Shortest-path computations performed (<= 2: one per junction where
    #: the cancelled passenger's via-points sat).
    shortest_paths_computed: int


def book_ride(
    engine: "XAREngine",
    request: RideRequest,
    match: MatchOption,
    span=NULL_SPAN,
) -> BookingRecord:
    """Confirm a match: splice the route, charge budgets, re-index.

    ``span`` times the booking's two expensive stages: **splice** (segment
    resolution, the ≤ 4 shortest paths and the route rebuild with budget
    checks) and **reindex** (rebuilding the ride's cluster-index entry);
    the **snapshot** stage is timed by the caller, ``XAREngine.book``.
    """
    ride = engine.rides.get(match.ride_id)
    if ride is not None and ride.retired:
        raise BookingError(
            f"ride {match.ride_id} retired at shift end and takes no bookings"
        )
    entry = engine.ride_entries.get(match.ride_id)
    if ride is None or entry is None:
        raise BookingError(f"ride {match.ride_id} is no longer in the system")
    if ride.seats_available < 1:
        raise BookingError(f"ride {match.ride_id} has no free seats")

    region = engine.region
    pickup_node = region.landmarks[match.pickup_landmark].node
    dropoff_node = region.landmarks[match.dropoff_landmark].node
    if pickup_node == dropoff_node:
        raise BookingError("pickup and drop-off collapse to the same road node")

    with span.stage("splice"):
        if engine.optimize_insertion:
            pair = _best_segment_pair(engine.region, entry, match)
            if pair is None:
                raise BookingError(
                    "match is stale: its clusters are no longer served by the ride"
                )
            segment_pickup, segment_dropoff = pair
        else:
            segment_pickup = entry.segment_for(match.pickup_cluster, earliest=True)
            segment_dropoff = entry.segment_for(match.dropoff_cluster, earliest=False)
            if segment_pickup is None or segment_dropoff is None:
                raise BookingError(
                    "match is stale: its clusters are no longer served by the ride"
                )
            if segment_dropoff < segment_pickup:
                # Keep the pickup-before-drop-off order; try the drop-off's
                # segment range again constrained to >= pickup's segment.
                segment_dropoff = entry.segment_for(
                    match.dropoff_cluster, earliest=False, at_least=segment_pickup
                )
                if segment_dropoff is None:
                    raise BookingError(
                        "ride cannot drop off after picking up within its route"
                    )

        network = engine.region.network
        old_length = ride.length_m
        sp_count = 0

        def shortest(a: int, b: int) -> List[int]:
            nonlocal sp_count
            if a == b:
                return [a]
            sp_count += 1
            if engine.router is not None:
                _dist, path = engine.router.shortest_path(a, b)
            else:
                _dist, path = dijkstra_path(network, a, b)
            return path

        route = ride.route
        vias = list(ride.via_points)

        # Rebuild the route segment by segment: unaffected segments are copied
        # verbatim (shortest-path free); the pickup/drop-off segments are spliced
        # through the new via nodes.  Same-segment bookings cost 3 shortest paths,
        # distinct segments cost 4 — the paper's Section VIII-B bound.
        new_route: List[int] = [route[0]]
        new_vias: List[ViaPoint] = [ViaPoint(node=route[0], route_index=0, label=vias[0].label, request_id=vias[0].request_id)]
        for seg in range(ride.n_segments):
            start, end = ride.segment_bounds(seg)
            inserts: List[Tuple[int, str]] = []
            if seg == segment_pickup:
                inserts.append((pickup_node, "pickup"))
            if seg == segment_dropoff:
                inserts.append((dropoff_node, "dropoff"))
            if inserts:
                waypoints = [route[start]] + [node for node, _label in inserts] + [route[end]]
                pieces: List[List[int]] = []
                for a, b in zip(waypoints, waypoints[1:]):
                    pieces.append(shortest(a, b))
                sub_route = pieces[0]
                insert_positions: List[Tuple[int, str]] = []
                for piece, (node, label) in zip(pieces[1:], inserts):
                    insert_positions.append((len(new_route) - 1 + len(sub_route) - 1, label))
                    sub_route = _join(sub_route, piece)
            else:
                sub_route = route[start:end + 1]
                insert_positions = []
            new_route.extend(sub_route[1:])
            for position, label in insert_positions:
                new_vias.append(
                    ViaPoint(
                        node=new_route[position],
                        route_index=position,
                        label=label,
                        request_id=request.request_id,
                    )
                )
            end_via = vias[seg + 1]
            new_vias.append(
                ViaPoint(
                    node=new_route[-1],
                    route_index=len(new_route) - 1,
                    label=end_via.label,
                    request_id=end_via.request_id,
                )
            )

        if sp_count > 4:
            raise BookingError(
                f"internal invariant broken: {sp_count} shortest paths "
                "(paper bounds booking at 4)"
            )

        ride.replace_route(new_route, new_vias)
        actual_detour = max(0.0, ride.length_m - old_length)

        slack = engine.detour_slack_m
        if actual_detour > ride.detour_limit_m + slack:
            # The additive 4ε guarantee allows exceeding the limit by at most the
            # slack; beyond that the match was invalid — roll back.
            ride.replace_route(route, vias)
            raise BookingError(
                f"actual detour {actual_detour:.0f} m exceeds remaining budget "
                f"{ride.detour_limit_m:.0f} m beyond the {slack:.0f} m tolerance"
            )

        if ride.seats_available < 1:
            # Look-to-book race: seats hit zero between the entry check and the
            # splice (e.g. the same ride booked via another match of this batch).
            # Never silently over-book — restore the route and refuse.
            ride.replace_route(route, vias)
            raise BookingError(
                f"ride {ride.ride_id} ran out of seats while booking was in flight"
            )

        # Per-passenger budgets: the splice may stretch the onboard span of
        # already-booked passengers; none may exceed their declared budget.
        for record_existing in ride.passengers.values():
            consumed = ride.passenger_consumed_m(record_existing.request_id)
            if (
                record_existing.max_detour_m is not None
                and consumed > record_existing.max_detour_m
            ):
                ride.replace_route(route, vias)
                raise BookingError(
                    f"splice would stretch passenger {record_existing.request_id} "
                    f"by {consumed:.0f} m, over their {record_existing.max_detour_m:.0f} m "
                    "personal detour budget"
                )

        ride.consume_seat()
        ride.consume_detour(actual_detour)
        ride.passengers[request.request_id] = PassengerRecord(
            request_id=request.request_id,
            max_detour_m=getattr(request, "max_detour_m", None),
            baseline_onboard_m=ride.onboard_span_m(request.request_id),
        )
    with span.stage("reindex"):
        engine.reindex_ride(ride.ride_id)

    record = BookingRecord(
        request_id=request.request_id,
        ride_id=ride.ride_id,
        pickup_landmark=match.pickup_landmark,
        dropoff_landmark=match.dropoff_landmark,
        walk_source_m=match.walk_source_m,
        walk_destination_m=match.walk_destination_m,
        eta_pickup_s=match.eta_pickup_s,
        eta_dropoff_s=match.eta_dropoff_s,
        detour_estimate_m=match.detour_estimate_m,
        detour_actual_m=actual_detour,
        shortest_paths_computed=sp_count,
    )
    engine.bookings.append(record)
    return record


def cancel_booking_ride(
    engine: "XAREngine",
    request_id: int,
    ride_id: int,
    span=NULL_SPAN,
) -> CancellationRecord:
    """Cancel one passenger's booking: un-splice their via-points, restore
    the seat and the detour budget exactly, and re-index the ride.

    Like booking, the operation is shortest-path bounded: every segment
    between consecutive via-points is itself a shortest path (the initial
    route is one, spliced pieces are, and verbatim-copied segments are
    subpaths of shortest paths), so removing a passenger's two via-points
    needs at most **2** new shortest-path computations — one per junction
    where a removed via-point sat (1 when pickup and drop-off were adjacent
    via-points, 0 when both collapse onto surviving via nodes).
    """
    ride = engine.rides.get(ride_id)
    if ride is None:
        raise BookingError(f"ride {ride_id} is no longer in the system")
    booked = sum(
        1 for b in engine.bookings
        if b.request_id == request_id and b.ride_id == ride_id
    )
    cancelled = sum(
        1 for c in engine.cancellations
        if c.request_id == request_id and c.ride_id == ride_id
    )
    if booked <= cancelled:
        raise BookingError(
            f"request {request_id} holds no live booking on ride {ride_id}"
        )

    with span.stage("unsplice"):
        old_route = ride.route
        old_vias = list(ride.via_points)
        old_length = ride.length_m
        old_budget = ride.detour_limit_m

        kept: List[Tuple[int, ViaPoint]] = []
        removed = 0
        for position, via in enumerate(old_vias):
            if via.request_id == request_id and via.label in ("pickup", "dropoff"):
                removed += 1
            else:
                kept.append((position, via))
        if removed != 2:
            raise BookingError(
                f"ride {ride_id} carries {removed} via-points for request "
                f"{request_id}, expected a pickup/dropoff pair"
            )

        network = engine.region.network
        sp_count = 0

        def shortest(a: int, b: int) -> List[int]:
            nonlocal sp_count
            if a == b:
                return [a]
            sp_count += 1
            if engine.router is not None:
                _dist, path = engine.router.shortest_path(a, b)
            else:
                _dist, path = dijkstra_path(network, a, b)
            return path

        first = kept[0][1]
        new_route: List[int] = [first.node]
        new_vias: List[ViaPoint] = [
            ViaPoint(node=first.node, route_index=0, label=first.label,
                     request_id=first.request_id)
        ]
        for (pos_a, via_a), (pos_b, via_b) in zip(kept, kept[1:]):
            if pos_b == pos_a + 1:
                # No via-point was removed between these two: the old segment
                # survives verbatim (shortest-path free).
                piece = old_route[via_a.route_index:via_b.route_index + 1]
            else:
                # A removed via-point sat here; re-route the junction.  The
                # old adjacent segments were shortest paths, so one SP between
                # the surviving endpoints restores the invariant.
                piece = shortest(via_a.node, via_b.node)
            new_route.extend(piece[1:])
            new_vias.append(
                ViaPoint(node=via_b.node, route_index=len(new_route) - 1,
                         label=via_b.label, request_id=via_b.request_id)
            )

        if sp_count > 2:
            raise BookingError(
                f"internal invariant broken: {sp_count} shortest paths "
                "(cancellation is bounded at 2)"
            )

        ride.replace_route(new_route, new_vias)
        ride.release_seat()
        # Exact budget restore: recompute the remaining budget from the
        # declared initial limit and the detour still materialised in the
        # route, instead of adding back a delta (consume_detour clamps at
        # zero, so deltas can lose information).
        ride.detour_limit_m = max(
            0.0,
            ride.detour_limit_initial_m
            - max(0.0, ride.length_m - ride.base_length_m),
        )
        ride.passengers.pop(request_id, None)
        ride.progressed_m = min(ride.progressed_m, ride.length_m)
    with span.stage("reindex"):
        engine.reindex_ride(ride.ride_id)

    record = CancellationRecord(
        request_id=request_id,
        ride_id=ride_id,
        route_delta_m=max(0.0, old_length - ride.length_m),
        detour_restored_m=max(0.0, ride.detour_limit_m - old_budget),
        shortest_paths_computed=sp_count,
    )
    engine.cancellations.append(record)
    return record


def _best_segment_pair(
    region, entry, match: MatchOption
) -> Optional[Tuple[int, int]]:
    """Insertion optimization: among all supported (pickup, drop-off) segment
    pairs, pick the one with the smallest landmark-level splice estimate.

    Scoring reads the precomputed landmark matrix, so the optimization adds
    no shortest-path computations — the booking still performs at most 4.
    This is the scheduling-flavoured extension the paper marks complementary
    (Huang et al.); enable with ``XAREngine(optimize_insertion=True)``.
    """
    info_pickup = entry.reachable.get(match.pickup_cluster)
    info_dropoff = entry.reachable.get(match.dropoff_cluster)
    if info_pickup is None or info_dropoff is None:
        return None
    pickup_segments = sorted(
        {
            visit.segment_index
            for visit in entry.pass_through
            if visit.cluster_id in info_pickup.supports
        }
    )
    dropoff_segments = sorted(
        {
            visit.segment_index
            for visit in entry.pass_through
            if visit.cluster_id in info_dropoff.supports
        }
    )
    best: Optional[Tuple[float, int, int]] = None
    for sp in pickup_segments:
        for sd in dropoff_segments:
            if sd < sp:
                continue
            estimate = _splice_estimate(
                region, entry, sp, sd, match.pickup_landmark, match.dropoff_landmark
            )
            if estimate is None:
                estimate = (
                    info_pickup.detour_estimate_m + info_dropoff.detour_estimate_m
                )
            if best is None or estimate < best[0]:
                best = (estimate, sp, sd)
    if best is None:
        return None
    return (best[1], best[2])


def _join(a: List[int], b: List[int]) -> List[int]:
    """Concatenate node paths sharing an endpoint."""
    if not a:
        return list(b)
    if not b:
        return list(a)
    if a[-1] != b[0]:
        raise BookingError(f"cannot join paths: {a[-1]} != {b[0]}")
    return a + b[1:]
