"""The XAR engine: the paper's "run-time unit" façade (Section III).

Exposes the four runtime operations on top of a
:class:`~repro.discretization.model.DiscretizedRegion`:

* :meth:`XAREngine.create_ride` — O2: route the offer (the only other place
  shortest paths are allowed), compute pass-through and reachable clusters,
  and insert the ride into every relevant cluster's potential-ride lists;
* :meth:`XAREngine.search` — O1: the shortest-path-free two-step search;
* :meth:`XAREngine.book` — confirm a match, splice the route (≤ 4 shortest
  paths), charge seats and detour budget, re-index;
* :meth:`XAREngine.track` / :meth:`XAREngine.track_all` — O3: obsolete-
  cluster invalidation for rides on the move.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence

from ..discretization import DiscretizedRegion
from ..exceptions import RideError, UnknownRideError, XARError
from ..geo import GeoPoint
from ..index import ClusterRideIndex, FlatSearchIndex, RideIndexEntry
from ..obs import DETOUR_RATIO_BUCKETS, MetricsRegistry, Tracer
from ..roadnet import astar
from .booking import (
    BookingRecord,
    BookingRollback,
    CancellationRecord,
    book_ride,
    cancel_booking_ride,
)
from .reachability import build_ride_entry
from .request import RideRequest
from .ride import Ride, RideStatus
from .search import MatchOption, search_rides
from .tracking import apply_obsolescence, track_all, track_ride


class _IdSequence:
    """``itertools.count`` semantics plus peek/save/restore.

    Durability needs two things a plain ``count`` cannot do: the WAL predicts
    the ride id a create *will* allocate (``peek``), and a checkpoint restores
    the allocator so replayed and live allocations line up exactly.
    """

    __slots__ = ("next_value", "step")

    def __init__(self, start: int, step: int = 1):
        self.next_value = start
        self.step = step

    def __iter__(self) -> "_IdSequence":
        return self

    def __next__(self) -> int:
        value = self.next_value
        self.next_value += self.step
        return value

    def peek(self) -> int:
        return self.next_value


class XAREngine:
    """A running XAR instance over one discretized region."""

    def __init__(
        self,
        region: DiscretizedRegion,
        detour_slack_m: Optional[float] = None,
        optimize_insertion: bool = False,
        router=None,
        strict_coverage: bool = False,
        ride_id_start: int = 1,
        ride_id_step: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        metrics_labels: Optional[Dict[str, str]] = None,
        use_flat_index: bool = True,
    ):
        self.region = region
        #: When True, ``create_ride`` and ``search`` raise
        #: :class:`~repro.exceptions.UncoveredLocationError` for locations
        #: the discretization cannot serve (Section IV semantics), instead
        #: of snapping/returning no matches.
        self.strict_coverage = strict_coverage
        #: When True, booking scores every supported segment pair with the
        #: landmark matrix and splices the cheapest (still <= 4 shortest
        #: paths) — see booking._best_segment_pair.
        self.optimize_insertion = optimize_insertion
        #: Optional accelerated router (e.g. roadnet.ALTRouter) used by the
        #: create and book back-ends; anything with
        #: ``shortest_path(a, b) -> (distance, node_path)``.
        self.router = router
        self.cluster_index = ClusterRideIndex(region.n_clusters)
        #: Flat struct-of-arrays mirror of the cluster index + per-ride
        #: budgets; when present, ``search`` runs the vectorized two-step
        #: path over it (identical results to the legacy per-object scan —
        #: ``use_flat_index=False`` keeps the legacy path for differential
        #: comparison).  Maintained at every mutation seam below.
        self.flat_index: Optional[FlatSearchIndex] = (
            FlatSearchIndex(region.n_clusters) if use_flat_index else None
        )
        self.rides: Dict[int, Ride] = {}
        self.completed_rides: Dict[int, Ride] = {}
        self.ride_entries: Dict[int, RideIndexEntry] = {}
        self.bookings: List[BookingRecord] = []
        self.rollbacks: List[BookingRollback] = []
        self.cancellations: List[CancellationRecord] = []
        self.tracked_to: Dict[int, float] = {}
        #: Additive tolerance on the detour budget at booking time; defaults
        #: to the theoretical worst case 4ε (ε = 4δ, Theorem 6 + Section V).
        self.detour_slack_m = (
            detour_slack_m
            if detour_slack_m is not None
            else 4.0 * region.config.epsilon_m
        )
        #: Ride-id lane: a sharded deployment gives each shard engine a
        #: disjoint arithmetic progression (start=shard_id+1, step=n_shards)
        #: so ride ids stay globally unique and encode their home shard.
        if ride_id_start < 1 or ride_id_step < 1:
            raise ValueError("ride_id_start and ride_id_step must be >= 1")
        self._ride_ids = _IdSequence(ride_id_start, ride_id_step)
        self._request_ids = _IdSequence(1)
        #: Optional crash-injection seam: when set, called at named points
        #: inside mutating operations (currently ``"book:post-snapshot"``,
        #: between the transactional snapshot and the route splice).  A hook
        #: that raises a non-XARError (e.g.
        #: :class:`~repro.exceptions.WorkerCrashError`) aborts the operation
        #: *without* triggering the rollback bookkeeping — modelling a
        #: process that died mid-operation rather than an operation that
        #: failed cleanly.
        self.fault_hook: Optional[Callable[[str], None]] = None
        #: Per-stage operation timing (search: snap → cluster_lookup →
        #: candidate_scan → feasibility_filter → rank_merge; book:
        #: snapshot → splice → reindex; track: sweep; create: snap →
        #: route → index) into ``metrics``; a ``None`` registry hands out
        #: null spans, so an uninstrumented engine pays nothing.
        self.tracer = Tracer(metrics, labels=metrics_labels)
        self.metrics = metrics
        #: Match-quality instruments (same extra labels as the tracer, so a
        #: sharded deployment gets per-shard series): detour-to-direct ratio
        #: of the best match, and searches that came back empty.  ``None``
        #: registry == no quality series, zero overhead.
        if metrics is not None:
            quality_labels = dict(metrics_labels or {})
            extra = tuple(sorted(quality_labels))
            self._h_detour_ratio = metrics.histogram(
                "xar_match_detour_ratio",
                "Best-match detour estimate over direct trip distance",
                labels=extra,
                buckets=DETOUR_RATIO_BUCKETS,
            ).labels(**quality_labels)
            self._c_search_empty = metrics.counter(
                "xar_search_empty_total",
                "Searches that returned no feasible match",
                labels=extra,
            ).labels(**quality_labels)
        else:
            self._h_detour_ratio = None
            self._c_search_empty = None
        #: Guards all mutable engine state (rides, index, ledgers).  Public
        #: operations take it, so a concurrent ``search`` can never observe a
        #: half-spliced route mid-``book``; reentrant because ``book`` calls
        #: ``reindex_ride`` internally.
        self.lock = threading.RLock()

    # ------------------------------------------------------------------
    # O2: ride creation
    # ------------------------------------------------------------------
    def create_ride(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        departure_s: float,
        detour_limit_m: Optional[float] = None,
        seats: Optional[int] = None,
        route: Optional[Sequence[int]] = None,
        driver_id: Optional[int] = None,
        shift_end_s: Optional[float] = None,
    ) -> Ride:
        """Offer a new ride; routes via shortest path unless ``route`` given."""
        config = self.region.config
        network = self.region.network
        span = self.tracer.span("create")
        try:
            with span.stage("snap"):
                if self.strict_coverage:
                    self.region.require_covered(source)
                    self.region.require_covered(destination)
                source_node = network.snap(source)
                destination_node = network.snap(destination)
            if source_node == destination_node:
                raise RideError("ride source and destination snap to the same node")
            if route is None:
                with span.stage("route"):
                    if self.router is not None:
                        _length, route = self.router.shortest_path(
                            source_node, destination_node
                        )
                    else:
                        _length, route = astar(network, source_node, destination_node)
            ride = Ride(
                ride_id=next(self._ride_ids),
                network=network,
                route=route,
                departure_s=departure_s,
                detour_limit_m=(
                    detour_limit_m if detour_limit_m is not None else config.default_detour_m
                ),
                seats=seats if seats is not None else config.default_seats,
                source_point=source,
                destination_point=destination,
                driver_id=driver_id,
                shift_end_s=shift_end_s,
            )
            with self.lock:
                with span.stage("index"):
                    self.rides[ride.ride_id] = ride
                    self._index_ride(ride)
            return ride
        finally:
            span.finish()

    def _index_ride(self, ride: Ride) -> None:
        if ride.retired:
            # A retired ride keeps draining its passengers but never
            # re-enters the search index (shift-end semantics).
            return
        entry = build_ride_entry(self.region, ride)
        self.ride_entries[ride.ride_id] = entry
        # ``update`` (not ``add``): each reachable cluster appears once in
        # the entry with its merged earliest ETA, so there is nothing left
        # for add's earliest-wins rule to arbitrate — and if a stale stray
        # row survived an earlier corruption, add would silently keep its
        # outdated ETA where update replaces it with the recomputed one.
        etas = {
            cluster_id: info.eta_s for cluster_id, info in entry.reachable.items()
        }
        for cluster_id, eta_s in etas.items():
            self.cluster_index.update(cluster_id, ride.ride_id, eta_s)
        if self.flat_index is not None:
            self.flat_index.reindex_ride(ride, entry, etas)

    def _unindex_ride(self, ride_id: int) -> None:
        if self.flat_index is not None:
            self.flat_index.drop_ride(ride_id)
        entry = self.ride_entries.pop(ride_id, None)
        if entry is None:
            return
        for cluster_id in entry.reachable_ids():
            self.cluster_index.remove(cluster_id, ride_id)

    def reindex_ride(self, ride_id: int) -> None:
        """Rebuild a ride's index entry (after booking changed its route)."""
        with self.lock:
            ride = self.rides.get(ride_id)
            if ride is None:
                raise UnknownRideError(ride_id)
            self._unindex_ride(ride_id)
            # The entry-driven unindex removes only clusters the *old* entry
            # named; rows left behind by a corrupted entry (ghosts) would
            # otherwise survive every reindex — and the self-healing
            # auditor's reindex-based repair would never converge.
            self.cluster_index.purge_ride(ride_id)
            self._index_ride(ride)
            # Re-apply any progress the ride had already made: clusters
            # crossed before the booking stay obsolete.
            tracked = self.tracked_to.get(ride_id)
            if tracked is not None and tracked > ride.departure_s:
                apply_obsolescence(self, ride_id, tracked)

    def remove_ride(self, ride_id: int) -> None:
        """Withdraw a ride entirely (driver cancelled).

        Removal is atomic with respect to discoverability: the ride's index
        entry, every cluster potential-ride tuple (including strays a
        corrupted entry would not have named), and its tracking state all go
        in one call, so a cancelled ride can never surface in a later search.
        """
        with self.lock:
            if ride_id not in self.rides:
                raise UnknownRideError(ride_id)
            self._unindex_ride(ride_id)
            # Belt and braces: the entry-driven unindex trusts the ride's
            # entry to name its clusters; sweep the index for strays as well.
            self.cluster_index.purge_ride(ride_id)
            del self.rides[ride_id]
            self.tracked_to.pop(ride_id, None)

    # ------------------------------------------------------------------
    # O1: search
    # ------------------------------------------------------------------
    def make_request(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        window_start_s: float,
        window_end_s: float,
        walk_threshold_m: Optional[float] = None,
    ) -> RideRequest:
        """Convenience constructor applying the config's default threshold."""
        return RideRequest(
            request_id=next(self._request_ids),
            source=source,
            destination=destination,
            window_start_s=window_start_s,
            window_end_s=window_end_s,
            walk_threshold_m=(
                walk_threshold_m
                if walk_threshold_m is not None
                else self.region.config.default_walk_threshold_m
            ),
        )

    def search(
        self,
        request: RideRequest,
        k: Optional[int] = None,
        ranking=None,
    ) -> List[MatchOption]:
        """All feasible matches (or the best ``k``), least walking first.

        ``ranking`` overrides the ordering — e.g.
        :func:`repro.social.social_ranking` puts rides offered by the
        requester's friends first (Section VII's safety motivation).  The
        top-k cut is applied after re-ranking.
        """
        if self.strict_coverage:
            self.region.require_covered(request.source)
            self.region.require_covered(request.destination)
        span = self.tracer.span("search")
        try:
            with self.lock:
                if ranking is None:
                    matches = search_rides(self, request, k, span=span)
                    self._observe_quality(request, matches)
                    return matches
                matches = search_rides(self, request, None, span=span)
            with span.stage("rank_merge"):
                matches.sort(key=ranking)
                if k is not None:
                    matches = matches[:k]
            self._observe_quality(request, matches)
            return matches
        finally:
            span.finish()

    def _observe_quality(
        self, request: RideRequest, matches: Sequence[MatchOption]
    ) -> None:
        """Record match quality: best-match detour ratio, or an empty hit."""
        if self._c_search_empty is None:
            return
        if not matches:
            self._c_search_empty.inc()
            return
        direct = request.straight_line_m()
        if direct > 0:
            self._h_detour_ratio.observe(
                matches[0].detour_estimate_m / direct
            )

    def driver_of(self, ride_id: int) -> Optional[int]:
        """Driver user id of a ride, if it is live and has one."""
        ride = self.rides.get(ride_id)
        return ride.driver_id if ride is not None else None

    # ------------------------------------------------------------------
    # Booking + tracking
    # ------------------------------------------------------------------
    def book(self, request: RideRequest, match: MatchOption) -> BookingRecord:
        """Confirm a previously returned match — transactionally.

        The ride's full mutable state (route, via-points, seats, detour
        budget, index entry, cluster-index membership) is snapshotted before
        the splice; any :class:`~repro.exceptions.XARError` raised mid-way
        (a routing failure, a stale match, an invariant trip) restores the
        snapshot verbatim, records a :class:`BookingRollback`, and
        re-raises.  A failed booking is therefore a no-op on engine state.
        """
        from ..resilience.snapshot import restore_ride, snapshot_ride

        span = self.tracer.span("book")
        try:
            with self.lock:
                with span.stage("snapshot"):
                    snapshot = snapshot_ride(self, match.ride_id)
                if self.fault_hook is not None:
                    # Crash seam between snapshot and splice: nothing has
                    # been mutated yet, so a hook that kills the worker here
                    # leaves the engine exactly as before the call.
                    self.fault_hook("book:post-snapshot")
                try:
                    return book_ride(self, request, match, span=span)
                except XARError as exc:
                    if snapshot is not None:
                        restore_ride(self, snapshot)
                    self.rollbacks.append(
                        BookingRollback(
                            request_id=request.request_id,
                            ride_id=match.ride_id,
                            error=type(exc).__name__,
                            reason=str(exc),
                        )
                    )
                    raise
        finally:
            span.finish()

    def cancel_booking(self, request_id: int, ride_id: int) -> CancellationRecord:
        """Cancel one passenger's booking — transactionally.

        The inverse of :meth:`book`: the passenger's via-points are
        un-spliced (≤ 2 shortest paths — every inter-via segment is itself a
        shortest path, so only the junctions where the removed via-points
        sat need re-routing), the seat is released, and the ride's detour
        budget is restored exactly from its declared initial limit.  Any
        :class:`~repro.exceptions.XARError` mid-way restores the pre-call
        snapshot verbatim, so a failed cancellation is a no-op.
        """
        from ..resilience.snapshot import restore_ride, snapshot_ride

        span = self.tracer.span("cancel_booking")
        try:
            with self.lock:
                with span.stage("snapshot"):
                    snapshot = snapshot_ride(self, ride_id)
                try:
                    return cancel_booking_ride(self, request_id, ride_id, span=span)
                except XARError:
                    if snapshot is not None:
                        restore_ride(self, snapshot)
                    raise
        finally:
            span.finish()

    def track(self, ride_id: int, now_s: float) -> None:
        with self.lock:
            track_ride(self, ride_id, now_s)

    def track_all(self, now_s: float) -> int:
        span = self.tracer.span("track")
        try:
            with self.lock:
                with span.stage("sweep"):
                    return track_all(self, now_s)
        finally:
            span.finish()

    # ------------------------------------------------------------------
    # Durability support (WAL prediction + checkpoint restore)
    # ------------------------------------------------------------------
    def peek_next_ride_id(self) -> int:
        """Ride id the next successful ``create_ride`` will allocate.

        The write-ahead log records it *before* the create runs, so replay
        reconstructs the exact same id lane without the engine having to
        accept externally assigned ids.
        """
        return self._ride_ids.peek()

    def counter_state(self) -> Dict[str, int]:
        """Snapshot of the id allocators (checkpoint payload)."""
        return {
            "ride_next": self._ride_ids.next_value,
            "ride_step": self._ride_ids.step,
            "request_next": self._request_ids.next_value,
        }

    def restore_counter_state(self, state: Dict[str, int]) -> None:
        """Restore the id allocators from :meth:`counter_state`."""
        self._ride_ids.next_value = int(state["ride_next"])
        self._ride_ids.step = int(state["ride_step"])
        self._request_ids.next_value = int(state["request_next"])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_active_rides(self) -> int:
        return len(self.rides)

    @property
    def n_bookings(self) -> int:
        return len(self.bookings)

    def index_stats(self) -> Dict[str, int]:
        """Cheap counters describing the in-memory index."""
        with self.lock:
            return {
                "rides": len(self.rides),
                "completed_rides": len(self.completed_rides),
                "cluster_entries": self.cluster_index.total_entries(),
                "pass_through_total": sum(
                    len(entry.pass_through) for entry in self.ride_entries.values()
                ),
                "reachable_total": sum(
                    len(entry.reachable) for entry in self.ride_entries.values()
                ),
            }
