"""Ride requests (paper Section VII).

A request is characterised by source location, destination location, a
departure time window, and a walking threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import RequestError
from ..geo import GeoPoint


@dataclass(frozen=True)
class RideRequest:
    """An immutable ride request."""

    request_id: int
    source: GeoPoint
    destination: GeoPoint
    window_start_s: float
    window_end_s: float
    walk_threshold_m: float
    #: Optional per-passenger detour budget: once booked, later splices may
    #: not stretch this passenger's onboard span by more than this many
    #: metres beyond what it was at their own booking commit.
    max_detour_m: Optional[float] = None

    def __post_init__(self):
        if self.window_end_s < self.window_start_s:
            raise RequestError(
                f"request {self.request_id}: departure window ends "
                f"({self.window_end_s}) before it starts ({self.window_start_s})"
            )
        if self.walk_threshold_m < 0:
            raise RequestError(
                f"request {self.request_id}: negative walk threshold "
                f"{self.walk_threshold_m}"
            )
        if self.max_detour_m is not None and self.max_detour_m < 0:
            raise RequestError(
                f"request {self.request_id}: negative per-passenger detour "
                f"budget {self.max_detour_m}"
            )
        if self.source == self.destination:
            raise RequestError(
                f"request {self.request_id}: source equals destination"
            )

    @property
    def window_length_s(self) -> float:
        return self.window_end_s - self.window_start_s

    def straight_line_m(self) -> float:
        """Great-circle length of the requested trip."""
        return self.source.distance_to(self.destination)
