"""Pass-through and reachable cluster computation (paper Section VI).

For a ride offered in the system:

1. the grids its route passes through are identified, their landmarks give
   the **pass-through clusters** per segment;
2. per pass-through cluster C in segment (i, i+1), the candidate reachable
   set is every cluster within the detour limit d of C, pruned by the test
   ``d(C, C') + d(C', via_{i+1}) - d(C, via_{i+1}) <= d``;
3. the ride is added to the potential-ride list of each pass-through and
   reachable cluster with its estimated time of arrival.

All distances here are *cluster-level* (closest landmark pairs), which is the
whole point: no shortest path is ever computed, and the resulting detour
estimates are correct within the ε = 4δ tolerance of Theorem 6.

The distance from a cluster X to a via-point v is approximated by
``cluster_distance(X, cluster_of(v))`` — when v's grid maps to no cluster,
the nearest pass-through cluster of the segment stands in.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..discretization import DiscretizedRegion
from ..index import PassThrough, ReachableInfo, RideIndexEntry, SegmentMeta
from .ride import Ride


def build_ride_entry(region: DiscretizedRegion, ride: Ride) -> RideIndexEntry:
    """Compute the full index entry (pass-through + reachable) for a ride."""
    entry = RideIndexEntry(ride_id=ride.ride_id)
    visits = _pass_through_visits(region, ride)
    entry.pass_through = visits
    entry.segments = _segment_meta(region, ride)
    if not visits:
        return entry

    detour_limit = ride.detour_limit_m
    drive = region.config.drive_seconds
    via_landmarks = {
        segment_index: _via_landmark(region, ride, segment_index, visits)
        for segment_index in range(ride.n_segments)
    }

    # Pass-through clusters serve requests with zero cluster-level detour.
    for visit in visits:
        info = entry.reachable.setdefault(
            visit.cluster_id, ReachableInfo(cluster_id=visit.cluster_id)
        )
        info.merge(
            support=visit.cluster_id,
            eta_s=visit.eta_s,
            detour_m=0.0,
            support_landmark=visit.landmark_id,
            via_landmark=via_landmarks.get(visit.segment_index, -1),
        )

    if detour_limit <= 0:
        return entry

    for segment_index in range(ride.n_segments):
        segment_visits = [v for v in visits if v.segment_index == segment_index]
        if not segment_visits:
            continue
        via_cluster = _via_cluster(region, ride, segment_index, segment_visits)
        via_landmark = via_landmarks[segment_index]
        for visit in segment_visits:
            c = visit.cluster_id
            d_c_via = region.cluster_distance(c, via_cluster)
            for candidate, d_c_cand in region.clusters_within(c, detour_limit):
                if candidate == c:
                    continue
                d_cand_via = region.cluster_distance(candidate, via_cluster)
                detour = d_c_cand + d_cand_via - d_c_via
                if detour > detour_limit:
                    continue
                info = entry.reachable.setdefault(
                    candidate, ReachableInfo(cluster_id=candidate)
                )
                info.merge(
                    support=c,
                    eta_s=visit.eta_s + drive(d_c_cand),
                    detour_m=max(0.0, detour),
                    support_landmark=visit.landmark_id,
                    via_landmark=via_landmark,
                )
    return entry


def _pass_through_visits(region: DiscretizedRegion, ride: Ride) -> List[PassThrough]:
    """First-encounter cluster visits along the ride's route, in route order."""
    visits: List[PassThrough] = []
    seen: Set[int] = set()
    route = ride.route
    for route_index, node in enumerate(route):
        hit = region.landmark_of_node(node)
        if hit is None:
            continue
        landmark_id, _distance = hit
        cluster_id = region.cluster_of_landmark(landmark_id)
        if cluster_id in seen:
            continue
        seen.add(cluster_id)
        visits.append(
            PassThrough(
                cluster_id=cluster_id,
                segment_index=ride.segment_of_route_index(route_index),
                eta_s=ride.eta_at_index(route_index),
                route_offset_m=ride.offset_at_index(route_index),
                landmark_id=landmark_id,
            )
        )
    return visits


def _via_cluster(
    region: DiscretizedRegion,
    ride: Ride,
    segment_index: int,
    segment_visits: List[PassThrough],
) -> int:
    """Cluster standing in for via-point ``segment_index + 1`` in the detour
    test; falls back to the segment's last pass-through cluster."""
    via_node = ride.via_points[segment_index + 1].node
    hit = region.landmark_of_node(via_node)
    if hit is not None:
        return region.cluster_of_landmark(hit[0])
    return segment_visits[-1].cluster_id


def _segment_meta(region: DiscretizedRegion, ride: Ride) -> List[SegmentMeta]:
    """Landmark-level segment descriptors for detour estimation."""
    meta: List[SegmentMeta] = []
    for segment_index in range(ride.n_segments):
        start, end = ride.segment_bounds(segment_index)
        start_hit = region.landmark_of_node(ride.route[start])
        end_hit = region.landmark_of_node(ride.route[end])
        meta.append(
            SegmentMeta(
                start_landmark=start_hit[0] if start_hit else -1,
                end_landmark=end_hit[0] if end_hit else -1,
                length_m=ride.offset_at_index(end) - ride.offset_at_index(start),
            )
        )
    return meta


def _via_landmark(
    region: DiscretizedRegion,
    ride: Ride,
    segment_index: int,
    visits: List[PassThrough],
) -> int:
    """Landmark standing in for via-point ``segment_index + 1``; falls back
    to the segment's (or ride's) last pass-through landmark, else -1."""
    via_node = ride.via_points[segment_index + 1].node
    hit = region.landmark_of_node(via_node)
    if hit is not None:
        return hit[0]
    segment_visits = [v for v in visits if v.segment_index == segment_index]
    if segment_visits:
        return segment_visits[-1].landmark_id
    return visits[-1].landmark_id if visits else -1
