"""Engine self-diagnosis: verify every structural invariant at once.

``validate_engine`` is the library's doctor function: tests call it after
fuzzing, operators can call it in production to detect index corruption.  It
raises :class:`EngineInvariantError` with a description of the first
violation, or returns a small summary dict when everything holds.

Invariants checked (see docs/ARCHITECTURE.md):

1. every cluster's two sorted lists contain the same ⟨ride, eta⟩ multiset;
2. every ride index entry belongs to a live ride, and vice versa;
3. every cluster-index entry is backed by the ride's reachable set, and
   every reachable cluster appears in the cluster index;
4. every reachable cluster has at least one supporting pass-through cluster
   that is still in the ride's pass-through list;
5. seats within [0, total]; #pickup via-points == seats consumed;
6. detour budget non-negative;
7. via-points non-decreasing along the route and anchored at its ends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..exceptions import XARError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import XAREngine


class EngineInvariantError(XARError):
    """An engine structural invariant does not hold."""


def validate_engine(engine: "XAREngine") -> Dict[str, int]:
    """Check all invariants; raise :class:`EngineInvariantError` on the
    first violation, else return counters of what was inspected."""
    # 1. Dual-list consistency (raises AssertionError internally; convert).
    try:
        engine.cluster_index.check_consistency()
    except AssertionError as exc:
        raise EngineInvariantError(str(exc)) from exc

    # 2-4. Entries <-> rides <-> cluster index.
    for ride_id, entry in engine.ride_entries.items():
        if ride_id not in engine.rides:
            raise EngineInvariantError(f"index entry for dead ride {ride_id}")
        pass_ids = entry.pass_through_ids()
        for cluster_id, info in entry.reachable.items():
            if not info.supports:
                raise EngineInvariantError(
                    f"ride {ride_id}: reachable cluster {cluster_id} has no supports"
                )
            if not info.supports <= pass_ids:
                raise EngineInvariantError(
                    f"ride {ride_id}: cluster {cluster_id} supported by "
                    f"non-pass-through clusters {info.supports - pass_ids}"
                )
            if engine.cluster_index.eta(cluster_id, ride_id) is None:
                raise EngineInvariantError(
                    f"ride {ride_id}: reachable cluster {cluster_id} missing "
                    "from the cluster index"
                )
    for ride_id, ride in engine.rides.items():
        if ride.retired:
            # Retired rides drain outside the index by design; their entry
            # must be *absent*.
            if ride_id in engine.ride_entries:
                raise EngineInvariantError(
                    f"retired ride {ride_id} still has an index entry"
                )
            continue
        if ride_id not in engine.ride_entries:
            raise EngineInvariantError(f"live ride {ride_id} has no index entry")

    # Reverse direction: no cluster-index entry without a reachable record.
    for cluster_id in range(engine.cluster_index.n_clusters):
        for potential in engine.cluster_index.all_rides(cluster_id):
            entry = engine.ride_entries.get(potential.ride_id)
            if entry is None or cluster_id not in entry.reachable:
                raise EngineInvariantError(
                    f"cluster {cluster_id} lists ride {potential.ride_id} "
                    "which does not (or no longer) reaches it"
                )

    # 5-7. Per-ride state.
    for ride in engine.rides.values():
        if not (0 <= ride.seats_available <= ride.seats_total):
            raise EngineInvariantError(
                f"ride {ride.ride_id}: seats {ride.seats_available}/"
                f"{ride.seats_total} out of range"
            )
        labels = [via.label for via in ride.via_points]
        consumed = ride.seats_total - ride.seats_available
        if labels.count("pickup") != consumed:
            raise EngineInvariantError(
                f"ride {ride.ride_id}: {labels.count('pickup')} pickups vs "
                f"{consumed} seats consumed"
            )
        if ride.detour_limit_m < 0:
            raise EngineInvariantError(
                f"ride {ride.ride_id}: negative detour budget"
            )
        indices = [via.route_index for via in ride.via_points]
        if indices != sorted(indices):
            raise EngineInvariantError(
                f"ride {ride.ride_id}: via-points out of order"
            )
        if indices[0] != 0 or indices[-1] != len(ride.route) - 1:
            raise EngineInvariantError(
                f"ride {ride.ride_id}: via-points not anchored at route ends"
            )
        # 8. Per-passenger budgets: every passenger record points at a real
        # pickup/dropoff via pair and the consumed detour respects the
        # passenger's own declared budget.
        for record in ride.passengers.values():
            try:
                consumed = ride.passenger_consumed_m(record.request_id)
            except XARError as exc:
                raise EngineInvariantError(
                    f"ride {ride.ride_id}: passenger {record.request_id} "
                    f"record without via-points ({exc})"
                ) from exc
            if (
                record.max_detour_m is not None
                and consumed > record.max_detour_m
            ):
                raise EngineInvariantError(
                    f"ride {ride.ride_id}: passenger {record.request_id} "
                    f"consumed {consumed:.1f} m over their "
                    f"{record.max_detour_m:.1f} m budget"
                )

    return {
        "rides": len(engine.rides),
        "entries": len(engine.ride_entries),
        "cluster_entries": engine.cluster_index.total_entries(),
    }
