"""Ride tracking (paper Section VIII-A).

Once a ride is on the move, clusters it has already crossed — and clusters it
can no longer reach within its detour budget — are *obsolete* and must stop
surfacing the ride as a potential match.  The paper's three steps:

* **Step 1** — mark each crossed pass-through cluster and all its connected
  reachable clusters obsolete;
* **Step 2** — a cluster marked obsolete may still be reachable through a
  *valid* (not yet crossed) pass-through cluster; only when no valid support
  remains is the ride removed from the cluster's potential-ride list;
* **Step 3** — drop the crossed pass-through clusters from the ride's
  pass-through list.

:class:`~repro.index.ride_index.RideIndexEntry` stores, per reachable
cluster, the set of supporting pass-through clusters, which makes Step 2 a
set-difference.  A ride past its arrival time is removed entirely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

from ..exceptions import UnknownRideError
from .ride import Ride, RideStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import XAREngine


def track_ride(engine: "XAREngine", ride_id: int, now_s: float) -> None:
    """Advance one ride's spatio-temporal index state to ``now_s``."""
    ride = engine.rides.get(ride_id)
    if ride is None:
        raise UnknownRideError(ride_id)
    previous = engine.tracked_to.get(ride_id)
    if previous is not None and now_s < previous:
        raise ValueError(
            f"ride {ride_id}: tracking cannot move backwards "
            f"({now_s} < {previous})"
        )
    engine.tracked_to[ride_id] = now_s

    if now_s < ride.departure_s:
        return
    if now_s >= ride.arrival_s:
        _complete(engine, ride)
        return

    if (
        ride.shift_end_s is not None
        and now_s >= ride.shift_end_s
        and not ride.retired
    ):
        _retire(engine, ride)

    ride.status = RideStatus.ACTIVE
    ride.progressed_m = ride.offset_at_index(ride.index_at_time(now_s))
    apply_obsolescence(engine, ride_id, now_s)


def apply_obsolescence(engine: "XAREngine", ride_id: int, now_s: float) -> None:
    """Steps 1–3 for one ride at time ``now_s``."""
    entry = engine.ride_entries.get(ride_id)
    if entry is None:
        return
    crossed: Set[int] = {
        visit.cluster_id for visit in entry.pass_through if visit.eta_s <= now_s
    }
    if not crossed:
        return
    # Step 1 + 2: withdraw crossed supports; clusters losing all support are
    # truly obsolete and leave the potential-ride lists.
    orphaned = entry.remove_supports(crossed)
    for cluster_id in orphaned:
        engine.cluster_index.remove(cluster_id, ride_id)
    # Step 3: crossed pass-through clusters leave the pass-through list.
    entry.drop_pass_through(crossed)
    if getattr(engine, "flat_index", None) is not None:
        # Mirror the shrink: orphaned clusters lose their row; surviving
        # rows refresh their precomputed segment choice (the support set
        # the choice depends on just changed).
        engine.flat_index.refresh_supports(ride_id, entry)


def track_all(engine: "XAREngine", now_s: float) -> int:
    """Track every ride; returns how many rides completed and left the index."""
    completed = 0
    for ride_id in list(engine.rides):
        ride = engine.rides[ride_id]
        previous = engine.tracked_to.get(ride_id)
        if previous is not None and now_s < previous:
            continue  # another caller already tracked this ride further
        track_ride(engine, ride_id, now_s)
        if ride.status is RideStatus.COMPLETED:
            completed += 1
    return completed


def _retire(engine: "XAREngine", ride: Ride) -> None:
    """Driver shift ended: withdraw the ride from the search index while it
    keeps driving its committed route (strand-free drain).

    The ride stays in ``engine.rides`` until arrival so booked passengers
    still reach their drop-offs; it just stops surfacing as a match and
    ``book_ride`` refuses it.  The full index footprint — entry, cluster
    potential-ride rows, flat-index rows — goes in one step, exactly like
    completion.
    """
    ride.retired = True
    entry = engine.ride_entries.pop(ride.ride_id, None)
    if entry is not None:
        for cluster_id in entry.reachable_ids():
            engine.cluster_index.remove(cluster_id, ride.ride_id)
    engine.cluster_index.purge_ride(ride.ride_id)
    if getattr(engine, "flat_index", None) is not None:
        engine.flat_index.drop_ride(ride.ride_id)


def _complete(engine: "XAREngine", ride: Ride) -> None:
    """Remove a finished ride from every index structure."""
    ride.status = RideStatus.COMPLETED
    ride.progressed_m = ride.length_m
    entry = engine.ride_entries.pop(ride.ride_id, None)
    if entry is not None:
        for cluster_id in entry.reachable_ids():
            engine.cluster_index.remove(cluster_id, ride.ride_id)
    if getattr(engine, "flat_index", None) is not None:
        engine.flat_index.drop_ride(ride.ride_id)
    engine.rides.pop(ride.ride_id, None)
    # Drop the tracking watermark too — leaking it would grow unboundedly
    # over a long-running deployment and confuse later id reuse audits.
    engine.tracked_to.pop(ride.ride_id, None)
    engine.completed_rides[ride.ride_id] = ride
