"""XAR runtime: rides, requests, optimized search, booking, tracking.

This is the paper's primary contribution (Sections VI–VIII) on top of the
discretization substrate: the :class:`~repro.core.engine.XAREngine` exposes
``create_ride`` (O2), ``search`` (O1), ``book`` and ``track`` (O3) with the
defining property that **search never computes a shortest path** — all
spatio-temporal reasoning happens at cluster level within the ε tolerance.
"""

from .ride import PassengerRecord, Ride, RideStatus, ViaPoint
from .request import RideRequest
from .search import MatchOption
from .booking import BookingRecord, BookingRollback, CancellationRecord
from .engine import XAREngine
from .validation import EngineInvariantError, validate_engine

__all__ = [
    "EngineInvariantError",
    "validate_engine",
    "PassengerRecord",
    "Ride",
    "RideStatus",
    "ViaPoint",
    "RideRequest",
    "MatchOption",
    "BookingRecord",
    "BookingRollback",
    "CancellationRecord",
    "XAREngine",
]
