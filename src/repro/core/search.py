"""Optimized ride search (paper Section VII).

The two-step procedure, verbatim from the paper:

* **Step 1** — resolve the request's *source* grid, take its walkable
  clusters pruned to the request's walking threshold (linear scan of a
  sorted list), and for each such cluster binary-search its potential-ride
  list for rides whose ETA falls in the departure window → candidate set R1.
* **Step 2** — repeat from the *destination* → R2; the candidate set is the
  intersection R' = R1 ∩ R2.

Final checks on R': combined walking distance within the requester's limit,
combined (cluster-level) detour within the ride's remaining detour limit,
pickup strictly before drop-off, and a free seat.  **No shortest path is
computed anywhere on this path.**
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..discretization import WalkOption
from ..obs.trace import NULL_SPAN
from .request import RideRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import XAREngine


@dataclass(frozen=True)
class MatchOption:
    """One feasible ride match returned to the requester."""

    ride_id: int
    request_id: int
    #: Pickup: walk to this landmark of this cluster.
    pickup_cluster: int
    pickup_landmark: int
    walk_source_m: float
    #: Drop-off: ride leaves the requester at this landmark.
    dropoff_cluster: int
    dropoff_landmark: int
    walk_destination_m: float
    #: Estimated time the ride reaches the pickup cluster.
    eta_pickup_s: float
    eta_dropoff_s: float
    #: Cluster-level detour estimate charged to the ride (metres).
    detour_estimate_m: float

    @property
    def total_walk_m(self) -> float:
        return self.walk_source_m + self.walk_destination_m


def _build_match(
    ride_id: int,
    request_id: int,
    pickup_cluster: int,
    pickup_landmark: int,
    walk_source_m: float,
    dropoff_cluster: int,
    dropoff_landmark: int,
    walk_destination_m: float,
    eta_pickup_s: float,
    eta_dropoff_s: float,
    detour_estimate_m: float,
) -> MatchOption:
    """Build a MatchOption ~3x faster than the dataclass constructor.

    The frozen dataclass pays one guarded ``object.__setattr__`` per field;
    the flat search path builds tens of these per search, so it fills the
    instance dict directly instead.  Field set and semantics (eq/hash/repr)
    are identical — kwargs go through the same names ``__init__`` takes.
    """
    match = object.__new__(MatchOption)
    match.__dict__.update(
        ride_id=ride_id,
        request_id=request_id,
        pickup_cluster=pickup_cluster,
        pickup_landmark=pickup_landmark,
        walk_source_m=walk_source_m,
        dropoff_cluster=dropoff_cluster,
        dropoff_landmark=dropoff_landmark,
        walk_destination_m=walk_destination_m,
        eta_pickup_s=eta_pickup_s,
        eta_dropoff_s=eta_dropoff_s,
        detour_estimate_m=detour_estimate_m,
    )
    return match


#: Destination pass: probing one R1 ride's stored ETA (a by-ride bisect)
#: costs roughly this many ETA-tail scan iterations; the intersection picks
#: whichever strategy touches less.  Either strategy yields identical
#: candidates — this is purely a work bound.
_PROBE_COST_FACTOR = 2


def search_rides(
    engine: "XAREngine",
    request: RideRequest,
    k: Optional[int] = None,
    span=NULL_SPAN,
) -> List[MatchOption]:
    """Find up to ``k`` feasible matches (all of them when ``k`` is None).

    Results are sorted by total walking distance (the simulation's booking
    policy picks the least-walk option, Section X-A2), ties broken by ETA.

    Two implementations produce identical results: the flat struct-of-arrays
    core (``engine.flat_index``, the default) and the legacy per-object scan
    over the cluster index (``XAREngine(use_flat_index=False)``, kept for
    differential comparison).

    ``span`` (a tracing span or the null span) times the five stages of the
    search — each entered **exactly once** per search: **snap** (grid-cell
    resolution + walkable-cluster pruning for both endpoints),
    **cluster_lookup** (ETA-window lookup on the source side's potential-ride
    lists), **candidate_scan** (best-walk reduction into R1, then the
    destination-side R1 intersection and reduction into R2),
    **feasibility_filter** (seat/walk/order/detour validation) and
    **rank_merge** (final ordering and top-k cut).
    """
    flat = getattr(engine, "flat_index", None)
    if flat is not None:
        from ..index.flat_index import flat_search_rides

        return flat_search_rides(engine, flat, request, k, span)
    return _search_legacy(engine, request, k, span)


def _search_legacy(
    engine: "XAREngine",
    request: RideRequest,
    k: Optional[int],
    span,
) -> List[MatchOption]:
    """The original per-object two-step search over ``ClusterRideIndex``."""
    region = engine.region
    index = engine.cluster_index

    with span.stage("snap"):
        source_options = region.walkable_clusters(
            request.source, request.walk_threshold_m
        )
        destination_options = (
            region.walkable_clusters(request.destination, request.walk_threshold_m)
            if source_options
            else []
        )
    if not source_options or not destination_options:
        return []

    # Step 1: candidate rides near the source, keyed for the intersection.
    with span.stage("cluster_lookup"):
        source_lists = [
            (
                option,
                list(
                    index.rides_in_window(
                        option.cluster_id,
                        request.window_start_s,
                        request.window_end_s,
                    )
                ),
            )
            for option in source_options
        ]

    # ride id -> best (walk, WalkOption, eta) among the source clusters.
    candidates_src: Dict[int, Tuple[float, WalkOption, float]] = {}
    candidates_dst: Dict[int, Tuple[float, WalkOption, float]] = {}
    with span.stage("candidate_scan"):
        for option, potentials in source_lists:
            for potential in potentials:
                best = candidates_src.get(potential.ride_id)
                if best is None or option.walk_m < best[0]:
                    candidates_src[potential.ride_id] = (
                        option.walk_m,
                        option,
                        potential.eta_s,
                    )
        # Step 2: candidates near the destination.  The destination arrival
        # is later than the departure window by the trip duration; we accept
        # any ETA from window start onwards (drop-off has no hard deadline in
        # the paper).  Only rides already in R1 can survive the intersection,
        # so instead of scanning each destination cluster's entire ETA tail
        # we take the cheaper of (a) probing every R1 ride's stored ETA and
        # (b) the bounded tail scan — a hot cluster full of late-ETA rides no
        # longer costs O(tail).
        if candidates_src:
            window_start = request.window_start_s
            for option in destination_options:
                cluster_id = option.cluster_id
                tail = index.count_in_window(
                    cluster_id, window_start, float("inf")
                )
                if tail > _PROBE_COST_FACTOR * len(candidates_src):
                    for ride_id in candidates_src:
                        eta = index.eta(cluster_id, ride_id)
                        if eta is None or eta < window_start:
                            continue
                        best = candidates_dst.get(ride_id)
                        if best is None or option.walk_m < best[0]:
                            candidates_dst[ride_id] = (
                                option.walk_m,
                                option,
                                eta,
                            )
                else:
                    for potential in index.rides_in_window(
                        cluster_id, window_start, float("inf")
                    ):
                        if potential.ride_id not in candidates_src:
                            continue
                        best = candidates_dst.get(potential.ride_id)
                        if best is None or option.walk_m < best[0]:
                            candidates_dst[potential.ride_id] = (
                                option.walk_m,
                                option,
                                potential.eta_s,
                            )

    if not candidates_src:
        return []

    # Intersection + final validity checks.
    with span.stage("feasibility_filter"):
        matches = _filter_candidates(
            engine, request, candidates_src, candidates_dst
        )

    with span.stage("rank_merge"):
        matches.sort(key=lambda m: (m.total_walk_m, m.eta_pickup_s, m.ride_id))
        if k is not None:
            return matches[:k]
        return matches


def _filter_candidates(
    engine: "XAREngine",
    request: RideRequest,
    candidates_src: Dict[int, Tuple[float, WalkOption, float]],
    candidates_dst: Dict[int, Tuple[float, WalkOption, float]],
) -> List[MatchOption]:
    """The search's feasibility stage: R1 ∩ R2 plus the final checks."""
    region = engine.region
    matches: List[MatchOption] = []
    for ride_id, (walk_dst, option_dst, eta_dst) in candidates_dst.items():
        walk_src, option_src, eta_src = candidates_src[ride_id]
        ride = engine.rides.get(ride_id)
        entry = engine.ride_entries.get(ride_id)
        if ride is None or entry is None:
            continue
        if ride.seats_available < 1:
            continue
        # Combined walking within the requester's threshold.
        if walk_src + walk_dst > request.walk_threshold_m:
            continue
        # Pickup must happen before drop-off.
        if eta_src >= eta_dst:
            continue
        # Same cluster at both ends means no actual ride leg.
        if option_src.cluster_id == option_dst.cluster_id:
            continue
        # Combined detour within the ride's remaining budget.  The coarse
        # (cluster-level) estimate gates feasibility exactly as stored in the
        # index; the landmark-level refinement (the landmark matrix is in
        # memory — still no shortest path computed) gives the number reported
        # to the user and measured in Fig. 3a.
        info_src = entry.reachable.get(option_src.cluster_id)
        info_dst = entry.reachable.get(option_dst.cluster_id)
        if info_src is None or info_dst is None:
            continue
        coarse = info_src.detour_estimate_m + info_dst.detour_estimate_m
        # The booking back-end will splice the pickup/drop-off into specific
        # segments; estimate the detour of exactly that splice at landmark
        # level (matrix lookups only).  Falls back to the coarse estimate
        # when a segment endpoint has no landmark.
        segment_pickup = entry.segment_for(option_src.cluster_id, earliest=True)
        segment_dropoff = entry.segment_for(option_dst.cluster_id, earliest=False)
        if segment_pickup is None or segment_dropoff is None:
            continue
        if segment_dropoff < segment_pickup:
            segment_dropoff = entry.segment_for(
                option_dst.cluster_id, earliest=False, at_least=segment_pickup
            )
            if segment_dropoff is None:
                continue
        detour = _splice_estimate(
            region,
            entry,
            segment_pickup,
            segment_dropoff,
            option_src.landmark_id,
            option_dst.landmark_id,
        )
        if detour is None:
            detour = coarse
        # Gate on the best available estimate: splice-accurate when segment
        # landmarks are known, cluster-level otherwise.  Still zero shortest
        # paths — everything reads the precomputed landmark matrix.
        if detour > ride.detour_limit_m:
            continue
        matches.append(
            MatchOption(
                ride_id=ride_id,
                request_id=request.request_id,
                pickup_cluster=option_src.cluster_id,
                pickup_landmark=option_src.landmark_id,
                walk_source_m=walk_src,
                dropoff_cluster=option_dst.cluster_id,
                dropoff_landmark=option_dst.landmark_id,
                walk_destination_m=walk_dst,
                eta_pickup_s=eta_src,
                eta_dropoff_s=eta_dst,
                detour_estimate_m=detour,
            )
        )
    return matches


def _splice_estimate(
    region,
    entry,
    segment_pickup: int,
    segment_dropoff: int,
    pickup_landmark: int,
    dropoff_landmark: int,
) -> Optional[float]:
    """Landmark-level estimate of the booking splice's detour.

    Same-segment bookings splice s₁→P→D→s₂; distinct segments splice each
    independently.  ``None`` when a via-point landmark is unknown (caller
    falls back to the coarse cluster-level estimate).
    """
    if not (0 <= segment_pickup < len(entry.segments)):
        return None
    if not (0 <= segment_dropoff < len(entry.segments)):
        return None
    seg_p = entry.segments[segment_pickup]
    seg_d = entry.segments[segment_dropoff]
    if min(seg_p.start_landmark, seg_p.end_landmark,
           seg_d.start_landmark, seg_d.end_landmark) < 0:
        return None
    distance = region.landmark_matrix.distance
    if segment_pickup == segment_dropoff:
        estimate = (
            distance(seg_p.start_landmark, pickup_landmark)
            + distance(pickup_landmark, dropoff_landmark)
            + distance(dropoff_landmark, seg_p.end_landmark)
            - seg_p.length_m
        )
    else:
        estimate = (
            distance(seg_p.start_landmark, pickup_landmark)
            + distance(pickup_landmark, seg_p.end_landmark)
            - seg_p.length_m
        ) + (
            distance(seg_d.start_landmark, dropoff_landmark)
            + distance(dropoff_landmark, seg_d.end_landmark)
            - seg_d.length_m
        )
    if estimate == float("inf") or estimate != estimate:
        return None
    return max(0.0, estimate)
