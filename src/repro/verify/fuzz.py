"""Seeded op-sequence fuzzing with delta-debugging shrinking.

The generator draws request geometry from :mod:`repro.workloads`
(:func:`~repro.workloads.synthetic.uniform_workload` trips turned into a
:func:`~repro.workloads.stream.trips_to_requests` stream) and emits a
weighted create / search / book / cancel / track mix as plain,
JSON-serializable op dicts — the wire format shared by the differential
harness, the shrinker, and the regression corpus in
``tests/verify/corpus/``:

* ``{"op": "create", "handle": H, "src": [lat, lon], "dst": [lat, lon],
  "depart_s": T, "seats": S|null, "detour_limit_m": D|null}`` (optionally
  ``"shift_end_s": T`` — the driver's shift end)
* ``{"op": "search" | "book", "src": ..., "dst": ..., "window": [a, b],
  "walk_m": W, "k": K|null}`` (book adds ``"rank": R`` and optionally
  ``"max_detour_m": D`` — the passenger's personal detour budget)
* ``{"op": "cancel", "handle": H}``
* ``{"op": "cancel_booking", "handle": H, "request_id": R}`` — un-splice
  one passenger's booking; request ids are the harness's sequential
  per-search/book ordinals, so a miss (never booked there) must fail
  uniformly across façades. Weighted 0 by default.
* ``{"op": "track", "now_s": T}`` (strictly increasing within a sequence)
* ``{"op": "crash", "mode": "clean"}`` or ``{"op": "crash", "mode":
  "mid-book", ...book fields...}`` — crash-recover every durable façade
  (between ops, or inside the next booking); a no-op for runs without one.
  Weighted 0 by default so existing corpus seeds replay byte-identically.
* ``{"op": "reshard", "action": "split" | "merge", "slot_index": I}``
  (optionally ``"crash_phase": "drained" | "synced" | "carved" |
  "committed" | "swapped"``) — split or merge a slot of every
  reshard-capable façade, dying at the named phase seam when one is given
  and restarting from disk; a no-op for runs without one.  Weighted 0 by
  default.

Handles are creation ordinals — the cross-façade ride identity the harness
keys its diffs on — so any *subsequence* of a generated sequence is still a
valid sequence (cancels of never-created handles are skipped), which is
exactly the property delta debugging needs.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..discretization import DiscretizedRegion
from ..workloads import trips_to_requests
from ..workloads.synthetic import uniform_workload


@dataclass
class FuzzConfig:
    """Knobs of the op-sequence generator."""

    seed: int = 0
    n_ops: int = 200
    #: Departure-window length per request (seconds).
    window_s: float = 600.0
    #: Walk threshold per request (metres); None → the region's default.
    walk_threshold_m: Optional[float] = None
    #: Simulated span the trip times are drawn from (seconds per op).
    pace_s: float = 30.0
    #: Op mix (normalized internally).
    weights: Dict[str, float] = field(
        default_factory=lambda: {
            "create": 0.30,
            "search": 0.25,
            "book": 0.25,
            "track": 0.10,
            "cancel": 0.10,
            # Weight 0 keeps old seeds draw-compatible (a zero-width slot
            # never wins a draw and never shifts the others' cut points);
            # crash-mode fuzzing opts in by raising it.
            "crash": 0.0,
            "cancel_booking": 0.0,
            "reshard": 0.0,
        }
    )
    #: When a crash op fires, probability it strikes mid-book (inside the
    #: next booking, after the WAL record) rather than cleanly between ops.
    crash_mid_book_p: float = 0.5
    #: When a reshard op fires, probability it carries a crash phase (the
    #: façade dies at that seam and recovers from disk).
    reshard_crash_p: float = 0.5
    #: When a reshard op fires, probability it is a merge (otherwise split).
    reshard_merge_p: float = 0.25
    #: Seat counts offered rides draw from (None → engine default).
    seat_choices: Sequence[Optional[int]] = (None, 1, 2, 3)
    #: Detour budgets as fractions of the config default (None → default).
    detour_scales: Sequence[Optional[float]] = (None, None, 0.5, 1.0)
    #: Top-k cut applied to searches (None → all matches).
    k_choices: Sequence[Optional[int]] = (None, 3, 5)
    #: Per-passenger detour budgets on book ops, as fractions of the config
    #: default (None → no personal budget).  The all-None default skips the
    #: draw entirely, keeping old seeds byte-identical.
    budget_scales: Sequence[Optional[float]] = (None,)
    #: Probability an offered ride carries a driver shift end (0 keeps old
    #: seeds draw-compatible; the shift falls 0.5–2 windows past departure).
    shift_end_p: float = 0.0
    #: Probability a search/book rides the corridor of an earlier create
    #: (same endpoints, window anchored at its departure).  Uniform draws
    #: alone rarely match on small grids, leaving the booking and ε-bound
    #: diff paths untested.
    corridor_reuse_p: float = 0.5


def generate_ops(
    region: DiscretizedRegion, config: Optional[FuzzConfig] = None
) -> List[Dict[str, Any]]:
    """One seeded, self-contained op sequence over ``region``."""
    config = config or FuzzConfig()
    rng = random.Random(config.seed)
    walk = (
        config.walk_threshold_m
        if config.walk_threshold_m is not None
        else region.config.default_walk_threshold_m
    )
    # Twice the ops as trips: creates and searches each consume one request.
    trips = uniform_workload(
        region.network,
        n_trips=2 * config.n_ops + 4,
        start_s=0.0,
        end_s=config.n_ops * config.pace_s,
        seed=config.seed,
    )
    requests = trips_to_requests(trips, window_s=config.window_s,
                                 walk_threshold_m=walk)
    request_iter = iter(requests)

    ops: List[Dict[str, Any]] = []
    kinds = sorted(config.weights)
    weights = [config.weights[kind] for kind in kinds]
    next_handle = 0
    created: List[int] = []
    corridors: List[tuple] = []
    #: Request ordinals consumed so far (the harness allocates sequentially
    #: per search/book/mid-book-crash op) and the ones book ops used.
    request_counter = 0
    booked_ids: List[int] = []
    last_track = 0.0
    clock = 0.0

    def next_request():
        nonlocal clock
        request = next(request_iter)
        clock = max(clock, request.window_start_s)
        return request

    while len(ops) < config.n_ops:
        kind = rng.choices(kinds, weights)[0]
        if kind == "cancel" and not created:
            kind = "create"
        if kind == "book" and not created:
            kind = "create"
        if kind == "cancel_booking" and (not booked_ids or not created):
            kind = "create"
        if kind == "create":
            request = next_request()
            scale = rng.choice(list(config.detour_scales))
            ops.append(
                {
                    "op": "create",
                    "handle": next_handle,
                    "src": [request.source.lat, request.source.lon],
                    "dst": [request.destination.lat, request.destination.lon],
                    "depart_s": request.window_start_s,
                    "seats": rng.choice(list(config.seat_choices)),
                    "detour_limit_m": (
                        None
                        if scale is None
                        else region.config.default_detour_m * scale
                    ),
                }
            )
            if config.shift_end_p > 0 and rng.random() < config.shift_end_p:
                ops[-1]["shift_end_s"] = (
                    request.window_start_s
                    + rng.uniform(0.5, 2.0) * config.window_s
                )
            created.append(next_handle)
            corridors.append(
                (ops[-1]["src"], ops[-1]["dst"], request.window_start_s)
            )
            next_handle += 1
        elif kind in ("search", "book"):
            reuse = corridors and rng.random() < config.corridor_reuse_p
            if reuse:
                src, dst, depart = rng.choice(corridors)
                window = [depart, depart + config.window_s]
                walk_m = walk
            else:
                request = next_request()
                src = [request.source.lat, request.source.lon]
                dst = [request.destination.lat, request.destination.lon]
                window = [request.window_start_s, request.window_end_s]
                walk_m = request.walk_threshold_m
            op = {
                "op": kind,
                "src": src,
                "dst": dst,
                "window": window,
                "walk_m": walk_m,
                "k": rng.choice(list(config.k_choices)),
            }
            request_counter += 1
            if kind == "book":
                op["rank"] = rng.randrange(0, 3)
                if any(s is not None for s in config.budget_scales):
                    budget = rng.choice(list(config.budget_scales))
                    if budget is not None:
                        op["max_detour_m"] = (
                            region.config.default_detour_m * budget
                        )
                booked_ids.append(request_counter)
            ops.append(op)
        elif kind == "crash":
            if corridors and rng.random() < config.crash_mid_book_p:
                # Book-shaped: the harness delegates to its book handler
                # with the crash hook armed, so the interrupted booking is
                # diffed like any other.
                src, dst, depart = rng.choice(corridors)
                ops.append(
                    {
                        "op": "crash",
                        "mode": "mid-book",
                        "src": src,
                        "dst": dst,
                        "window": [depart, depart + config.window_s],
                        "walk_m": walk,
                        "k": rng.choice(list(config.k_choices)),
                        "rank": rng.randrange(0, 3),
                    }
                )
                request_counter += 1
            else:
                ops.append({"op": "crash", "mode": "clean"})
        elif kind == "reshard":
            op = {
                "op": "reshard",
                "action": (
                    "merge"
                    if rng.random() < config.reshard_merge_p
                    else "split"
                ),
                "slot_index": rng.randrange(0, 8),
            }
            if rng.random() < config.reshard_crash_p:
                op["crash_phase"] = rng.choice(
                    ["drained", "synced", "carved", "committed", "swapped"]
                )
            ops.append(op)
        elif kind == "cancel_booking":
            ops.append(
                {
                    "op": "cancel_booking",
                    "handle": rng.choice(created),
                    "request_id": rng.choice(booked_ids),
                }
            )
        elif kind == "cancel":
            ops.append({"op": "cancel", "handle": rng.choice(created)})
        elif kind == "track":
            # Strictly increasing so no façade's watermark coalesces a tick.
            last_track = max(last_track + 1.0, clock + rng.uniform(0.0, 600.0))
            ops.append({"op": "track", "now_s": last_track})
    return ops


# ----------------------------------------------------------------------
# Delta-debugging shrinker (classic ddmin over the op list)
# ----------------------------------------------------------------------
def shrink_ops(
    ops: Sequence[Dict[str, Any]],
    fails: Callable[[List[Dict[str, Any]]], bool],
    max_evaluations: int = 400,
) -> List[Dict[str, Any]]:
    """Minimize a failing op sequence with ddmin (Zeller's delta debugging).

    ``fails(candidate)`` must return True when the candidate sequence still
    reproduces the divergence (each call replays on fresh façades).  The
    returned sequence is 1-minimal up to the evaluation budget: removing
    any single remaining chunk of the final granularity no longer fails.
    """
    current = list(ops)
    if not fails(current):
        raise ValueError("shrink_ops needs a failing sequence to start from")
    evaluations = 0
    granularity = 2
    while len(current) >= 2 and evaluations < max_evaluations:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current) and evaluations < max_evaluations:
            candidate = current[:start] + current[start + chunk:]
            if not candidate:
                start += chunk
                continue
            evaluations += 1
            if fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # Restart the scan on the shrunk sequence.
                start = 0
                chunk = max(1, len(current) // granularity)
                continue
            start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(current), granularity * 2)
    return current


# ----------------------------------------------------------------------
# Regression corpus
# ----------------------------------------------------------------------
def save_repro(
    directory: str,
    name: str,
    *,
    seed: int,
    engines: Sequence[str],
    ops: Sequence[Dict[str, Any]],
    region_spec: Dict[str, Any],
    note: str = "",
) -> str:
    """Serialize a (shrunken) repro as a corpus JSON file; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    entry = {
        "name": name,
        "seed": seed,
        "engines": list(engines),
        "region": dict(region_spec),
        "note": note,
        "ops": list(ops),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus_entry(path: str) -> Dict[str, Any]:
    """Read one corpus JSON entry (validating the required keys)."""
    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    for key in ("name", "seed", "engines", "region", "ops"):
        if key not in entry:
            raise ValueError(f"corpus entry {path} is missing key {key!r}")
    return entry


def replay_entry(region: DiscretizedRegion, entry: Dict[str, Any]):
    """Replay one corpus entry on fresh façades; returns the report."""
    from .differential import DifferentialHarness

    harness = DifferentialHarness(
        region, engines=entry["engines"], seed=int(entry["seed"])
    )
    return harness.run(entry["ops"])
