"""Differential correctness harness (brute-force oracle + fuzzing).

``repro.verify`` turns the paper's approximation guarantee into an
executable property:

* :mod:`~repro.verify.oracle` — :class:`OracleEngine`, a deliberately naive
  engine answering every operation by brute-force scan over all rides with
  exhaustive insertion-point enumeration; the ground truth for both exact
  equivalence and the ε detour bound;
* :mod:`~repro.verify.differential` — :class:`DifferentialHarness`, which
  replays one seeded op sequence against N engine façades and diffs them
  op-by-op;
* :mod:`~repro.verify.fuzz` — the seeded op-sequence generator, the
  delta-debugging shrinker, and the JSON regression corpus.

See ``docs/verification.md`` for the full story.
"""

from .differential import (
    DifferentialHarness,
    DifferentialReport,
    Divergence,
    DurableFacade,
    FACADE_NAMES,
    make_facade,
)
from .fuzz import (
    FuzzConfig,
    generate_ops,
    load_corpus_entry,
    replay_entry,
    save_repro,
    shrink_ops,
)
from .oracle import OracleAdapter, OracleEngine, OracleOptimum

__all__ = [
    "DifferentialHarness",
    "DifferentialReport",
    "Divergence",
    "DurableFacade",
    "FACADE_NAMES",
    "FuzzConfig",
    "OracleAdapter",
    "OracleEngine",
    "OracleOptimum",
    "generate_ops",
    "load_corpus_entry",
    "make_facade",
    "replay_entry",
    "save_repro",
    "shrink_ops",
]
