"""Differential replay: one op sequence, N engine façades, op-by-op diff.

The harness drives the same seeded operation sequence through every façade
(:class:`~repro.core.engine.XAREngine`, :class:`~repro.service.ShardRouter`
at 1/2/4 shards, :class:`~repro.resilience.ResilientEngine`, and the
brute-force :class:`~repro.verify.oracle.OracleEngine`) and checks after
every operation that:

* **create** — the new ride's schedule fingerprint (route, length,
  departure, seats, detour budget, via-point labels) matches the oracle's
  verbatim;
* **search** — each façade's raw result list obeys the engine's total rank
  order ``(total walk, pickup ETA, ride id)``, the handle-normalized lists
  are *identical* across façades, and every returned match's detour
  estimate is within the ε-bound of the oracle's exhaustive optimum;
* **book** — every façade books the same-ranked match, the resulting
  :class:`~repro.core.booking.BookingRecord` fields and the post-booking
  ride fingerprints (spliced schedule, seat counts, detour budget) match
  exactly, and failures fail uniformly with the same error type;
* **cancel / track** — outcomes agree and the live/completed ride sets and
  their fingerprints stay equal;
* periodically, every underlying :class:`XAREngine` passes the
  :class:`~repro.resilience.audit.InvariantAuditor` sweep (shared with the
  resilience subsystem), so a divergence-free run is also structurally
  sound.

Ride ids are façade-local (sharded deployments allocate ids from per-shard
arithmetic lanes), so cross-façade identity uses *handles*: the creation
order of rides within the op sequence.  Normalization maps each façade's
ride ids back to handles and canonically re-sorts exact rank ties, making
list equality well-defined even when id lanes differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import os
import shutil
import tempfile

from ..batch import BatchConfig, BatchMatcher
from ..core import XAREngine
from ..core.request import RideRequest
from ..discretization import DiscretizedRegion, region_digest
from ..durability import (
    DurabilityConfig,
    DurableAdapter,
    WriteAheadLog,
    recover_engine,
)
from ..exceptions import (
    BookingError,
    ReshardError,
    WorkerCrashError,
    XARError,
)
from ..geo import GeoPoint
from ..obs import MetricsRegistry
from ..resilience import ResilienceConfig, ResilientEngine
from ..resilience.audit import InvariantAuditor
from ..service import ReshardConfig, ShardRouter
from ..sim.adapters import XARAdapter
from .oracle import OracleAdapter, OracleEngine

#: Façade names the harness understands (``shardN`` for any N >= 1).
#: ``xar`` runs the flat search core (the default engine); ``legacy`` pins
#: the pre-flat per-object search path, so a run containing both is the
#: old-vs-new search differential.
FACADE_NAMES = (
    "oracle", "xar", "legacy", "shard1", "shard2", "shard4", "resilient",
    "durable", "batch", "reshard",
)


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between a façade and the reference."""

    op_index: int
    op: Dict[str, Any]
    kind: str
    facade: str
    detail: str

    def describe(self) -> str:
        return (
            f"op[{self.op_index}] {self.op.get('op', '?')}: "
            f"[{self.kind}] {self.facade}: {self.detail}"
        )


@dataclass
class DifferentialReport:
    """Outcome of one differential replay."""

    engines: List[str]
    n_ops: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)
    searches_checked: int = 0
    bound_checks: int = 0
    max_bound_gap_m: float = 0.0
    bookings_checked: int = 0
    audits_run: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        lines = [
            f"differential replay: {self.n_ops} ops on {', '.join(self.engines)}",
            f"  ops          : "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.op_counts.items())),
            f"  searches     : {self.searches_checked} "
            f"({self.bound_checks} ε-bound checks, "
            f"max gap {self.max_bound_gap_m:.1f} m)",
            f"  bookings     : {self.bookings_checked}",
            f"  audits       : {self.audits_run}",
        ]
        if self.ok:
            lines.append("  verdict      : OK — no divergence")
        else:
            lines.append(f"  verdict      : {len(self.divergences)} DIVERGENCE(S)")
            for divergence in self.divergences[:10]:
                lines.append(f"    {divergence.describe()}")
        return "\n".join(lines)


class Facade:
    """One engine façade under test: adapter + handle bookkeeping."""

    def __init__(
        self,
        name: str,
        target: Any,
        engines: Sequence[XAREngine] = (),
        closer: Optional[Callable[[], None]] = None,
        relaxed: bool = False,
    ):
        self.name = name
        self.target = target
        #: Underlying XAR engines for the shared invariant audit (empty for
        #: the oracle, which has no cluster index to damage).
        self.xar_engines = list(engines)
        self._closer = closer
        #: Relaxed façades (the batch matcher) are held to *quality*
        #: guarantees, not schedule equality: creates must fingerprint-match,
        #: invariant audits and the ε-bound hold verbatim (against a shadow
        #: oracle over the façade's own state), but search lists, booking
        #: choices and hence later live state may legitimately differ.
        self.relaxed = relaxed
        #: handle (creation ordinal) -> this façade's ride object.
        self.rides_by_handle: Dict[int, Any] = {}
        #: this façade's ride id -> handle.
        self.handle_of_ride: Dict[int, int] = {}

    def register(self, handle: int, ride: Any) -> None:
        self.rides_by_handle[handle] = ride
        self.handle_of_ride[ride.ride_id] = handle

    def close(self) -> None:
        if self._closer is not None:
            self._closer()


class _DurableTarget:
    """A WAL-backed single engine that the harness can crash and recover.

    Implements the :class:`~repro.sim.adapters.EngineAdapter` surface over
    an :class:`XARAdapter` + :class:`DurableAdapter` stack rooted in a
    private directory.  Two crash shapes are supported:

    * :meth:`crash` — a clean between-ops crash: drop the WAL handle
      without the final fsync (as a dying process would) and rebuild the
      engine by replaying the log;
    * :meth:`arm_mid_book` — the next booking dies at the engine's
      ``book:post-snapshot`` seam, *after* its WAL record is written but
      *before* the splice mutates the ride.  :meth:`book` catches the
      resulting :class:`~repro.exceptions.WorkerCrashError`, recovers, and
      resolves the interrupted booking from the recovered engine — exactly
      the contract the service's shard failover provides.
    """

    def __init__(
        self,
        region: DiscretizedRegion,
        directory: str,
        *,
        fsync_every: int = 16,
        checkpoint_every: int = 20,
    ):
        self.region = region
        self.directory = directory
        self.fsync_every = fsync_every
        self.checkpoint_every = checkpoint_every
        self._digest = region_digest(region)
        self._wal_path = os.path.join(directory, "shard0.wal")
        self._checkpoint_path = os.path.join(directory, "shard0.ckpt")
        #: Called with the recovered engine after every recovery, before
        #: the interrupted op resolves (the façade re-points its handles).
        self.on_recovered: Optional[Callable[[XAREngine], None]] = None
        self.last_recovery = None
        self.recoveries = 0
        self._attach(XAREngine(region))

    def _attach(self, engine: XAREngine) -> None:
        wal = WriteAheadLog.open(
            self._wal_path,
            shard_id=0,
            ride_id_start=1,
            ride_id_step=1,
            region_digest=self._digest,
            fsync_every=self.fsync_every,
        )
        self.adapter = DurableAdapter(
            XARAdapter(engine),
            wal,
            checkpoint_path=self._checkpoint_path,
            checkpoint_every=self.checkpoint_every,
            digest=self._digest,
        )
        self.name = f"{self.adapter.name}+crashy"

    @property
    def engine(self) -> XAREngine:
        return self.adapter.engine

    # -- crash / recovery ------------------------------------------------
    def crash(self) -> None:
        """Kill the process between ops, then recover from disk."""
        self.engine.fault_hook = None
        self.adapter.abandon()
        self.recover()

    def arm_mid_book(self) -> None:
        """Make the next booking crash after its WAL record is durable."""
        engine = self.engine

        def hook(point: str) -> None:
            if point == "book:post-snapshot":
                engine.fault_hook = None
                raise WorkerCrashError(
                    "injected crash between snapshot and splice", mid_op=True
                )

        engine.fault_hook = hook

    def disarm(self) -> None:
        self.engine.fault_hook = None

    def recover(self):
        result = recover_engine(
            self.region, self._wal_path, self._checkpoint_path
        )
        self.last_recovery = result
        self.recoveries += 1
        self._attach(result.engine)
        if self.on_recovered is not None:
            self.on_recovered(result.engine)
        return result

    # -- EngineAdapter surface -------------------------------------------
    def create(self, source, destination, depart_s, seats=None,
               detour_limit_m=None, shift_end_s=None):
        return self.adapter.create(
            source, destination, depart_s, seats, detour_limit_m,
            shift_end_s=shift_end_s,
        )

    def search(self, request, k=None):
        return self.adapter.search(request, k)

    def book(self, request, match):
        try:
            return self.adapter.book(request, match)
        except WorkerCrashError:
            # The op record is on disk but the abort (if any) is not;
            # recovery replays the booking and lands on whichever outcome
            # the live engine would have reached.
            self.adapter.abandon()
            self.recover()
            engine = self.engine
            for record in reversed(engine.bookings):
                if record.request_id == request.request_id:
                    return record
            for rollback in reversed(engine.rollbacks):
                if rollback.request_id == request.request_id:
                    raise _exception_by_name(rollback.error)(rollback.reason)
            raise BookingError(
                f"request {request.request_id} vanished during recovery"
            )

    def cancel(self, ride) -> None:
        self.adapter.cancel(ride)

    def cancel_booking(self, request_id: int, ride_id: int):
        return self.adapter.cancel_booking(request_id, ride_id)

    def track_all(self, now_s: float) -> int:
        return self.adapter.track_all(now_s)

    def active_rides(self):
        return self.adapter.active_rides()

    def rollback_count(self) -> int:
        return self.adapter.rollback_count()

    def index_stats(self):
        return self.adapter.index_stats()

    def close(self) -> None:
        try:
            self.engine.fault_hook = None
            self.adapter.close()
        except Exception:  # noqa: BLE001 - best effort on teardown
            pass
        shutil.rmtree(self.directory, ignore_errors=True)


def _exception_by_name(name: str):
    """Resolve a rollback's recorded error class back to an exception type."""
    from .. import exceptions as _exceptions

    candidate = getattr(_exceptions, name, BookingError)
    if isinstance(candidate, type) and issubclass(candidate, XARError):
        return candidate
    return BookingError


class DurableFacade(Facade):
    """Facade whose handle maps survive crash-recovery engine swaps.

    Recovery replays the WAL into a *new* engine with new ride objects;
    ride ids are stable across replay (create records pin the allocator),
    so every handle is re-pointed at the recovered object with the same
    id.  Handles whose rides no longer exist (cancelled or completed away
    before the crash) keep their stale object — later ops on them then
    fail with the same errors the reference sees.
    """

    def __init__(self, name: str, target: _DurableTarget):
        super().__init__(
            name, target, engines=[target.engine], closer=target.close
        )
        target.on_recovered = self._on_recovered

    def _on_recovered(self, engine: XAREngine) -> None:
        self.xar_engines = [engine]
        for handle, ride in list(self.rides_by_handle.items()):
            recovered = engine.rides.get(ride.ride_id)
            if recovered is None:
                recovered = engine.completed_rides.get(ride.ride_id)
            if recovered is not None:
                self.rides_by_handle[handle] = recovered


class _ReshardTarget:
    """A reshard-enabled durable :class:`ShardRouter` the harness can split,
    merge, and SIGKILL at any phase of a split, rebuilding from disk.

    Attribute access falls through to the *current* router, so the façade's
    op surface survives every rebuild.  ``reshard(op)`` executes one
    split/merge; when the op carries a ``crash_phase``, a fault hook raises
    from that phase seam and the target simulates full process death —
    every WAL handle is abandoned without its final fsync and a fresh
    router is built from the directory, exactly the recovery a restart
    performs.  The harness then diffs the recovered live state against the
    uninterrupted reference: crash-during-split must land on either the old
    or the new topology with nothing lost, never a mix.
    """

    _PHASES = ("drained", "synced", "carved", "committed", "swapped")

    def __init__(
        self,
        region: DiscretizedRegion,
        directory: str,
        *,
        seed: int = 0,
        n_shards: int = 2,
        max_shards: int = 6,
    ):
        self.region = region
        self.directory = directory
        self.seed = seed
        self.n_shards = n_shards
        self.max_shards = max_shards
        #: Called with the new router after every rebuild (the façade
        #: re-points its handle maps and audit engine list).
        self.on_rebuilt: Optional[Callable[[ShardRouter], None]] = None
        self.reshards = 0
        self.rebuilds = 0
        self.router = self._build()

    def _build(self) -> ShardRouter:
        return ShardRouter(
            self.region,
            self.n_shards,
            fanout="all",
            queue_depth=4096,
            seed=self.seed,
            durability=DurabilityConfig(
                directory=self.directory, fsync_every=8, checkpoint_every=25
            ),
            reshard=ReshardConfig(max_shards=self.max_shards),
        )

    def __getattr__(self, name: str):
        return getattr(self.router, name)

    def kill_and_rebuild(self) -> None:
        """Simulate SIGKILL: drop every WAL handle un-fsynced, restart."""
        router = self.router
        for shard in router._active_shards():
            shard.engine.fault_hook = None
            durable = _durable_of_adapter(shard.adapter)
            if durable is not None and not durable.wal.closed:
                durable.abandon()
        router._closed = True
        for shard in router._active_shards():
            shard.worker.close()
        self.router = self._build()
        self.rebuilds += 1
        if self.on_rebuilt is not None:
            self.on_rebuilt(self.router)

    def reshard(self, op: Dict[str, Any]) -> None:
        router = self.router
        phase = op.get("crash_phase")
        hook = None
        if phase is not None:

            def hook(point: str) -> None:
                if point == phase:
                    raise WorkerCrashError(
                        f"injected process death after reshard phase {point}"
                    )

        try:
            if op.get("action") == "merge":
                pairs = router.shard_map.adjacent_pairs()
                if not pairs:
                    return
                dst, src = pairs[op.get("slot_index", 0) % len(pairs)]
                router.merge_shards(dst, src, fault_hook=hook)
            else:
                active = sorted(router.active_slot_ids())
                slot = active[op.get("slot_index", 0) % len(active)]
                router.split_shard(slot, fault_hook=hook)
            self.reshards += 1
        except WorkerCrashError:
            # The injected death: whatever the router managed in process is
            # moot — truth is on disk.  Recover like a restart would.
            self.kill_and_rebuild()
        except ReshardError:
            # Refused (lane budget spent, slot owns one cluster): a no-op,
            # uniformly — the refusal mutates nothing.
            pass

    def close(self) -> None:
        try:
            self.router.close()
        except Exception:  # noqa: BLE001 - best effort on teardown
            pass
        shutil.rmtree(self.directory, ignore_errors=True)


def _durable_of_adapter(adapter: Any) -> Optional[DurableAdapter]:
    while adapter is not None:
        if isinstance(adapter, DurableAdapter):
            return adapter
        adapter = getattr(adapter, "inner", None)
    return None


class ReshardFacade(Facade):
    """Facade whose handle maps survive splits, merges, and mid-split
    crash rebuilds.

    Every reshard recovers engines from carved checkpoints (and a rebuild
    replaces the whole fleet), so ride *objects* churn while ride ids stay
    stable — after each such event the façade re-points every handle at the
    current owner and refreshes the audit engine list.
    """

    def __init__(self, name: str, target: _ReshardTarget):
        super().__init__(name, target, closer=target.close)
        target.on_rebuilt = lambda _router: self.refresh()
        self.refresh()

    def refresh(self) -> None:
        router = self.target.router
        self.xar_engines = [
            shard.engine for shard in router._active_shards()
        ]
        for handle, ride in list(self.rides_by_handle.items()):
            for engine in self.xar_engines:
                recovered = engine.rides.get(ride.ride_id)
                if recovered is None:
                    recovered = engine.completed_rides.get(ride.ride_id)
                if recovered is not None:
                    self.rides_by_handle[handle] = recovered
                    break


def make_facade(
    name: str, region: DiscretizedRegion, seed: int = 0
) -> Facade:
    """Build one façade by name: ``oracle | xar | legacy | shardN |
    resilient | durable``."""
    if name == "oracle":
        engine = OracleEngine(region)
        return Facade(name, OracleAdapter(engine))
    if name == "xar":
        engine = XAREngine(region)
        return Facade(name, XARAdapter(engine), engines=[engine])
    if name == "legacy":
        # The pre-flat per-object search path, kept as a differential
        # reference: result lists must equal the flat core's verbatim.
        engine = XAREngine(region, use_flat_index=False)
        return Facade(name, XARAdapter(engine), engines=[engine])
    if name.startswith("shard"):
        n_shards = int(name[len("shard"):])
        # fanout="all" reproduces the single-engine ordering exactly; a
        # deep queue keeps the single-threaded replay from ever shedding.
        router = ShardRouter(
            region,
            n_shards,
            fanout="all",
            queue_depth=4096,
            seed=seed,
        )
        return Facade(
            name,
            router,
            engines=[shard.engine for shard in router.shards],
            closer=router.close,
        )
    if name == "resilient":
        engine = XAREngine(region)
        config = ResilienceConfig(seed=seed, sleep=lambda _s: None)
        return Facade(
            name,
            ResilientEngine(XARAdapter(engine), config),
            engines=[engine],
        )
    if name == "durable":
        directory = tempfile.mkdtemp(prefix="xar-differential-durable-")
        return DurableFacade(name, _DurableTarget(region, directory))
    if name == "reshard":
        directory = tempfile.mkdtemp(prefix="xar-differential-reshard-")
        return ReshardFacade(
            name, _ReshardTarget(region, directory, seed=seed)
        )
    if name == "batch":
        # window_s=0: the replay is single-threaded, so each search must
        # flush solo or the driver would deadlock waiting on its own window.
        # Multi-request windows are exercised by the batch test suite and
        # the rush-hour benchmark; here the harness checks the quality
        # contract (ε-bound, invariants, no request lost).
        engine = XAREngine(region)
        matcher = BatchMatcher(
            XARAdapter(engine), BatchConfig(window_s=0.0, max_batch=8)
        )
        return Facade(
            name, matcher, engines=[engine], closer=matcher.close,
            relaxed=True,
        )
    raise ValueError(
        f"unknown façade {name!r} (choose from {FACADE_NAMES} or shardN)"
    )


def _ride_fingerprint(ride: Any) -> Tuple:
    """Everything schedule-shaped about a ride, minus its façade-local id."""
    return (
        tuple(ride.route),
        ride.departure_s,
        ride.length_m,
        ride.seats_available,
        ride.seats_total,
        ride.detour_limit_m,
        ride.status.value,
        ride.progressed_m,
        tuple((via.node, via.route_index, via.label) for via in ride.via_points),
        getattr(ride, "retired", False),
        tuple(
            sorted(
                (p.request_id, p.max_detour_m, p.baseline_onboard_m)
                for p in getattr(ride, "passengers", {}).values()
            )
        ),
    )


def _booking_fingerprint(record: Any) -> Tuple:
    return (
        record.request_id,
        record.pickup_landmark,
        record.dropoff_landmark,
        record.walk_source_m,
        record.walk_destination_m,
        record.eta_pickup_s,
        record.eta_dropoff_s,
        record.detour_estimate_m,
        record.detour_actual_m,
        record.shortest_paths_computed,
    )


class DifferentialHarness:
    """Replays an op sequence against every façade and diffs op-by-op."""

    def __init__(
        self,
        region: DiscretizedRegion,
        engines: Sequence[str] = ("xar", "shard2"),
        seed: int = 0,
        audit_every: int = 50,
        epsilon_bound_m: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        facade_factory: Optional[
            Callable[[str, DiscretizedRegion, int], Facade]
        ] = None,
        stop_on_divergence: bool = True,
    ):
        self.region = region
        #: The oracle is always present and always the reference.
        names = list(engines)
        if "oracle" not in names:
            names.insert(0, "oracle")
        self.engine_names = names
        self.seed = seed
        self.audit_every = audit_every
        #: Additive tolerance for the search-vs-optimum detour comparison;
        #: defaults to the engine's own booking slack, 4ε (ε = 4δ).
        self.epsilon_bound_m = (
            epsilon_bound_m
            if epsilon_bound_m is not None
            else 4.0 * region.config.epsilon_m
        )
        self._facade_factory = facade_factory or make_facade
        self.stop_on_divergence = stop_on_divergence
        self._m_ops = self._m_divergences = self._m_bound = None
        if metrics is not None:
            self._m_ops = metrics.counter(
                "xar_fuzz_ops_total",
                "Differential-harness operations replayed, by op type",
                labels=("op",),
            )
            self._m_divergences = metrics.counter(
                "xar_fuzz_divergences_total",
                "Differential divergences observed, by kind",
                labels=("kind",),
            )
            self._m_bound = metrics.counter(
                "xar_fuzz_bound_checks_total",
                "Search results checked against the oracle's ε detour bound",
            )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, ops: Sequence[Dict[str, Any]]) -> DifferentialReport:
        report = DifferentialReport(engines=list(self.engine_names))
        facades = [
            self._facade_factory(name, self.region, self.seed)
            for name in self.engine_names
        ]
        reference = facades[0]
        others = facades[1:]
        self._request_id = 0
        #: Per-relaxed-façade shadow oracles (see :meth:`_shadow_oracle`).
        self._shadows: Dict[str, OracleEngine] = {}
        try:
            for op_index, op in enumerate(ops):
                kind = op.get("op")
                report.n_ops += 1
                report.op_counts[kind] = report.op_counts.get(kind, 0) + 1
                if self._m_ops is not None:
                    self._m_ops.labels(op=str(kind)).inc()
                handler = getattr(self, f"_op_{kind}", None)
                if handler is None:
                    self._diverge(
                        report, op_index, op, "bad-op", "harness",
                        f"unknown op kind {kind!r}",
                    )
                else:
                    handler(report, op_index, op, reference, others)
                if self.audit_every and (op_index + 1) % self.audit_every == 0:
                    self._audit(report, op_index, op, facades)
                if report.divergences and self.stop_on_divergence:
                    break
            if not (report.divergences and self.stop_on_divergence):
                self._audit(report, len(ops) - 1, {"op": "final-audit"}, facades)
        finally:
            for facade in facades:
                facade.close()
        return report

    def _diverge(
        self,
        report: DifferentialReport,
        op_index: int,
        op: Dict[str, Any],
        kind: str,
        facade: str,
        detail: str,
    ) -> None:
        report.divergences.append(
            Divergence(op_index=op_index, op=dict(op), kind=kind,
                       facade=facade, detail=detail)
        )
        if self._m_divergences is not None:
            self._m_divergences.labels(kind=kind).inc()

    # ------------------------------------------------------------------
    # Op handlers
    # ------------------------------------------------------------------
    def _op_create(self, report, op_index, op, reference, others) -> None:
        handle = op["handle"]
        source = GeoPoint(*op["src"])
        destination = GeoPoint(*op["dst"])
        outcomes: List[Tuple[Facade, Any, Optional[str]]] = []
        for facade in [reference] + others:
            try:
                ride = facade.target.create(
                    source,
                    destination,
                    op["depart_s"],
                    seats=op.get("seats"),
                    detour_limit_m=op.get("detour_limit_m"),
                    shift_end_s=op.get("shift_end_s"),
                )
                outcomes.append((facade, ride, None))
            except XARError as exc:
                outcomes.append((facade, None, type(exc).__name__))
        _facade, ref_ride, ref_error = outcomes[0]
        ref_print = _ride_fingerprint(ref_ride) if ref_ride is not None else None
        for facade, ride, error in outcomes:
            if error != ref_error:
                self._diverge(
                    report, op_index, op, "create-outcome", facade.name,
                    f"{error or 'ok'} vs reference {ref_error or 'ok'}",
                )
                continue
            if ride is None:
                continue
            facade.register(handle, ride)
            if _ride_fingerprint(ride) != ref_print:
                self._diverge(
                    report, op_index, op, "ride-state", facade.name,
                    f"created ride fingerprint differs for handle {handle}",
                )

    def _make_request(self, op: Dict[str, Any]) -> RideRequest:
        self._request_id += 1
        return RideRequest(
            request_id=self._request_id,
            source=GeoPoint(*op["src"]),
            destination=GeoPoint(*op["dst"]),
            window_start_s=op["window"][0],
            window_end_s=op["window"][1],
            walk_threshold_m=op["walk_m"],
            max_detour_m=op.get("max_detour_m"),
        )

    def _normalize(
        self,
        report,
        op_index,
        op,
        facade: Facade,
        matches: Sequence[Any],
    ) -> Optional[List[Tuple]]:
        """Map a façade's raw match list to a canonical handle-keyed form.

        Verifies the raw list obeys the engine's strict total rank order
        first; then replaces façade-local ride ids with handles and re-sorts
        so exact (walk, ETA) ties land in one canonical cross-façade order.
        """
        previous = None
        normalized: List[Tuple] = []
        for match in matches:
            key = (match.total_walk_m, match.eta_pickup_s, match.ride_id)
            if previous is not None and key <= previous:
                self._diverge(
                    report, op_index, op, "rank-order", facade.name,
                    f"raw results not strictly rank-ordered at {key}",
                )
                return None
            previous = key
            handle = facade.handle_of_ride.get(match.ride_id)
            if handle is None:
                self._diverge(
                    report, op_index, op, "unknown-ride", facade.name,
                    f"search returned untracked ride id {match.ride_id}",
                )
                return None
            normalized.append(
                (
                    match.walk_source_m,
                    match.walk_destination_m,
                    match.eta_pickup_s,
                    match.eta_dropoff_s,
                    match.pickup_cluster,
                    match.pickup_landmark,
                    match.dropoff_cluster,
                    match.dropoff_landmark,
                    match.detour_estimate_m,
                    handle,
                )
            )
        normalized.sort()
        return normalized

    def _run_search(
        self, report, op_index, op, reference, others
    ) -> Optional[Tuple]:
        """Shared search flow for the search and book ops.

        Returns (request, per-façade raw matches, reference normalized list,
        relaxed façades' raw matches) or None when a divergence was
        recorded.  Relaxed façades search against their *own* (divergent)
        state, so their lists are held only to the per-façade quality checks
        in :meth:`_check_relaxed_matches`, never to cross-façade equality.
        """
        request = self._make_request(op)
        k = op.get("k")
        raw: List[Tuple[Facade, List[Any]]] = []
        errors: List[Tuple[Facade, Optional[str]]] = []
        relaxed_raw: List[Tuple[Facade, List[Any]]] = []
        for facade in [reference] + others:
            if facade.relaxed:
                try:
                    matches = facade.target.search(request, k)
                except XARError:
                    continue  # façade-local refusal; its audits still run
                self._check_relaxed_matches(
                    report, op_index, op, facade, request, matches
                )
                relaxed_raw.append((facade, matches))
                continue
            try:
                raw.append((facade, facade.target.search(request, k)))
                errors.append((facade, None))
            except XARError as exc:
                raw.append((facade, []))
                errors.append((facade, type(exc).__name__))
        ref_search_error = errors[0][1]
        for facade, error in errors:
            if error != ref_search_error:
                self._diverge(
                    report, op_index, op, "search-outcome", facade.name,
                    f"{error or 'ok'} vs reference {ref_search_error or 'ok'}",
                )
                return None
        ref_normalized = self._normalize(report, op_index, op, reference, raw[0][1])
        if ref_normalized is None:
            return None
        for facade, matches in raw[1:]:
            normalized = self._normalize(report, op_index, op, facade, matches)
            if normalized is None:
                return None
            if normalized != ref_normalized:
                self._diverge(
                    report, op_index, op, "search-mismatch", facade.name,
                    f"{len(normalized)} matches vs oracle's "
                    f"{len(ref_normalized)}; first diff at rank "
                    f"{_first_diff(normalized, ref_normalized)}",
                )
                return None
        self._check_bound(report, op_index, op, reference, request, ref_normalized)
        report.searches_checked += 1
        return request, raw, ref_normalized, relaxed_raw

    def _check_bound(
        self, report, op_index, op, reference: Facade, request, normalized
    ) -> None:
        """ε-bound: every returned detour estimate is within ``epsilon_bound_m``
        of the oracle's exhaustive insertion-point optimum for that ride."""
        if not normalized:
            return
        oracle: OracleEngine = reference.target.engine
        optimum = oracle.optimum(request)
        for row in normalized:
            detour, handle = row[8], row[9]
            ride = reference.rides_by_handle.get(handle)
            best = optimum.get(ride.ride_id) if ride is not None else None
            if best is None:
                self._diverge(
                    report, op_index, op, "epsilon-bound", reference.name,
                    f"handle {handle} matched but the exhaustive scan finds "
                    f"no feasible insertion at all",
                )
                continue
            report.bound_checks += 1
            if self._m_bound is not None:
                self._m_bound.labels().inc()
            gap = detour - best.min_detour_m
            if gap > report.max_bound_gap_m:
                report.max_bound_gap_m = gap
            if detour > best.min_detour_m + self.epsilon_bound_m:
                self._diverge(
                    report, op_index, op, "epsilon-bound", reference.name,
                    f"handle {handle}: detour estimate {detour:.1f} m exceeds "
                    f"exhaustive optimum {best.min_detour_m:.1f} m by more "
                    f"than the ε-bound {self.epsilon_bound_m:.1f} m",
                )

    def _shadow_oracle(self, facade: Facade) -> OracleEngine:
        """An oracle view over a relaxed façade's *own* engine state.

        The oracle's exhaustive scan only reads ``rides`` and
        ``ride_entries`` — both built by the same ``build_ride_entry`` the
        real engine uses — so repointing those dicts at the façade's engine
        yields the exact insertion-point optimum for the state that façade's
        search actually ran against, bookings-divergence and all.
        """
        oracle = self._shadows.get(facade.name)
        if oracle is None:
            oracle = OracleEngine(self.region)
            engine = facade.xar_engines[0]
            oracle.rides = engine.rides
            oracle.ride_entries = engine.ride_entries
            self._shadows[facade.name] = oracle
        return oracle

    def _check_relaxed_matches(
        self, report, op_index, op, facade: Facade, request, matches
    ) -> None:
        """Quality gate for a relaxed façade's search answers.

        Every returned match must name a ride the harness created, and its
        detour estimate must sit within the ε-bound of the exhaustive
        optimum *for this façade's state* — rank order and list membership
        are free (the batch matcher reorders assigned-first).
        """
        if not matches:
            return
        optimum = self._shadow_oracle(facade).optimum(request)
        for match in matches:
            if match.ride_id not in facade.handle_of_ride:
                self._diverge(
                    report, op_index, op, "unknown-ride", facade.name,
                    f"search returned untracked ride id {match.ride_id}",
                )
                continue
            best = optimum.get(match.ride_id)
            if best is None:
                self._diverge(
                    report, op_index, op, "epsilon-bound", facade.name,
                    f"ride {match.ride_id} matched but the exhaustive scan "
                    f"finds no feasible insertion at all",
                )
                continue
            report.bound_checks += 1
            if self._m_bound is not None:
                self._m_bound.labels().inc()
            gap = match.detour_estimate_m - best.min_detour_m
            if gap > report.max_bound_gap_m:
                report.max_bound_gap_m = gap
            if gap > self.epsilon_bound_m:
                self._diverge(
                    report, op_index, op, "epsilon-bound", facade.name,
                    f"ride {match.ride_id}: detour estimate "
                    f"{match.detour_estimate_m:.1f} m exceeds exhaustive "
                    f"optimum {best.min_detour_m:.1f} m by more than the "
                    f"ε-bound {self.epsilon_bound_m:.1f} m",
                )

    def _op_search(self, report, op_index, op, reference, others) -> None:
        self._run_search(report, op_index, op, reference, others)

    def _op_book(self, report, op_index, op, reference, others) -> None:
        result = self._run_search(report, op_index, op, reference, others)
        if result is None:
            return
        request, raw, ref_normalized, relaxed_raw = result
        rank = op.get("rank", 0)
        # Relaxed façades book like a real client: the ranked option at
        # ``rank`` when it exists, falling through stale matches greedily.
        # No cross-façade comparison — the matcher's ledger (checked in
        # :meth:`_audit`) proves no request was lost.
        for facade, matches in relaxed_raw:
            for match in matches[rank:rank + 3]:
                try:
                    facade.target.book(request, match)
                    break
                except XARError:
                    continue
        if rank >= len(ref_normalized):
            return  # uniform no-match / rank out of range: nothing to book
        target_handle = ref_normalized[rank][9]
        outcomes: List[Tuple[Facade, Any, Optional[str]]] = []
        for facade, matches in raw:
            chosen = None
            for match in matches:
                if facade.handle_of_ride.get(match.ride_id) == target_handle:
                    chosen = match
                    break
            if chosen is None:
                self._diverge(
                    report, op_index, op, "book-target", facade.name,
                    f"handle {target_handle} absent from this façade's matches",
                )
                return
            try:
                outcomes.append((facade, facade.target.book(request, chosen), None))
            except XARError as exc:
                outcomes.append((facade, None, type(exc).__name__))
        _f, ref_record, ref_error = outcomes[0]
        ref_booking = (
            _booking_fingerprint(ref_record) if ref_record is not None else None
        )
        ref_ride_print = _ride_fingerprint(
            outcomes[0][0].rides_by_handle[target_handle]
        )
        for facade, record, error in outcomes:
            if error != ref_error:
                self._diverge(
                    report, op_index, op, "book-outcome", facade.name,
                    f"{error or 'ok'} vs reference {ref_error or 'ok'}",
                )
                continue
            if record is not None and _booking_fingerprint(record) != ref_booking:
                self._diverge(
                    report, op_index, op, "booking-record", facade.name,
                    f"booking record differs for handle {target_handle}",
                )
            post = _ride_fingerprint(facade.rides_by_handle[target_handle])
            if post != ref_ride_print:
                self._diverge(
                    report, op_index, op, "ride-state", facade.name,
                    f"post-booking schedule/seats differ for handle "
                    f"{target_handle}",
                )
        report.bookings_checked += 1

    def _op_cancel(self, report, op_index, op, reference, others) -> None:
        handle = op["handle"]
        if handle not in reference.rides_by_handle:
            return  # handle never created (e.g. its create was shrunk away)
        outcomes: List[Tuple[Facade, Optional[str]]] = []
        for facade in [reference] + others:
            ride = facade.rides_by_handle.get(handle)
            if facade.relaxed:
                # Divergent bookings shift completion times, so a relaxed
                # façade may legitimately reach a different cancel outcome.
                if ride is not None:
                    try:
                        facade.target.cancel(ride)
                    except XARError:
                        pass
                continue
            if ride is None:
                outcomes.append((facade, "missing-handle"))
                continue
            try:
                facade.target.cancel(ride)
                outcomes.append((facade, None))
            except XARError as exc:
                outcomes.append((facade, type(exc).__name__))
        ref_error = outcomes[0][1]
        for facade, error in outcomes:
            if error != ref_error:
                self._diverge(
                    report, op_index, op, "cancel-outcome", facade.name,
                    f"{error or 'ok'} vs reference {ref_error or 'ok'}",
                )

    def _op_cancel_booking(self, report, op_index, op, reference, others) -> None:
        """Cancel one passenger's booking on every façade and diff the
        un-splice: the cancellation record (route delta, budget restored,
        SPs computed) and the post-cancel ride fingerprint must match."""
        handle = op["handle"]
        request_id = op["request_id"]
        if handle not in reference.rides_by_handle:
            return
        outcomes: List[Tuple[Facade, Any, Optional[str]]] = []
        for facade in [reference] + others:
            ride = facade.rides_by_handle.get(handle)
            if facade.relaxed:
                # Divergent bookings mean the request may not be on this
                # façade's ride at all; its audits still verify the ledger.
                if ride is not None:
                    try:
                        facade.target.cancel_booking(request_id, ride.ride_id)
                    except XARError:
                        pass
                continue
            if ride is None:
                outcomes.append((facade, None, "missing-handle"))
                continue
            try:
                record = facade.target.cancel_booking(request_id, ride.ride_id)
                outcomes.append((facade, record, None))
            except XARError as exc:
                outcomes.append((facade, None, type(exc).__name__))
        _f, ref_record, ref_error = outcomes[0]
        ref_print = (
            (
                ref_record.request_id,
                ref_record.route_delta_m,
                ref_record.detour_restored_m,
                ref_record.shortest_paths_computed,
            )
            if ref_record is not None
            else None
        )
        for facade, record, error in outcomes:
            if error != ref_error:
                self._diverge(
                    report, op_index, op, "cancel-booking-outcome", facade.name,
                    f"{error or 'ok'} vs reference {ref_error or 'ok'}",
                )
                continue
            if record is None:
                continue
            this_print = (
                record.request_id,
                record.route_delta_m,
                record.detour_restored_m,
                record.shortest_paths_computed,
            )
            if this_print != ref_print:
                self._diverge(
                    report, op_index, op, "cancellation-record", facade.name,
                    f"cancellation record differs for handle {handle}",
                )
        self._compare_live_state(report, op_index, op, reference, others)

    def _op_crash(self, report, op_index, op, reference, others) -> None:
        """Crash-recover every durable façade, then diff recovered state.

        ``mode="clean"`` kills the process between ops: the WAL handle is
        dropped without a final fsync and the engine is rebuilt by replay;
        the recovered live state must equal the reference's exactly.
        ``mode="mid-book"`` kills it *inside* the next booking (the op dict
        carries the same fields as a book op), after the WAL record lands
        but before the splice — recovery must complete the booking so the
        op's outcome still matches the reference's uninterrupted one.
        """
        durables = [
            facade
            for facade in [reference] + others
            if isinstance(facade.target, _DurableTarget)
        ]
        if not durables:
            return  # no durable façade in this run: crash ops are no-ops
        if op.get("mode", "clean") == "mid-book":
            for facade in durables:
                facade.target.arm_mid_book()
            try:
                self._op_book(report, op_index, op, reference, others)
            finally:
                # A book that never reached the engine (no match / rank out
                # of range) leaves the hook armed; a later op must not trip it.
                for facade in durables:
                    facade.target.disarm()
        else:
            for facade in durables:
                facade.target.crash()
        self._compare_live_state(report, op_index, op, reference, others)

    def _op_reshard(self, report, op_index, op, reference, others) -> None:
        """Reshard every reshard-capable façade, then diff recovered state.

        The op names an action (``split`` | ``merge``), a ``slot_index``
        resolved modulo the façade's current active slots / adjacent pairs,
        and optionally a ``crash_phase`` — one of the split/merge phase
        seams; the façade then dies at that seam (WAL handles dropped
        without the final fsync) and restarts from disk.  Either way the
        façade's live state afterwards must equal the never-resharded
        reference's exactly: a reshard — even one killed halfway — is
        invisible to clients.
        """
        for facade in [reference] + others:
            if isinstance(facade.target, _ReshardTarget):
                facade.target.reshard(op)
                facade.refresh()
        self._compare_live_state(report, op_index, op, reference, others)

    def _op_track(self, report, op_index, op, reference, others) -> None:
        now_s = op["now_s"]
        counts: List[Tuple[Facade, int]] = []
        for facade in [reference] + others:
            count = facade.target.track_all(now_s)
            if not facade.relaxed:
                counts.append((facade, count))
        ref_count = counts[0][1]
        for facade, count in counts[1:]:
            if count != ref_count:
                self._diverge(
                    report, op_index, op, "track-count", facade.name,
                    f"completed {count} rides vs reference {ref_count}",
                )
        self._compare_live_state(report, op_index, op, reference, others)

    # ------------------------------------------------------------------
    # Cross-façade state comparison + shared invariant audit
    # ------------------------------------------------------------------
    def _live_state(self, facade: Facade) -> Dict[int, Tuple]:
        live = {}
        for ride in facade.target.active_rides():
            handle = facade.handle_of_ride.get(ride.ride_id)
            key = handle if handle is not None else ("raw", ride.ride_id)
            live[key] = _ride_fingerprint(ride)
        return live

    def _compare_live_state(
        self, report, op_index, op, reference, others
    ) -> None:
        ref_live = self._live_state(reference)
        for facade in others:
            if facade.relaxed:
                continue  # booking choices diverge, so live state does too
            live = self._live_state(facade)
            if set(live) != set(ref_live):
                only_here = sorted(
                    str(h) for h in set(live) - set(ref_live)
                )
                only_ref = sorted(
                    str(h) for h in set(ref_live) - set(live)
                )
                self._diverge(
                    report, op_index, op, "live-set", facade.name,
                    f"extra handles {only_here} / missing handles {only_ref}",
                )
                continue
            for handle, fingerprint in live.items():
                if fingerprint != ref_live[handle]:
                    self._diverge(
                        report, op_index, op, "ride-state", facade.name,
                        f"live ride state differs for handle {handle}",
                    )

    def _audit(self, report, op_index, op, facades: Sequence[Facade]) -> None:
        report.audits_run += 1
        for facade in facades:
            for engine in facade.xar_engines:
                audit = InvariantAuditor(engine).audit()
                if not audit.ok:
                    kinds = audit.by_kind()
                    self._diverge(
                        report, op_index, op, "invariant", facade.name,
                        f"invariant audit failed: {kinds}",
                    )
            # No-request-lost accounting for façades that keep a ledger
            # (the batch matcher): every submitted search must land in
            # exactly one terminal outcome.
            ledger_fn = getattr(facade.target, "ledger", None)
            if callable(ledger_fn):
                ledger = ledger_fn()
                accounted = sum(
                    ledger.get(key, 0)
                    for key in ("assigned", "fallback", "unmatched", "failed")
                )
                if accounted != ledger.get("submitted", 0):
                    self._diverge(
                        report, op_index, op, "request-lost", facade.name,
                        f"ledger out of balance: {ledger}",
                    )


def _first_diff(a: List[Tuple], b: List[Tuple]) -> int:
    for index, (row_a, row_b) in enumerate(zip(a, b)):
        if row_a != row_b:
            return index
    return min(len(a), len(b))
