"""The brute-force oracle engine: deliberately naive, obviously right.

:class:`OracleEngine` answers the same five operations as
:class:`~repro.core.engine.XAREngine` — create / search / book / cancel /
track — but takes none of the paper's shortcuts on the read path:

* **no spatial hash** — walk options are found by scanning *every* landmark
  of the region and keeping, per cluster, the nearest one (ties broken by
  landmark id, matching ``DiscretizedRegion._compute_walkable``);
* **no cluster index** — search scans *all* live rides, one by one, and
  checks feasibility directly against each ride's spatio-temporal entry;
* **exhaustive insertion-point enumeration** — :meth:`optimum` scores every
  (source option × destination option × supported segment pair) combination
  per ride and returns the minimum detour estimate, which is the reference
  the differential harness checks the ε-bound against.

The *write* path (create routing, the booking splice, tracking obsolescence)
reuses the exact deterministic primitives of the core engine
(:func:`~repro.roadnet.astar`, :func:`~repro.core.booking.book_ride`,
:mod:`repro.core.tracking`): those are exact computations, not
approximations, and sharing them is what makes "booked-ride schedules must
match verbatim across façades" a meaningful assertion rather than a test of
two independently-buggy route builders.  What the oracle *ground-truths* is
the approximate search path, which it re-derives from first principles.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..core.booking import (
    BookingRecord,
    BookingRollback,
    CancellationRecord,
    book_ride,
    cancel_booking_ride,
)
from ..core.reachability import build_ride_entry
from ..core.request import RideRequest
from ..core.ride import Ride
from ..core.search import MatchOption, _splice_estimate
from ..core.tracking import track_all, track_ride
from ..discretization import DiscretizedRegion, WalkOption
from ..exceptions import RideError, UnknownRideError, XARError
from ..geo import GeoPoint
from ..index import RideIndexEntry
from ..roadnet import astar


class _NullClusterIndex:
    """A cluster index that stores nothing.

    The oracle has no inverted cluster → rides index (that is the point),
    but the shared write-path helpers (transactional snapshots, tracking's
    completion sweep) call index methods on the engine they are given.  This
    stub absorbs those calls; ``eta`` always answers ``None`` so snapshots
    simply record no index footprint.
    """

    n_clusters = 0

    def add(self, cluster_id: int, ride_id: int, eta_s: float) -> None:
        pass

    def remove(self, cluster_id: int, ride_id: int) -> bool:
        return False

    def purge_ride(self, ride_id: int) -> int:
        return 0

    def eta(self, cluster_id: int, ride_id: int) -> Optional[float]:
        return None

    def total_entries(self) -> int:
        return 0


class OracleOptimum(NamedTuple):
    """Exhaustive per-ride optimum for one request."""

    ride_id: int
    #: Smallest splice detour estimate over every feasible combination.
    min_detour_m: float
    #: Smallest combined walk over every feasible combination.
    min_walk_m: float
    #: Feasible (source option, destination option, segment pair) combos.
    n_feasible: int


class OracleEngine:
    """Brute-force ground-truth engine (same operation surface as XAR)."""

    name = "Oracle"

    def __init__(
        self,
        region: DiscretizedRegion,
        detour_slack_m: Optional[float] = None,
        ride_id_start: int = 1,
        ride_id_step: int = 1,
    ):
        self.region = region
        self.rides: Dict[int, Ride] = {}
        self.completed_rides: Dict[int, Ride] = {}
        self.ride_entries: Dict[int, RideIndexEntry] = {}
        self.bookings: List[BookingRecord] = []
        self.rollbacks: List[BookingRollback] = []
        self.cancellations: List[CancellationRecord] = []
        self.tracked_to: Dict[int, float] = {}
        self.cluster_index = _NullClusterIndex()
        #: Same additive booking tolerance as the real engine (4ε default).
        self.detour_slack_m = (
            detour_slack_m
            if detour_slack_m is not None
            else 4.0 * region.config.epsilon_m
        )
        #: The shared booking splice consults these engine knobs.
        self.optimize_insertion = False
        self.router = None
        self._ride_ids = itertools.count(ride_id_start, ride_id_step)
        self._request_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Create / cancel (exact operations, shared primitives)
    # ------------------------------------------------------------------
    def create_ride(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        departure_s: float,
        detour_limit_m: Optional[float] = None,
        seats: Optional[int] = None,
        route: Optional[Sequence[int]] = None,
        driver_id: Optional[int] = None,
        shift_end_s: Optional[float] = None,
    ) -> Ride:
        config = self.region.config
        network = self.region.network
        source_node = network.snap(source)
        destination_node = network.snap(destination)
        if source_node == destination_node:
            raise RideError("ride source and destination snap to the same node")
        if route is None:
            _length, route = astar(network, source_node, destination_node)
        ride = Ride(
            ride_id=next(self._ride_ids),
            network=network,
            route=route,
            departure_s=departure_s,
            detour_limit_m=(
                detour_limit_m
                if detour_limit_m is not None
                else config.default_detour_m
            ),
            seats=seats if seats is not None else config.default_seats,
            source_point=source,
            destination_point=destination,
            driver_id=driver_id,
            shift_end_s=shift_end_s,
        )
        self.rides[ride.ride_id] = ride
        self.ride_entries[ride.ride_id] = build_ride_entry(self.region, ride)
        return ride

    def remove_ride(self, ride_id: int) -> None:
        if ride_id not in self.rides:
            raise UnknownRideError(ride_id)
        del self.rides[ride_id]
        self.ride_entries.pop(ride_id, None)
        self.tracked_to.pop(ride_id, None)

    def reindex_ride(self, ride_id: int) -> None:
        """Rebuild a ride's entry after booking changed its route."""
        ride = self.rides.get(ride_id)
        if ride is None:
            raise UnknownRideError(ride_id)
        if ride.retired:
            # A retired ride is invisible to matching; a route change (e.g.
            # a cancellation un-splice) must not resurrect its entry.
            self.ride_entries.pop(ride_id, None)
            return
        self.ride_entries[ride_id] = build_ride_entry(self.region, ride)
        tracked = self.tracked_to.get(ride_id)
        if tracked is not None and tracked > ride.departure_s:
            self._reapply_obsolescence(ride_id, tracked)

    def _reapply_obsolescence(self, ride_id: int, now_s: float) -> None:
        entry = self.ride_entries.get(ride_id)
        if entry is None:
            return
        crossed = {
            visit.cluster_id for visit in entry.pass_through if visit.eta_s <= now_s
        }
        if not crossed:
            return
        entry.remove_supports(crossed)
        entry.drop_pass_through(crossed)

    # ------------------------------------------------------------------
    # Walk options: exhaustive landmark scan (no spatial hash)
    # ------------------------------------------------------------------
    def walk_options(
        self, point: GeoPoint, max_walk_m: Optional[float] = None
    ) -> List[WalkOption]:
        """Walkable clusters of ``point``'s grid, by scanning every landmark.

        Semantics mirror
        :meth:`~repro.discretization.model.DiscretizedRegion.walkable_clusters`
        exactly — distances are measured from the grid-cell centroid, scaled
        by the walking circuity factor, capped at the system limit W and the
        request threshold, reduced to the nearest landmark per cluster (ties
        by landmark id) and sorted by (walk, cluster id) — but nothing is
        precomputed, bucketed or cached.
        """
        region = self.region
        config = region.config
        centroid = region.grid.centroid_of(region.grid.cell_of(point))
        limit = config.max_walk_m
        if max_walk_m is not None:
            limit = min(limit, max_walk_m)
        best: Dict[int, Tuple[float, int]] = {}
        for landmark in region.landmarks:
            walk = centroid.distance_to(landmark.position) * config.walk_circuity
            if walk > limit:
                continue
            cluster_id = region.cluster_of_landmark(landmark.landmark_id)
            current = best.get(cluster_id)
            if current is None or (walk, landmark.landmark_id) < current:
                best[cluster_id] = (walk, landmark.landmark_id)
        options = [
            WalkOption(cluster_id=cid, walk_m=walk, landmark_id=lid)
            for cid, (walk, lid) in best.items()
        ]
        options.sort(key=lambda option: (option.walk_m, option.cluster_id))
        return options

    # ------------------------------------------------------------------
    # Search: brute-force scan over all rides
    # ------------------------------------------------------------------
    def make_request(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        window_start_s: float,
        window_end_s: float,
        walk_threshold_m: Optional[float] = None,
    ) -> RideRequest:
        return RideRequest(
            request_id=next(self._request_ids),
            source=source,
            destination=destination,
            window_start_s=window_start_s,
            window_end_s=window_end_s,
            walk_threshold_m=(
                walk_threshold_m
                if walk_threshold_m is not None
                else self.region.config.default_walk_threshold_m
            ),
        )

    def search(
        self, request: RideRequest, k: Optional[int] = None
    ) -> List[MatchOption]:
        """Scan every live ride; no index, no pruning, no early exit."""
        source_options = self.walk_options(request.source, request.walk_threshold_m)
        if not source_options:
            return []
        destination_options = self.walk_options(
            request.destination, request.walk_threshold_m
        )
        if not destination_options:
            return []
        matches: List[MatchOption] = []
        for ride_id in sorted(self.rides):
            match = self._match_ride(
                request, ride_id, source_options, destination_options
            )
            if match is not None:
                matches.append(match)
        matches.sort(key=lambda m: (m.total_walk_m, m.eta_pickup_s, m.ride_id))
        if k is not None:
            return matches[:k]
        return matches

    def _match_ride(
        self,
        request: RideRequest,
        ride_id: int,
        source_options: List[WalkOption],
        destination_options: List[WalkOption],
    ) -> Optional[MatchOption]:
        """One ride's match under the engine's greedy option policy.

        The option policy (least-walk cluster at each end, earliest-pickup /
        latest-drop-off segments) is re-derived here from the ride's entry
        alone; the feasibility gates mirror the paper's Section VII checks.
        """
        ride = self.rides.get(ride_id)
        entry = self.ride_entries.get(ride_id)
        if ride is None or entry is None:
            return None
        best_src: Optional[Tuple[WalkOption, float]] = None
        for option in source_options:
            info = entry.reachable.get(option.cluster_id)
            if info is None:
                continue
            if not (request.window_start_s <= info.eta_s <= request.window_end_s):
                continue
            if best_src is None or option.walk_m < best_src[0].walk_m:
                best_src = (option, info.eta_s)
        if best_src is None:
            return None
        best_dst: Optional[Tuple[WalkOption, float]] = None
        for option in destination_options:
            info = entry.reachable.get(option.cluster_id)
            if info is None:
                continue
            if info.eta_s < request.window_start_s:
                continue
            if best_dst is None or option.walk_m < best_dst[0].walk_m:
                best_dst = (option, info.eta_s)
        if best_dst is None:
            return None

        (option_src, eta_src), (option_dst, eta_dst) = best_src, best_dst
        if ride.seats_available < 1:
            return None
        if option_src.walk_m + option_dst.walk_m > request.walk_threshold_m:
            return None
        if eta_src >= eta_dst:
            return None
        if option_src.cluster_id == option_dst.cluster_id:
            return None
        info_src = entry.reachable.get(option_src.cluster_id)
        info_dst = entry.reachable.get(option_dst.cluster_id)
        if info_src is None or info_dst is None:
            return None
        detour = self._pair_detour(
            entry,
            option_src,
            option_dst,
            coarse=info_src.detour_estimate_m + info_dst.detour_estimate_m,
        )
        if detour is None or detour > ride.detour_limit_m:
            return None
        return MatchOption(
            ride_id=ride_id,
            request_id=request.request_id,
            pickup_cluster=option_src.cluster_id,
            pickup_landmark=option_src.landmark_id,
            walk_source_m=option_src.walk_m,
            dropoff_cluster=option_dst.cluster_id,
            dropoff_landmark=option_dst.landmark_id,
            walk_destination_m=option_dst.walk_m,
            eta_pickup_s=eta_src,
            eta_dropoff_s=eta_dst,
            detour_estimate_m=detour,
        )

    def _pair_detour(
        self,
        entry: RideIndexEntry,
        option_src: WalkOption,
        option_dst: WalkOption,
        coarse: float,
    ) -> Optional[float]:
        """Splice detour estimate for one (pickup, drop-off) option pair,
        using the engine's greedy segment choice.  ``None`` == infeasible."""
        segment_pickup = entry.segment_for(option_src.cluster_id, earliest=True)
        segment_dropoff = entry.segment_for(option_dst.cluster_id, earliest=False)
        if segment_pickup is None or segment_dropoff is None:
            return None
        if segment_dropoff < segment_pickup:
            segment_dropoff = entry.segment_for(
                option_dst.cluster_id, earliest=False, at_least=segment_pickup
            )
            if segment_dropoff is None:
                return None
        detour = _splice_estimate(
            self.region,
            entry,
            segment_pickup,
            segment_dropoff,
            option_src.landmark_id,
            option_dst.landmark_id,
        )
        if detour is None:
            detour = coarse
        return detour

    # ------------------------------------------------------------------
    # Exhaustive optimum (the ε-bound reference)
    # ------------------------------------------------------------------
    def optimum(self, request: RideRequest) -> Dict[int, OracleOptimum]:
        """Exhaustive insertion-point enumeration, per live ride.

        For every ride, every (source option × destination option) pair
        passing the request's feasibility gates is scored with every
        supported (pickup segment ≤ drop-off segment) splice; the minimum
        detour estimate per ride is the reference value the differential
        harness holds every façade's search answers against:

            match.detour_estimate_m  ≤  optimum.min_detour_m + ε-bound.
        """
        source_options = self.walk_options(request.source, request.walk_threshold_m)
        destination_options = self.walk_options(
            request.destination, request.walk_threshold_m
        )
        out: Dict[int, OracleOptimum] = {}
        if not source_options or not destination_options:
            return out
        for ride_id in sorted(self.rides):
            ride = self.rides[ride_id]
            entry = self.ride_entries.get(ride_id)
            if entry is None or ride.seats_available < 1:
                continue
            best_detour = float("inf")
            best_walk = float("inf")
            feasible = 0
            for option_src in source_options:
                info_src = entry.reachable.get(option_src.cluster_id)
                if info_src is None:
                    continue
                if not (
                    request.window_start_s
                    <= info_src.eta_s
                    <= request.window_end_s
                ):
                    continue
                for option_dst in destination_options:
                    info_dst = entry.reachable.get(option_dst.cluster_id)
                    if info_dst is None:
                        continue
                    if info_dst.eta_s < request.window_start_s:
                        continue
                    if info_src.eta_s >= info_dst.eta_s:
                        continue
                    if option_src.cluster_id == option_dst.cluster_id:
                        continue
                    walk = option_src.walk_m + option_dst.walk_m
                    if walk > request.walk_threshold_m:
                        continue
                    detour = self._best_splice(
                        entry,
                        option_src,
                        option_dst,
                        coarse=info_src.detour_estimate_m
                        + info_dst.detour_estimate_m,
                    )
                    if detour is None or detour > ride.detour_limit_m:
                        continue
                    feasible += 1
                    if detour < best_detour:
                        best_detour = detour
                    if walk < best_walk:
                        best_walk = walk
            if feasible:
                out[ride_id] = OracleOptimum(
                    ride_id=ride_id,
                    min_detour_m=best_detour,
                    min_walk_m=best_walk,
                    n_feasible=feasible,
                )
        return out

    def _best_splice(
        self,
        entry: RideIndexEntry,
        option_src: WalkOption,
        option_dst: WalkOption,
        coarse: float,
    ) -> Optional[float]:
        """Minimum splice estimate over *every* ordered segment pair."""
        info_src = entry.reachable.get(option_src.cluster_id)
        info_dst = entry.reachable.get(option_dst.cluster_id)
        if info_src is None or info_dst is None:
            return None
        pickup_segments = sorted(
            {
                visit.segment_index
                for visit in entry.pass_through
                if visit.cluster_id in info_src.supports
            }
        )
        dropoff_segments = sorted(
            {
                visit.segment_index
                for visit in entry.pass_through
                if visit.cluster_id in info_dst.supports
            }
        )
        best: Optional[float] = None
        for sp in pickup_segments:
            for sd in dropoff_segments:
                if sd < sp:
                    continue
                estimate = _splice_estimate(
                    self.region,
                    entry,
                    sp,
                    sd,
                    option_src.landmark_id,
                    option_dst.landmark_id,
                )
                if estimate is None:
                    estimate = coarse
                if best is None or estimate < best:
                    best = estimate
        return best

    # ------------------------------------------------------------------
    # Book / track (shared exact write path, transactional)
    # ------------------------------------------------------------------
    def book(self, request: RideRequest, match: MatchOption) -> BookingRecord:
        """Transactional booking, identical rollback semantics to XAR."""
        from ..resilience.snapshot import restore_ride, snapshot_ride

        snapshot = snapshot_ride(self, match.ride_id)
        try:
            return book_ride(self, request, match)
        except XARError as exc:
            if snapshot is not None:
                restore_ride(self, snapshot)
            self.rollbacks.append(
                BookingRollback(
                    request_id=request.request_id,
                    ride_id=match.ride_id,
                    error=type(exc).__name__,
                    reason=str(exc),
                )
            )
            raise

    def cancel_booking(self, request_id: int, ride_id: int) -> CancellationRecord:
        """Transactional booking cancellation, identical to XAR's."""
        from ..resilience.snapshot import restore_ride, snapshot_ride

        snapshot = snapshot_ride(self, ride_id)
        try:
            return cancel_booking_ride(self, request_id, ride_id)
        except XARError:
            if snapshot is not None:
                restore_ride(self, snapshot)
            raise

    def track(self, ride_id: int, now_s: float) -> None:
        track_ride(self, ride_id, now_s)

    def track_all(self, now_s: float) -> int:
        return track_all(self, now_s)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_active_rides(self) -> int:
        return len(self.rides)

    def driver_of(self, ride_id: int) -> Optional[int]:
        ride = self.rides.get(ride_id)
        return ride.driver_id if ride is not None else None

    def index_stats(self) -> Dict[str, int]:
        return {
            "rides": len(self.rides),
            "completed_rides": len(self.completed_rides),
            "cluster_entries": 0,
            "pass_through_total": sum(
                len(entry.pass_through) for entry in self.ride_entries.values()
            ),
            "reachable_total": sum(
                len(entry.reachable) for entry in self.ride_entries.values()
            ),
        }


class OracleAdapter:
    """EngineAdapter façade over :class:`OracleEngine`."""

    name = "Oracle"

    def __init__(self, engine: OracleEngine):
        self.engine = engine

    def create(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
        shift_end_s: Optional[float] = None,
    ):
        return self.engine.create_ride(
            source,
            destination,
            departure_s=depart_s,
            seats=seats,
            detour_limit_m=detour_limit_m,
            shift_end_s=shift_end_s,
        )

    def search(self, request: RideRequest, k: Optional[int] = None):
        return self.engine.search(request, k)

    def book(self, request: RideRequest, match):
        return self.engine.book(request, match)

    def track_all(self, now_s: float) -> int:
        return self.engine.track_all(now_s)

    def cancel(self, ride) -> None:
        self.engine.remove_ride(ride.ride_id)

    def cancel_booking(self, request_id: int, ride_id: int):
        return self.engine.cancel_booking(request_id, ride_id)

    def active_rides(self):
        return list(self.engine.rides.values())

    def rollback_count(self) -> int:
        return len(self.engine.rollbacks)

    def index_stats(self) -> Dict[str, int]:
        return self.engine.index_stats()
