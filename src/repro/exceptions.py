"""Exception hierarchy for the XAR reproduction.

Every error raised by this library derives from :class:`XARError` so callers
can catch library failures with a single except clause while letting
programming errors (TypeError, etc.) propagate.
"""

from __future__ import annotations


class XARError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(XARError):
    """A system parameter is missing, inconsistent, or out of range."""


class RoadNetworkError(XARError):
    """The road network is malformed or a routing query cannot be served."""


class NoPathError(RoadNetworkError):
    """No path exists between the requested endpoints."""

    def __init__(self, source: int, target: int):
        super().__init__(f"no path from node {source} to node {target}")
        self.source = source
        self.target = target


class DiscretizationError(XARError):
    """Region discretization failed (e.g. no landmarks, bad parameters)."""


class UncoveredLocationError(DiscretizationError):
    """A location maps to no landmark and no walkable cluster.

    The paper's semantics: such a request "will not be served" (Section IV).
    """


class RideError(XARError):
    """A ride operation (create / book / track) is invalid."""


class UnknownRideError(RideError):
    """A ride id does not exist in the engine."""

    def __init__(self, ride_id: int):
        super().__init__(f"unknown ride id {ride_id}")
        self.ride_id = ride_id


class BookingError(RideError):
    """A booking cannot be completed (no seats, detour exhausted, ...)."""


class RequestError(XARError):
    """A ride request is malformed (bad window, negative thresholds, ...)."""


class ResilienceError(XARError):
    """Base class for the fault-tolerant runtime's own failures."""


class TransientFaultError(ResilienceError):
    """A transient infrastructure fault (injected or real); safe to retry."""


class DeadlineExceededError(ResilienceError):
    """An operation ran past its per-operation deadline."""

    def __init__(self, operation: str, elapsed_s: float, deadline_s: float):
        super().__init__(
            f"{operation} took {elapsed_s * 1000:.1f} ms "
            f"(deadline {deadline_s * 1000:.1f} ms)"
        )
        self.operation = operation
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s


class CircuitOpenError(ResilienceError):
    """The circuit breaker is open; the operation was short-circuited."""

    def __init__(self, operation: str):
        super().__init__(f"circuit open: {operation} short-circuited")
        self.operation = operation


class PlannerError(XARError):
    """The multi-modal trip planner cannot produce a plan."""


class ServiceError(XARError):
    """Base class for the sharded serving layer's own failures."""


class ShardOverloadError(ServiceError):
    """A shard's bounded request queue is full; the operation was shed.

    Admission control, not a crash: the caller may retry later or count the
    response against the shed-rate SLO.
    """

    def __init__(self, shard_id: int, operation: str):
        super().__init__(
            f"shard {shard_id} queue full: {operation} shed by admission control"
        )
        self.shard_id = shard_id
        self.operation = operation


class ServiceClosedError(ServiceError):
    """An operation was submitted to a service that has been shut down."""


class ReshardError(ServiceError):
    """An elastic-resharding action (split / merge) cannot proceed.

    Raised for precondition failures — resharding disabled, the slot is
    inactive, too few clusters to carve, the ride-id lane budget is
    exhausted — and as the wrapper for failures inside the migration
    itself (the original exception rides along as ``__cause__``).  A
    pre-commit failure leaves the old topology live; a post-commit failure
    rolls forward to the new one — either way the routing table the caller
    sees afterwards matches what a process restart would recover.
    """


class ShardQuarantinedError(ShardOverloadError):
    """A shard blew through its restart budget and is circuit-broken.

    Deliberately a subclass of :class:`ShardOverloadError`: every caller
    that already knows how to serve around a shedding shard — the router's
    partial-search degradation, the load generator's shed accounting, the
    gateway's 503 mapping — handles a quarantined shard the same way,
    without new code.  The supervisor lifts the quarantine after a cooldown
    by allowing a single probe restart.
    """

    def __init__(self, shard_id: int, operation: str):
        ServiceError.__init__(
            self,
            f"shard {shard_id} is quarantined (repeated crashes): "
            f"{operation} refused until the cooldown expires",
        )
        self.shard_id = shard_id
        self.operation = operation


class RpcError(ServiceError):
    """Base class for the process-shard RPC layer's own failures."""


class RpcProtocolError(RpcError):
    """A peer sent a structurally invalid frame (bad CRC, bad JSON, wrong
    id).  The connection cannot be trusted afterwards and is torn down."""


class RpcTransportError(RpcError):
    """The RPC connection died mid-call (EOF, reset, timeout).

    ``request_sent`` distinguishes a call that may have reached the shard
    (the request hit the socket before the failure — the op may be in the
    shard's WAL, so only idempotent calls may retry) from one that never
    left this process (always safe to retry).
    """

    def __init__(self, message: str, request_sent: bool = False):
        super().__init__(message)
        self.request_sent = request_sent


class DurabilityError(XARError):
    """Base class for write-ahead-log / checkpoint / recovery failures."""


class WALCorruptionError(DurabilityError):
    """A WAL frame is structurally invalid *before* the torn tail.

    Torn tails (an incomplete or CRC-failing final frame) are expected after
    a crash and are truncated silently; corruption in the middle of the log
    means the file was damaged and recovery cannot trust anything after it.
    """


class CheckpointError(DurabilityError):
    """A checkpoint file cannot be used (bad format, version, or digest).

    Raised in particular when the checkpoint's region digest does not match
    the discretization build it is being restored against: replaying ops
    over a different cluster geometry would silently diverge, so a stale
    checkpoint is rejected outright.
    """


class RecoveryError(DurabilityError):
    """Crash recovery cannot proceed (e.g. WAL written for another region)."""


class ScenarioError(XARError):
    """A scenario spec is malformed or references unknown components."""


class WorkerCrashError(Exception):
    """An injected (or real) worker-process death.

    Deliberately **not** an :class:`XARError`: a crash must rip through every
    layer that swallows or retries library errors — the engine's transactional
    ``book`` rollback, the resilient runtime's retry loop, the load
    generator's per-op handlers — exactly like a process death would.  Only
    the service's failover supervisor is allowed to handle it.

    ``mid_op`` distinguishes a crash that interrupted an executing operation
    (which may already be in the WAL and must NOT be retried — recovery
    replays it) from a crash detected at submission time (the operation never
    started and is safe to re-route to the recovered worker).
    """

    def __init__(self, message: str, mid_op: bool = False):
        super().__init__(message)
        self.mid_op = mid_op
