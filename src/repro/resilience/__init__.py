"""Fault-tolerant runtime for the XAR engine.

Production traffic breaks in ways the paper's clean replay never exercises:
routers time out, drivers cancel mid-ride, GPS tracking drops out, bookings
race seat exhaustion, and index entries get lost.  This package adds the
resilience layer:

* :mod:`~repro.resilience.snapshot` — ride-state snapshots powering
  transactional booking (a failed ``book()`` is a byte-identical no-op);
* :class:`ResilientEngine` — an ``EngineAdapter`` façade with per-operation
  deadlines, bounded retry with backoff + jitter, circuit breaking, and
  tiered degradation (optimized search → grid scan → create-on-miss);
* :class:`InvariantAuditor` — a non-raising invariant sweep with self-healing
  re-indexing, run on a cadence by the simulator and exposed via the CLI.

Fault *injection* lives with the simulator (:mod:`repro.sim.faults`); this
package is the machinery that survives those faults.
"""

from .audit import AuditReport, AuditViolation, InvariantAuditor
from .fallback import grid_scan_search
from .runtime import (
    TRANSIENT_ERRORS,
    CircuitBreaker,
    ResilienceConfig,
    ResilienceStats,
    ResilientEngine,
    RetryPolicy,
)
from .snapshot import RideSnapshot, diff_ride, restore_ride, snapshot_ride

__all__ = [
    "AuditReport",
    "AuditViolation",
    "InvariantAuditor",
    "grid_scan_search",
    "TRANSIENT_ERRORS",
    "CircuitBreaker",
    "ResilienceConfig",
    "ResilienceStats",
    "ResilientEngine",
    "RetryPolicy",
    "RideSnapshot",
    "diff_ride",
    "restore_ride",
    "snapshot_ride",
]
