"""Invariant auditor: sweep the engine, report violations, self-heal.

Where :func:`repro.core.validation.validate_engine` raises on the *first*
broken invariant (a test-suite assertion), the auditor is the production
tool: it collects *every* violation into an :class:`AuditReport` without
raising, and :meth:`InvariantAuditor.heal` repairs what it found by
re-deriving each implicated ride's index footprint from first principles
(:func:`repro.core.reachability.build_ride_entry` via
``XAREngine.reindex_ride``) and purging entries that belong to no live ride.

Invariants swept:

* ``seats_available`` within ``[0, seats_total]`` and one pickup via-point
  per consumed seat;
* ``detour_limit_m`` ≥ 0;
* every ``ride_entries`` record belongs to a live ride and every live ride
  has a record;
* every reachable cluster of every entry appears in ``cluster_index``
  (missing == *lost* entry: the ride is invisible there) and vice versa
  (extra == *ghost* entry: a dead or re-routed ride still discoverable);
* every reachable cluster keeps at least one supporting pass-through
  cluster that is still on the ride's pass-through list;
* the cluster index's dual sort orders agree;
* the flat search core (when enabled) strictly mirrors the cluster index
  and the live rides' seat/detour budgets.

The simulator runs the sweep on a cadence (``SimulatorConfig.audit_every_s``)
and the CLI exposes it through ``xar simulate --audit-every``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from .snapshot import RideSnapshot, diff_ride, snapshot_ride

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.engine import XAREngine


@dataclass(frozen=True)
class AuditViolation:
    """One broken invariant, localized to a ride and/or cluster."""

    kind: str
    detail: str
    ride_id: Optional[int] = None
    cluster_id: Optional[int] = None


@dataclass
class AuditReport:
    """Outcome of one full sweep."""

    violations: List[AuditViolation] = field(default_factory=list)
    rides_checked: int = 0
    entries_checked: int = 0
    clusters_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.kind] = counts.get(violation.kind, 0) + 1
        return counts

    def describe(self) -> str:
        if self.ok:
            return (
                f"audit ok: {self.rides_checked} rides, "
                f"{self.clusters_checked} clusters clean"
            )
        lines = [f"audit found {len(self.violations)} violation(s):"]
        for violation in self.violations[:20]:
            lines.append(f"  [{violation.kind}] {violation.detail}")
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)


class InvariantAuditor:
    """Sweeps one :class:`XAREngine` for structural damage and repairs it."""

    def __init__(self, engine: "XAREngine"):
        self.engine = engine
        self.sweeps = 0
        self.violations_found = 0
        self.heals = 0

    def _engine_lock(self):
        """The engine's state lock, so sweeps never race in-flight ops."""
        return getattr(self.engine, "lock", None) or contextlib.nullcontext()

    # ------------------------------------------------------------------
    # Sweep
    # ------------------------------------------------------------------
    def audit(self) -> AuditReport:
        """Full non-raising sweep; every violation is collected."""
        with self._engine_lock():
            return self._audit_locked()

    def _audit_locked(self) -> AuditReport:
        engine = self.engine
        report = AuditReport()
        self.sweeps += 1

        try:
            engine.cluster_index.check_consistency()
        except AssertionError as exc:
            report.violations.append(
                AuditViolation(kind="dual-list-divergence", detail=str(exc))
            )

        # The flat search core must be a strict mirror of the cluster index
        # and the live rides' seat/detour budgets.
        if getattr(engine, "flat_index", None) is not None:
            for ride_id, detail in engine.flat_index.divergences(engine):
                report.violations.append(
                    AuditViolation(
                        kind="flat-index-divergence",
                        detail=detail,
                        ride_id=ride_id,
                    )
                )

        # ride_entries <-> rides, entry internals, entry -> cluster_index.
        for ride_id, entry in list(engine.ride_entries.items()):
            report.entries_checked += 1
            if ride_id not in engine.rides:
                report.violations.append(
                    AuditViolation(
                        kind="entry-for-dead-ride",
                        detail=f"index entry for dead ride {ride_id}",
                        ride_id=ride_id,
                    )
                )
                continue
            pass_ids = entry.pass_through_ids()
            for cluster_id, info in entry.reachable.items():
                if not info.supports or not info.supports <= pass_ids:
                    report.violations.append(
                        AuditViolation(
                            kind="unsupported-reachable",
                            detail=(
                                f"ride {ride_id}: cluster {cluster_id} has "
                                f"invalid supports {sorted(info.supports)}"
                            ),
                            ride_id=ride_id,
                            cluster_id=cluster_id,
                        )
                    )
                if engine.cluster_index.eta(cluster_id, ride_id) is None:
                    report.violations.append(
                        AuditViolation(
                            kind="lost-index-entry",
                            detail=(
                                f"ride {ride_id}: reachable cluster "
                                f"{cluster_id} missing from the cluster index"
                            ),
                            ride_id=ride_id,
                            cluster_id=cluster_id,
                        )
                    )

        for ride_id, ride in engine.rides.items():
            if ride.retired:
                # Retired rides drain outside the index by design; one that
                # still *has* an entry is the violation.
                if ride_id in engine.ride_entries:
                    report.violations.append(
                        AuditViolation(
                            kind="indexed-retired-ride",
                            detail=f"retired ride {ride_id} still indexed",
                            ride_id=ride_id,
                        )
                    )
                continue
            if ride_id not in engine.ride_entries:
                report.violations.append(
                    AuditViolation(
                        kind="unindexed-ride",
                        detail=f"live ride {ride_id} has no index entry",
                        ride_id=ride_id,
                    )
                )

        # cluster_index -> ride_entries (ghost entries).
        for cluster_id in range(engine.cluster_index.n_clusters):
            report.clusters_checked += 1
            for potential in list(engine.cluster_index.all_rides(cluster_id)):
                entry = engine.ride_entries.get(potential.ride_id)
                if entry is None or cluster_id not in entry.reachable:
                    report.violations.append(
                        AuditViolation(
                            kind="ghost-index-entry",
                            detail=(
                                f"cluster {cluster_id} lists ride "
                                f"{potential.ride_id} which does not reach it"
                            ),
                            ride_id=potential.ride_id,
                            cluster_id=cluster_id,
                        )
                    )

        # Per-ride accounting.
        for ride in engine.rides.values():
            report.rides_checked += 1
            if not (0 <= ride.seats_available <= ride.seats_total):
                report.violations.append(
                    AuditViolation(
                        kind="seats-out-of-range",
                        detail=(
                            f"ride {ride.ride_id}: seats "
                            f"{ride.seats_available}/{ride.seats_total}"
                        ),
                        ride_id=ride.ride_id,
                    )
                )
            consumed = ride.seats_total - ride.seats_available
            pickups = sum(1 for via in ride.via_points if via.label == "pickup")
            if pickups != consumed:
                report.violations.append(
                    AuditViolation(
                        kind="seat-via-mismatch",
                        detail=(
                            f"ride {ride.ride_id}: {pickups} pickup via-points "
                            f"vs {consumed} seats consumed"
                        ),
                        ride_id=ride.ride_id,
                    )
                )
            if ride.detour_limit_m < 0:
                report.violations.append(
                    AuditViolation(
                        kind="negative-detour-budget",
                        detail=f"ride {ride.ride_id}: negative detour budget",
                        ride_id=ride.ride_id,
                    )
                )
            # Per-passenger budgets (high-capacity pooling): every record
            # must point at a live pickup/dropoff via pair and stay within
            # its own declared detour budget.
            for record in ride.passengers.values():
                try:
                    consumed = ride.passenger_consumed_m(record.request_id)
                except Exception as exc:
                    report.violations.append(
                        AuditViolation(
                            kind="passenger-via-mismatch",
                            detail=(
                                f"ride {ride.ride_id}: passenger "
                                f"{record.request_id} record without "
                                f"via-points ({exc})"
                            ),
                            ride_id=ride.ride_id,
                        )
                    )
                    continue
                if (
                    record.max_detour_m is not None
                    and consumed > record.max_detour_m
                ):
                    report.violations.append(
                        AuditViolation(
                            kind="passenger-budget-exceeded",
                            detail=(
                                f"ride {ride.ride_id}: passenger "
                                f"{record.request_id} consumed "
                                f"{consumed:.1f} m over their "
                                f"{record.max_detour_m:.1f} m budget"
                            ),
                            ride_id=ride.ride_id,
                        )
                    )

        self.violations_found += len(report.violations)
        return report

    # ------------------------------------------------------------------
    # Self-healing
    # ------------------------------------------------------------------
    def heal(self, report: Optional[AuditReport] = None) -> int:
        """Repair index damage found by a sweep; returns repair actions.

        Index-shaped violations (lost/ghost/unsupported entries, missing
        records) are repaired by purging dead footprints and re-indexing the
        implicated rides from their current routes.  Accounting violations
        (seats, budgets) are *reported but not invented away* — there is no
        safe way to conjure a seat back, so they are left for the operator.
        """
        engine = self.engine
        if report is None:
            report = self.audit()
        with self._engine_lock():
            return self._heal_locked(engine, report)

    def _heal_locked(self, engine: "XAREngine", report: AuditReport) -> int:
        actions = 0
        reindex: set = set()
        for violation in report.violations:
            if violation.kind in ("entry-for-dead-ride", "indexed-retired-ride"):
                engine.ride_entries.pop(violation.ride_id, None)
                engine.cluster_index.purge_ride(violation.ride_id)
                if getattr(engine, "flat_index", None) is not None:
                    engine.flat_index.drop_ride(violation.ride_id)
                actions += 1
            elif violation.kind == "ghost-index-entry":
                if violation.ride_id not in engine.rides:
                    engine.cluster_index.purge_ride(violation.ride_id)
                    if getattr(engine, "flat_index", None) is not None:
                        engine.flat_index.drop_ride(violation.ride_id)
                    actions += 1
                else:
                    reindex.add(violation.ride_id)
            elif violation.kind == "flat-index-divergence":
                if violation.ride_id is None:
                    continue
                if violation.ride_id in engine.rides:
                    reindex.add(violation.ride_id)
                elif getattr(engine, "flat_index", None) is not None:
                    engine.flat_index.drop_ride(violation.ride_id)
                    actions += 1
            elif violation.kind in (
                "lost-index-entry",
                "unsupported-reachable",
                "unindexed-ride",
                "dual-list-divergence",
            ):
                if violation.ride_id is not None:
                    reindex.add(violation.ride_id)
        for ride_id in sorted(reindex):
            if ride_id in engine.rides:
                engine.reindex_ride(ride_id)
                actions += 1
        self.heals += actions
        return actions

    # ------------------------------------------------------------------
    # Snapshot comparison (transactional-booking verification)
    # ------------------------------------------------------------------
    def snapshot(self, ride_id: int) -> Optional[RideSnapshot]:
        """Capture one ride's full mutable state for later comparison."""
        return snapshot_ride(self.engine, ride_id)

    def compare(self, snapshot: RideSnapshot) -> List[str]:
        """Differences between live state and a snapshot (empty == identical)."""
        return diff_ride(self.engine, snapshot)

    def stats(self) -> Dict[str, int]:
        return {
            "sweeps": self.sweeps,
            "violations_found": self.violations_found,
            "heals": self.heals,
        }
