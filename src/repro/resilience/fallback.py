"""Degraded-mode search: T-Share-style direct scan, no cluster index.

When the cluster-level potential-ride lists are unavailable — circuit open
after repeated failures, or the index is suspected corrupt — requests can
still be served by scanning the live rides directly, exactly the way T-Share
resolves a query: resolve the request endpoints to grid-level walk options,
then test every ride's own reachability record against them.

This costs O(rides x walk options) per query instead of the optimized
O(log n + answer), but it reads only per-ride state (``ride_entries``),
bypassing the shared ``cluster_index`` entirely — which is what makes it a
meaningful degradation tier rather than a retry of the same failure.
Matches produced here are real :class:`~repro.core.search.MatchOption`
objects and book through the normal (transactional) path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..core.request import RideRequest
from ..core.search import MatchOption, _splice_estimate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.engine import XAREngine


def grid_scan_search(
    engine: "XAREngine",
    request: RideRequest,
    k: Optional[int] = None,
) -> List[MatchOption]:
    """Cluster-index-free search over every live ride (degraded tier).

    Semantics match :func:`repro.core.search.search_rides` — same walk,
    window, ordering, seat and detour checks — but candidate generation
    iterates ``engine.ride_entries`` instead of the cluster index, so index
    corruption cannot hide (or fabricate) a match.
    """
    region = engine.region
    source_options = region.walkable_clusters(request.source, request.walk_threshold_m)
    if not source_options:
        return []
    destination_options = region.walkable_clusters(
        request.destination, request.walk_threshold_m
    )
    if not destination_options:
        return []

    matches: List[MatchOption] = []
    for ride_id, entry in engine.ride_entries.items():
        ride = engine.rides.get(ride_id)
        if ride is None or ride.seats_available < 1:
            continue
        # Best walkable source/destination clusters served by this ride,
        # with the ETA taken from the ride's own reachability record (the
        # same value the cluster index stores).
        best_src = best_dst = None
        for option in source_options:
            info = entry.reachable.get(option.cluster_id)
            if info is None:
                continue
            if not (request.window_start_s <= info.eta_s <= request.window_end_s):
                continue
            if best_src is None or option.walk_m < best_src[0]:
                best_src = (option.walk_m, option, info.eta_s)
        if best_src is None:
            continue
        for option in destination_options:
            info = entry.reachable.get(option.cluster_id)
            if info is None:
                continue
            if info.eta_s < request.window_start_s:
                continue
            if best_dst is None or option.walk_m < best_dst[0]:
                best_dst = (option.walk_m, option, info.eta_s)
        if best_dst is None:
            continue

        walk_src, option_src, eta_src = best_src
        walk_dst, option_dst, eta_dst = best_dst
        if walk_src + walk_dst > request.walk_threshold_m:
            continue
        if eta_src >= eta_dst:
            continue
        if option_src.cluster_id == option_dst.cluster_id:
            continue
        info_src = entry.reachable[option_src.cluster_id]
        info_dst = entry.reachable[option_dst.cluster_id]
        coarse = info_src.detour_estimate_m + info_dst.detour_estimate_m
        segment_pickup = entry.segment_for(option_src.cluster_id, earliest=True)
        segment_dropoff = entry.segment_for(option_dst.cluster_id, earliest=False)
        if segment_pickup is None or segment_dropoff is None:
            continue
        if segment_dropoff < segment_pickup:
            segment_dropoff = entry.segment_for(
                option_dst.cluster_id, earliest=False, at_least=segment_pickup
            )
            if segment_dropoff is None:
                continue
        detour = _splice_estimate(
            region,
            entry,
            segment_pickup,
            segment_dropoff,
            option_src.landmark_id,
            option_dst.landmark_id,
        )
        if detour is None:
            detour = coarse
        if detour > ride.detour_limit_m:
            continue
        matches.append(
            MatchOption(
                ride_id=ride_id,
                request_id=request.request_id,
                pickup_cluster=option_src.cluster_id,
                pickup_landmark=option_src.landmark_id,
                walk_source_m=walk_src,
                dropoff_cluster=option_dst.cluster_id,
                dropoff_landmark=option_dst.landmark_id,
                walk_destination_m=walk_dst,
                eta_pickup_s=eta_src,
                eta_dropoff_s=eta_dst,
                detour_estimate_m=detour,
            )
        )

    matches.sort(key=lambda m: (m.total_walk_m, m.eta_pickup_s, m.ride_id))
    if k is not None:
        return matches[:k]
    return matches
