"""Fault-tolerant runtime: deadlines, retries, circuit breaking, degradation.

:class:`ResilientEngine` wraps any simulator-facing engine adapter (usually
:class:`~repro.sim.adapters.XARAdapter`, possibly already wrapped by the
fault injector) and implements the same ``EngineAdapter`` protocol, adding
the production behaviours the paper's clean replay never needed:

* **per-operation deadlines** — each call is timed; read-path operations
  (search, track) that blow their deadline raise
  :class:`~repro.exceptions.DeadlineExceededError` and count as failures,
  while mutation operations (create, book) log the violation but keep their
  result, because a splice that already happened cannot be un-happened by a
  timer;
* **bounded retry** — transient faults (``NoPathError``,
  ``TransientFaultError``, deadline blows) are retried up to
  ``RetryPolicy.max_attempts`` with exponential backoff plus seeded jitter;
  permanent faults (``BookingError`` etc.) propagate immediately;
* **circuit breaking** — repeated search/route failures open a breaker;
  while open, the expensive primary path is skipped entirely and probes are
  let through after ``recovery_s`` (half-open) to detect recovery;
* **graceful degradation** — when the optimized cluster-index search is
  unavailable (breaker open or still failing after retries), search falls
  back to the T-Share-style direct grid scan
  (:func:`~repro.resilience.fallback.grid_scan_search`), and finally to
  returning no matches, which lets the simulator's create-on-miss policy
  serve the request with a fresh ride.  Every request's serving tier is
  counted (``optimized`` / ``grid_fallback`` / ``create_on_miss``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.request import RideRequest
from ..exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    NoPathError,
    TransientFaultError,
    XARError,
)
from ..geo import GeoPoint
from ..obs import MetricsRegistry
from .fallback import grid_scan_search

#: Numeric encoding of breaker states for the ``xar_breaker_state`` gauge.
BREAKER_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}

#: Exception types safe to retry: the fault is in the infrastructure, not
#: the request.
TRANSIENT_ERRORS = (NoPathError, TransientFaultError, DeadlineExceededError)


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff and jitter."""

    max_attempts: int = 3
    base_delay_s: float = 0.02
    max_delay_s: float = 0.5
    #: Fraction of the backoff randomized (0 = deterministic backoff).
    jitter: float = 0.5

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        delay = min(self.max_delay_s, self.base_delay_s * (2.0 ** (attempt - 1)))
        if self.jitter > 0:
            delay *= 1.0 - self.jitter * rng.random()
        return delay


class CircuitBreaker:
    """Classic three-state breaker (closed → open → half-open)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self._clock = clock
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.recovery_s
        ):
            self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the protected operation run now?"""
        return self.state != self.OPEN

    def record_success(self) -> None:
        self._failures = 0
        self._state = self.CLOSED

    def record_failure(self) -> None:
        self._failures += 1
        if self._state == self.HALF_OPEN or self._failures >= self.failure_threshold:
            if self._state != self.OPEN:
                self.trips += 1
            self._state = self.OPEN
            self._opened_at = self._clock()
            self._failures = 0


@dataclass
class ResilienceConfig:
    """Knobs of the fault-tolerant runtime."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-operation deadlines, seconds (None disables the check).
    search_deadline_s: Optional[float] = 1.0
    create_deadline_s: Optional[float] = 5.0
    book_deadline_s: Optional[float] = 5.0
    track_deadline_s: Optional[float] = 10.0
    #: Breaker: consecutive failures before opening, and cool-down.
    breaker_failure_threshold: int = 5
    breaker_recovery_s: float = 30.0
    #: Seed for the retry jitter.
    seed: int = 0
    #: Injectable sleep/clock (tests pass no-op sleep and fake clocks).
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic


@dataclass
class ResilienceStats:
    """Counters the report surfaces after a run."""

    retries: int = 0
    deadline_violations: int = 0
    breaker_trips: int = 0
    short_circuits: int = 0
    fallback_searches: int = 0
    failed_operations: int = 0
    #: Requests served per degradation tier.
    tiers: Dict[str, int] = field(
        default_factory=lambda: {
            "optimized": 0,
            "grid_fallback": 0,
            "create_on_miss": 0,
        }
    )

    def as_dict(self) -> Dict[str, int]:
        out = {
            "retries": self.retries,
            "deadline_violations": self.deadline_violations,
            "breaker_trips": self.breaker_trips,
            "short_circuits": self.short_circuits,
            "fallback_searches": self.fallback_searches,
            "failed_operations": self.failed_operations,
        }
        return out


class ResilientEngine:
    """Fault-tolerant façade over an engine adapter (EngineAdapter-shaped)."""

    def __init__(
        self,
        inner: Any,
        config: Optional[ResilienceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        metrics_labels: Optional[Dict[str, str]] = None,
    ):
        self.inner = inner
        self.config = config or ResilienceConfig()
        self.name = f"Resilient({getattr(inner, 'name', 'engine')})"
        self._rng = random.Random(self.config.seed)
        self.stats = ResilienceStats()
        make = lambda: CircuitBreaker(  # noqa: E731 - tiny local factory
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_s=self.config.breaker_recovery_s,
            clock=self.config.clock,
        )
        self.breakers: Dict[str, CircuitBreaker] = {
            "search": make(),
            "route": make(),  # shared by create + book (the SP-bound ops)
        }
        #: request id -> tier of the search that produced its matches.
        self._search_tier: Dict[int, str] = {}
        #: Registry instruments (None when uninstrumented).  Label children
        #: carry the extra labels (e.g. ``shard``) so N resilient wrappers
        #: can share one registry without series collisions.
        self._extra = dict(metrics_labels or {})
        extra_keys = tuple(sorted(self._extra))
        self._m_retries = self._m_deadline = self._m_short = None
        self._m_fallback = self._m_failed = self._m_tiers = None
        self._m_trips = self._m_state = None
        if metrics is not None:
            self._m_retries = metrics.counter(
                "xar_resilience_retries_total",
                "Retries of transient faults / deadline blows",
                labels=("op",) + extra_keys,
            )
            self._m_deadline = metrics.counter(
                "xar_resilience_deadline_violations_total",
                "Operations that exceeded their per-op deadline",
                labels=("op",) + extra_keys,
            )
            self._m_short = metrics.counter(
                "xar_resilience_short_circuits_total",
                "Calls refused up front because a breaker was open",
                labels=("op",) + extra_keys,
            )
            self._m_fallback = metrics.counter(
                "xar_resilience_fallback_searches_total",
                "Searches served by the T-Share-style grid scan",
                labels=extra_keys,
            )
            self._m_failed = metrics.counter(
                "xar_resilience_failed_operations_total",
                "Operations that exhausted their retry budget",
                labels=("op",) + extra_keys,
            )
            self._m_tiers = metrics.counter(
                "xar_resilience_tier_total",
                "Requests served per degradation tier",
                labels=("tier",) + extra_keys,
            )
            self._m_trips = metrics.counter(
                "xar_breaker_trips_total",
                "Circuit-breaker trips (closed/half-open -> open)",
                labels=("breaker",) + extra_keys,
            )
            self._m_state = metrics.gauge(
                "xar_breaker_state",
                "Breaker state: 0=closed, 1=half_open, 2=open "
                "(synced on every accounted call)",
                labels=("breaker",) + extra_keys,
            )
        #: Last trips total exported per breaker (the registry counter gets
        #: the delta, keeping it monotone while the breaker owns the count).
        self._exported_trips: Dict[str, int] = {name: 0 for name in self.breakers}
        self._sync_breaker_metrics()

    def _inc(self, family, **labels) -> None:
        if family is not None:
            family.labels(**self._extra, **labels).inc()

    def _sync_breaker_metrics(self) -> None:
        """Mirror breaker trips/states onto the registry (no-op when bare)."""
        if self._m_state is None:
            return
        for name, breaker in self.breakers.items():
            self._m_state.labels(breaker=name, **self._extra).set(
                BREAKER_STATE_CODES[breaker.state]
            )
            delta = breaker.trips - self._exported_trips[name]
            if delta > 0:
                self._m_trips.labels(breaker=name, **self._extra).inc(delta)
                self._exported_trips[name] = breaker.trips

    # ------------------------------------------------------------------
    # Core retry/deadline machinery
    # ------------------------------------------------------------------
    def _call(
        self,
        operation: str,
        fn: Callable[[], Any],
        deadline_s: Optional[float],
        breaker: Optional[CircuitBreaker],
        enforce_deadline: bool,
    ) -> Any:
        """Run ``fn`` under retry + deadline + breaker accounting."""
        retry = self.config.retry
        clock = self.config.clock
        last_error: Optional[Exception] = None
        for attempt in range(1, retry.max_attempts + 1):
            started = clock()
            try:
                result = fn()
            except TRANSIENT_ERRORS as exc:
                last_error = exc
                if breaker is not None:
                    breaker.record_failure()
                    self._sync_breaker_metrics()
                if attempt < retry.max_attempts:
                    self.stats.retries += 1
                    self._inc(self._m_retries, op=operation)
                    self.config.sleep(retry.delay_s(attempt, self._rng))
                    continue
                self.stats.failed_operations += 1
                self._inc(self._m_failed, op=operation)
                raise
            elapsed = clock() - started
            if deadline_s is not None and elapsed > deadline_s:
                self.stats.deadline_violations += 1
                self._inc(self._m_deadline, op=operation)
                if breaker is not None:
                    breaker.record_failure()
                    self.stats.breaker_trips = sum(
                        b.trips for b in self.breakers.values()
                    )
                    self._sync_breaker_metrics()
                if enforce_deadline:
                    last_error = DeadlineExceededError(operation, elapsed, deadline_s)
                    if attempt < retry.max_attempts:
                        self.stats.retries += 1
                        self._inc(self._m_retries, op=operation)
                        self.config.sleep(retry.delay_s(attempt, self._rng))
                        continue
                    self.stats.failed_operations += 1
                    self._inc(self._m_failed, op=operation)
                    raise last_error
                # Mutation already applied: keep the result, log the blow.
                return result
            if breaker is not None:
                breaker.record_success()
                self._sync_breaker_metrics()
            return result
        raise last_error  # pragma: no cover - loop always returns or raises

    # ------------------------------------------------------------------
    # EngineAdapter protocol
    # ------------------------------------------------------------------
    def create(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
        shift_end_s: Optional[float] = None,
    ) -> Any:
        result = self._call(
            "create",
            lambda: self.inner.create(
                source, destination, depart_s,
                seats=seats, detour_limit_m=detour_limit_m,
                shift_end_s=shift_end_s,
            ),
            self.config.create_deadline_s,
            self.breakers["route"],
            enforce_deadline=False,
        )
        self.stats.tiers["create_on_miss"] += 1
        self._inc(self._m_tiers, tier="create_on_miss")
        self.stats.breaker_trips = sum(b.trips for b in self.breakers.values())
        return result

    def search(self, request: RideRequest, k: Optional[int] = None) -> List[Any]:
        breaker = self.breakers["search"]
        if breaker.allow():
            try:
                matches = self._call(
                    "search",
                    lambda: self.inner.search(request, k),
                    self.config.search_deadline_s,
                    breaker,
                    enforce_deadline=True,
                )
                self._search_tier[request.request_id] = "optimized"
                self.stats.breaker_trips = sum(
                    b.trips for b in self.breakers.values()
                )
                return matches
            except XARError:
                pass  # degrade below
        else:
            self.stats.short_circuits += 1
            self._inc(self._m_short, op="search")
        self.stats.breaker_trips = sum(b.trips for b in self.breakers.values())
        self._sync_breaker_metrics()

        engine = self.raw_engine()
        if engine is not None:
            try:
                matches = grid_scan_search(engine, request, k)
                self.stats.fallback_searches += 1
                self._inc(self._m_fallback)
                self._search_tier[request.request_id] = "grid_fallback"
                return matches
            except XARError:
                pass
        # Final tier: no matches — create-on-miss will serve the request.
        self._search_tier[request.request_id] = "create_on_miss"
        return []

    def book(self, request: RideRequest, match: Any) -> Any:
        breaker = self.breakers["route"]
        if not breaker.allow():
            # Fail fast: the routing back-end is known-bad, so don't burn a
            # retry budget per match — the caller degrades to create-on-miss
            # (create still attempts, acting as the half-open probe).
            self.stats.short_circuits += 1
            self._inc(self._m_short, op="book")
            raise CircuitOpenError("book")
        record = self._call(
            "book",
            lambda: self.inner.book(request, match),
            self.config.book_deadline_s,
            self.breakers["route"],
            enforce_deadline=False,
        )
        tier = self._search_tier.pop(request.request_id, "optimized")
        self.stats.tiers[tier] = self.stats.tiers.get(tier, 0) + 1
        self._inc(self._m_tiers, tier=tier)
        self.stats.breaker_trips = sum(b.trips for b in self.breakers.values())
        self._sync_breaker_metrics()
        return record

    def track_all(self, now_s: float) -> int:
        return self._call(
            "track_all",
            lambda: self.inner.track_all(now_s),
            self.config.track_deadline_s,
            None,
            enforce_deadline=False,
        )

    def cancel(self, ride: Any) -> None:
        self.inner.cancel(ride)

    def active_rides(self) -> List[Any]:
        return self.inner.active_rides()

    # ------------------------------------------------------------------
    # Introspection / composition
    # ------------------------------------------------------------------
    def raw_engine(self) -> Optional[Any]:
        """The underlying XAREngine, unwrapped through adapter layers."""
        seen = set()
        node: Any = self.inner
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if hasattr(node, "cluster_index") and hasattr(node, "rides"):
                return node
            node = getattr(node, "engine", None) or getattr(node, "inner", None)
        return None

    def resilience_stats(self) -> Dict[str, Any]:
        """Counters for the simulation report."""
        self.stats.breaker_trips = sum(b.trips for b in self.breakers.values())
        self._sync_breaker_metrics()
        out: Dict[str, Any] = self.stats.as_dict()
        out["tiers"] = dict(self.stats.tiers)
        out["breaker_states"] = {
            name: breaker.state for name, breaker in self.breakers.items()
        }
        return out

    def __getattr__(self, name: str) -> Any:
        # Composability: expose inner-adapter extras (on_request, engine,
        # fault_stats, rollback_count, ...) without enumerating them.
        return getattr(self.inner, name)
