"""Ride-level state snapshots for transactional booking and auditing.

A booking mutates four pieces of mutable state — the ride's route +
via-points, its seat count, its detour budget, and its spatio-temporal index
footprint (the :class:`~repro.index.ride_index.RideIndexEntry` plus one
``⟨ride, eta⟩`` tuple per reachable cluster).  ``snapshot_ride`` captures all
four; ``restore_ride`` puts them back *verbatim* (no recomputation), so a
rolled-back booking is indistinguishable from one that never happened.

``diff_ride`` is the audit-grade comparison used by tests and the invariant
auditor: it returns a human-readable list of every field that differs between
the live engine state and a snapshot (empty list == byte-identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..index import ReachableInfo, RideIndexEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.engine import XAREngine


def _copy_entry(entry: RideIndexEntry) -> RideIndexEntry:
    """Deep-enough copy of an index entry (frozen rows are shared)."""
    return RideIndexEntry(
        ride_id=entry.ride_id,
        pass_through=list(entry.pass_through),
        reachable={
            cluster_id: ReachableInfo(
                cluster_id=info.cluster_id,
                supports=set(info.supports),
                eta_s=info.eta_s,
                detour_estimate_m=info.detour_estimate_m,
                support_landmark=info.support_landmark,
                via_landmark=info.via_landmark,
            )
            for cluster_id, info in entry.reachable.items()
        },
        segments=list(entry.segments),
    )


@dataclass
class RideSnapshot:
    """Everything mutable about one ride at a point in time."""

    ride_id: int
    route: List[int]
    via_points: list
    seats_available: int
    seats_total: int
    detour_limit_m: float
    status: object
    progressed_m: float
    tracked_to: Optional[float]
    #: Copy of the ride's index entry (None when the ride is un-indexed).
    entry: Optional[RideIndexEntry]
    #: cluster id -> ETA currently stored in the cluster index for this ride.
    index_etas: Dict[int, float] = field(default_factory=dict)
    #: Booked passengers (request id -> frozen PassengerRecord).
    passengers: Dict[int, object] = field(default_factory=dict)
    #: Shift-end retirement flag at snapshot time.
    retired: bool = False


def snapshot_ride(engine: "XAREngine", ride_id: int) -> Optional[RideSnapshot]:
    """Capture one ride's full mutable state; None for unknown rides."""
    ride = engine.rides.get(ride_id)
    if ride is None:
        return None
    entry = engine.ride_entries.get(ride_id)
    index_etas: Dict[int, float] = {}
    if entry is not None:
        for cluster_id in entry.reachable:
            eta = engine.cluster_index.eta(cluster_id, ride_id)
            if eta is not None:
                index_etas[cluster_id] = eta
    return RideSnapshot(
        ride_id=ride_id,
        route=ride.route,
        via_points=list(ride.via_points),
        seats_available=ride.seats_available,
        seats_total=ride.seats_total,
        detour_limit_m=ride.detour_limit_m,
        status=ride.status,
        progressed_m=ride.progressed_m,
        tracked_to=engine.tracked_to.get(ride_id),
        entry=_copy_entry(entry) if entry is not None else None,
        index_etas=index_etas,
        passengers=dict(ride.passengers),
        retired=ride.retired,
    )


def restore_ride(engine: "XAREngine", snapshot: RideSnapshot) -> None:
    """Put a ride back exactly as snapshotted (no recomputation).

    Restores the route/via-points, seat and detour accounting, tracking
    progress, the ride's index entry, and its cluster-index membership.
    Idempotent: restoring twice leaves the same state.
    """
    ride = engine.rides.get(snapshot.ride_id)
    if ride is None:
        return
    ride.replace_route(snapshot.route, snapshot.via_points)
    ride.seats_available = snapshot.seats_available
    ride.detour_limit_m = snapshot.detour_limit_m
    ride.status = snapshot.status
    ride.progressed_m = snapshot.progressed_m
    ride.passengers = dict(snapshot.passengers)
    ride.retired = snapshot.retired
    if snapshot.tracked_to is None:
        engine.tracked_to.pop(snapshot.ride_id, None)
    else:
        engine.tracked_to[snapshot.ride_id] = snapshot.tracked_to

    # Wipe the ride's current index footprint (entry-listed clusters plus a
    # full purge for strays), then replay the snapshotted footprint.
    current = engine.ride_entries.pop(snapshot.ride_id, None)
    if current is not None:
        for cluster_id in current.reachable_ids():
            engine.cluster_index.remove(cluster_id, snapshot.ride_id)
    engine.cluster_index.purge_ride(snapshot.ride_id)
    if getattr(engine, "flat_index", None) is not None:
        engine.flat_index.drop_ride(snapshot.ride_id)
    if snapshot.entry is not None:
        restored = _copy_entry(snapshot.entry)
        engine.ride_entries[snapshot.ride_id] = restored
        for cluster_id, eta_s in snapshot.index_etas.items():
            engine.cluster_index.add(cluster_id, snapshot.ride_id, eta_s)
        if getattr(engine, "flat_index", None) is not None:
            # Replay the same snapshotted ETAs (seats/detour were restored
            # above, so the budget columns come back verbatim too).
            engine.flat_index.reindex_ride(ride, restored, snapshot.index_etas)


def diff_ride(engine: "XAREngine", snapshot: RideSnapshot) -> List[str]:
    """Every difference between live state and a snapshot (empty == identical)."""
    diffs: List[str] = []
    ride = engine.rides.get(snapshot.ride_id)
    if ride is None:
        return [f"ride {snapshot.ride_id} no longer exists"]
    if ride.route != snapshot.route:
        diffs.append("route differs")
    if list(ride.via_points) != snapshot.via_points:
        diffs.append("via-points differ")
    if ride.seats_available != snapshot.seats_available:
        diffs.append(
            f"seats {ride.seats_available} != {snapshot.seats_available}"
        )
    if ride.detour_limit_m != snapshot.detour_limit_m:
        diffs.append(
            f"detour budget {ride.detour_limit_m!r} != {snapshot.detour_limit_m!r}"
        )
    if ride.status is not snapshot.status:
        diffs.append(f"status {ride.status} != {snapshot.status}")
    if ride.progressed_m != snapshot.progressed_m:
        diffs.append("progress differs")
    if dict(ride.passengers) != dict(snapshot.passengers):
        diffs.append("passenger records differ")
    if ride.retired != snapshot.retired:
        diffs.append(f"retired {ride.retired} != {snapshot.retired}")
    if engine.tracked_to.get(snapshot.ride_id) != snapshot.tracked_to:
        diffs.append("tracked_to differs")

    entry = engine.ride_entries.get(snapshot.ride_id)
    if (entry is None) != (snapshot.entry is None):
        diffs.append("index entry presence differs")
    elif entry is not None and snapshot.entry is not None:
        if entry.pass_through != snapshot.entry.pass_through:
            diffs.append("pass-through visits differ")
        if entry.segments != snapshot.entry.segments:
            diffs.append("segment metadata differs")
        if set(entry.reachable) != set(snapshot.entry.reachable):
            diffs.append("reachable cluster sets differ")
        else:
            for cluster_id, info in entry.reachable.items():
                expected = snapshot.entry.reachable[cluster_id]
                if (
                    info.supports != expected.supports
                    or info.eta_s != expected.eta_s
                    or info.detour_estimate_m != expected.detour_estimate_m
                    or info.support_landmark != expected.support_landmark
                    or info.via_landmark != expected.via_landmark
                ):
                    diffs.append(f"reachable info for cluster {cluster_id} differs")

    live_etas: Dict[int, float] = {}
    reachable = entry.reachable_ids() if entry is not None else set()
    for cluster_id in reachable:
        eta = engine.cluster_index.eta(cluster_id, snapshot.ride_id)
        if eta is not None:
            live_etas[cluster_id] = eta
    if live_etas != snapshot.index_etas:
        diffs.append("cluster-index ETAs differ")
    return diffs
