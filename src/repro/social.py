"""Social network substrate for match ranking (paper Section VII).

"...if a social networking graph could be built or integrated into the
system then the rides offered by people in the social network graph of the
requester can be given higher priority while listing the options.  This will
address the safety concern to some extent..."

:class:`SocialNetwork` is an undirected friendship graph with hop queries;
:func:`social_ranking` produces a sort key for
:meth:`XAREngine.search`-style match lists that puts direct friends first,
friends-of-friends second, strangers last — each tier still ordered by the
system's default least-walk criterion.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple


class SocialNetwork:
    """An undirected friendship graph over user ids."""

    def __init__(self):
        self._friends: Dict[int, Set[int]] = {}

    def add_user(self, user: int) -> None:
        self._friends.setdefault(user, set())

    def add_friendship(self, a: int, b: int) -> None:
        """Befriend two (auto-registered) users; self-loops are rejected."""
        if a == b:
            raise ValueError("a user cannot befriend themselves")
        self.add_user(a)
        self.add_user(b)
        self._friends[a].add(b)
        self._friends[b].add(a)

    def friends(self, user: int) -> Set[int]:
        return set(self._friends.get(user, ()))

    def are_friends(self, a: int, b: int) -> bool:
        return b in self._friends.get(a, ())

    def hop_distance(self, a: int, b: int, max_hops: int = 2) -> Optional[int]:
        """BFS hop count up to ``max_hops``; None beyond (or unknown users)."""
        if a not in self._friends or b not in self._friends:
            return None
        if a == b:
            return 0
        frontier = {a}
        seen = {a}
        for hops in range(1, max_hops + 1):
            frontier = {
                friend
                for user in frontier
                for friend in self._friends[user]
                if friend not in seen
            }
            if b in frontier:
                return hops
            seen |= frontier
            if not frontier:
                return None
        return None

    @property
    def n_users(self) -> int:
        return len(self._friends)

    @property
    def n_friendships(self) -> int:
        return sum(len(friends) for friends in self._friends.values()) // 2


def small_world_network(
    n_users: int,
    mean_degree: int = 6,
    rewire_p: float = 0.1,
    seed: int = 0,
) -> SocialNetwork:
    """Watts–Strogatz-style small world: ring lattice + random rewiring."""
    if n_users < 3:
        raise ValueError("need at least 3 users")
    if mean_degree < 2 or mean_degree % 2:
        raise ValueError("mean_degree must be an even integer >= 2")
    rng = random.Random(seed)
    network = SocialNetwork()
    half = mean_degree // 2
    for user in range(n_users):
        for offset in range(1, half + 1):
            neighbour = (user + offset) % n_users
            if rng.random() < rewire_p:
                neighbour = rng.randrange(n_users)
                while neighbour == user:
                    neighbour = rng.randrange(n_users)
            if neighbour != user:
                network.add_friendship(user, neighbour)
    return network


def social_ranking(
    social: SocialNetwork,
    requester: int,
    driver_of: Callable[[int], Optional[int]],
) -> Callable[[object], Tuple]:
    """Sort key for match lists: friends → friends-of-friends → strangers.

    ``driver_of(ride_id)`` resolves a match's driver (None when unknown);
    ties within a tier fall back to total walking then pickup ETA — the
    system's default ordering.
    """

    def key(match) -> Tuple:
        driver = driver_of(match.ride_id)
        if driver is None:
            tier = 3
        else:
            hops = social.hop_distance(requester, driver, max_hops=2)
            tier = hops if hops is not None else 3
        return (tier, match.total_walk_m, match.eta_pickup_s, match.ride_id)

    return key
