"""System parameters for the XAR system.

The paper defines a handful of tunable knobs (Section IV, Section X):

* grid side — grids are ~100 m squares (Definition 1),
* ``f`` — minimum separation between two landmarks (Definition 2),
* ``delta`` (δ) — maximum pairwise driving distance between landmarks in a
  cluster (Definition 3); GREEDYSEARCH guarantees at most ``4 * delta`` in the
  worst case, and the paper calls that worst-case bound ε (``epsilon``),
* ``Delta`` (Δ) — maximum driving distance for associating a grid with a
  landmark,
* ``W`` — maximum system-wide walking distance for walkable clusters,
* default detour limits of rides and walking thresholds of requests.

All distances are metres, all times seconds, consistently everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .exceptions import ConfigurationError

#: Average driving speed used to convert distances to ETAs when a ride's own
#: route does not pin the time down (m/s).  25 km/h, urban traffic.
DEFAULT_DRIVE_SPEED = 25.0 * 1000.0 / 3600.0

#: Average walking speed (m/s); 5 km/h.
DEFAULT_WALK_SPEED = 5.0 * 1000.0 / 3600.0

#: Walking distances are estimated as haversine x circuity (see DESIGN.md).
DEFAULT_WALK_CIRCUITY = 1.3


@dataclass(frozen=True)
class XARConfig:
    """Immutable bundle of the XAR system parameters.

    Use :func:`XARConfig.validated` (or the module-level helpers) to construct
    a config that is guaranteed internally consistent.
    """

    #: Side of an (implicit) grid square, metres.  Paper: ~100 m.
    grid_side_m: float = 100.0
    #: Minimum separation between two landmarks (``f``), metres.
    landmark_separation_m: float = 250.0
    #: Max pairwise intra-cluster landmark distance target (δ), metres.
    #: GREEDYSEARCH guarantees at most ``4 * delta`` = ε.
    delta_m: float = 250.0
    #: Max driving distance associating a grid with a landmark (Δ), metres.
    grid_landmark_max_m: float = 1000.0
    #: System-wide maximum walking distance (W), metres.
    max_walk_m: float = 1500.0
    #: Default detour budget of a newly created ride, metres.
    default_detour_m: float = 4000.0
    #: Default walking threshold of a request, metres.
    default_walk_threshold_m: float = 800.0
    #: Default seats in a ride excluding the driver.  Paper: capacity 4
    #: including the driver, i.e. 3 passenger seats.
    default_seats: int = 3
    #: Average driving speed for ETA estimation, m/s.
    drive_speed_mps: float = DEFAULT_DRIVE_SPEED
    #: Average walking speed, m/s.
    walk_speed_mps: float = DEFAULT_WALK_SPEED
    #: Circuity factor applied to haversine for walking estimates.
    walk_circuity: float = DEFAULT_WALK_CIRCUITY

    @property
    def epsilon_m(self) -> float:
        """Worst-case intra-cluster distance guarantee ε = 4δ (Theorem 6)."""
        return 4.0 * self.delta_m

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if parameters are inconsistent."""
        positive = {
            "grid_side_m": self.grid_side_m,
            "landmark_separation_m": self.landmark_separation_m,
            "delta_m": self.delta_m,
            "grid_landmark_max_m": self.grid_landmark_max_m,
            "max_walk_m": self.max_walk_m,
            "default_detour_m": self.default_detour_m,
            "drive_speed_mps": self.drive_speed_mps,
            "walk_speed_mps": self.walk_speed_mps,
        }
        for name, value in positive.items():
            if value <= 0:
                raise ConfigurationError(f"{name} must be > 0, got {value!r}")
        if self.default_walk_threshold_m < 0:
            raise ConfigurationError(
                "default_walk_threshold_m must be >= 0, got "
                f"{self.default_walk_threshold_m!r}"
            )
        if self.default_seats < 1:
            raise ConfigurationError(
                f"default_seats must be >= 1, got {self.default_seats!r}"
            )
        if self.walk_circuity < 1.0:
            raise ConfigurationError(
                f"walk_circuity must be >= 1.0, got {self.walk_circuity!r}"
            )
        if self.default_walk_threshold_m > self.max_walk_m:
            raise ConfigurationError(
                "default_walk_threshold_m cannot exceed the system-wide "
                f"max_walk_m ({self.default_walk_threshold_m} > {self.max_walk_m})"
            )
        if self.grid_side_m > self.grid_landmark_max_m:
            raise ConfigurationError(
                "grid_side_m larger than grid_landmark_max_m makes grid->"
                "landmark association degenerate"
            )

    @classmethod
    def validated(cls, **kwargs) -> "XARConfig":
        """Construct and validate in one step."""
        config = cls(**kwargs)
        config.validate()
        return config

    def with_updates(self, **kwargs) -> "XARConfig":
        """Return a validated copy with the given fields replaced."""
        updated = replace(self, **kwargs)
        updated.validate()
        return updated

    def drive_seconds(self, metres: float) -> float:
        """Convert a driving distance to an estimated duration."""
        return metres / self.drive_speed_mps

    def walk_seconds(self, metres: float) -> float:
        """Convert a walking distance to an estimated duration."""
        return metres / self.walk_speed_mps


#: A conservative default configuration, validated at import time.
DEFAULT_CONFIG = XARConfig.validated()


def paper_nyc_config() -> XARConfig:
    """The parameter point of the paper's NYC experiments (Section X-A3).

    Grids of ~100 m, ε = 1 km (δ = 250 m with the 4δ guarantee), taxi
    capacity 4 including the driver.  The landmark separation f and the
    walking limits are not stated numerically in the paper; these defaults
    match the regime its numbers imply (16k landmarks over NYC ≈ 250 m
    spacing; 1 km infeasible-walk threshold in the Fig. 6 experiment).
    """
    return XARConfig.validated(
        grid_side_m=100.0,
        landmark_separation_m=250.0,
        delta_m=250.0,       # => epsilon = 1 km, the paper's headline value
        grid_landmark_max_m=1000.0,
        max_walk_m=1500.0,
        default_walk_threshold_m=1000.0,
        default_seats=3,     # capacity 4 including the driver
    )
