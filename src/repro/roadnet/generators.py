"""Parametric synthetic city generators (the OSM-extract substitute).

The paper runs on the New York road network.  XAR's data structures consume
nothing but a directed weighted graph with coordinates, so we generate cities
with the properties that matter for the experiments:

* :func:`manhattan_city` — a lattice of one-way streets and two-way avenues
  with NYC-like block spacing (~80 m between streets, ~250 m between
  avenues); this is the default substrate for every benchmark,
* :func:`radial_city` — ring-and-spoke layout, a sanity check that nothing
  assumes a lattice,
* :func:`random_planar_city` — jittered random intersections with k-nearest
  links, exercising irregular topologies.

Every generator returns a strongly connected :class:`RoadNetwork` (verified
at build time) so that routing never dead-ends.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from ..exceptions import RoadNetworkError
from ..geo import GeoPoint, destination_point
from .graph import RoadNetwork

#: Default anchor: lower Manhattan.
DEFAULT_ORIGIN = GeoPoint(40.700, -74.020)

#: Typical urban speeds, m/s.
STREET_SPEED = 8.3  # ~30 km/h
AVENUE_SPEED = 11.1  # ~40 km/h


def manhattan_city(
    n_avenues: int = 12,
    n_streets: int = 40,
    avenue_spacing_m: float = 250.0,
    street_spacing_m: float = 100.0,
    origin: GeoPoint = DEFAULT_ORIGIN,
    one_way_streets: bool = True,
    rng: Optional[random.Random] = None,
) -> RoadNetwork:
    """Manhattan-style lattice.

    Avenues run south-north and are always two-way; streets run west-east and
    alternate direction when ``one_way_streets`` — the pattern that makes the
    result strongly connected by construction while reproducing the one-way
    character that separates driving from walking distance in the paper
    (Section IV).  A small positional jitter (if ``rng``) avoids perfectly
    degenerate geometry.
    """
    if n_avenues < 2 or n_streets < 2:
        raise ValueError("need at least a 2x2 lattice")
    network = RoadNetwork()
    node_id: Dict[Tuple[int, int], int] = {}
    next_id = 0
    for ai in range(n_avenues):
        for si in range(n_streets):
            east = ai * avenue_spacing_m
            north = si * street_spacing_m
            if rng is not None:
                east += rng.uniform(-5.0, 5.0)
                north += rng.uniform(-5.0, 5.0)
            position = destination_point(
                destination_point(origin, 90.0, east), 0.0, north
            )
            node_id[(ai, si)] = next_id
            network.add_node(next_id, position)
            next_id += 1
    # Avenues: two-way vertical links.
    for ai in range(n_avenues):
        for si in range(n_streets - 1):
            network.add_edge(
                node_id[(ai, si)], node_id[(ai, si + 1)],
                speed_mps=AVENUE_SPEED, bidirectional=True,
            )
    # Streets: horizontal links, alternating one-way east/west.
    for si in range(n_streets):
        eastbound = si % 2 == 0
        for ai in range(n_avenues - 1):
            a = node_id[(ai, si)]
            b = node_id[(ai + 1, si)]
            if not one_way_streets:
                network.add_edge(a, b, speed_mps=STREET_SPEED, bidirectional=True)
            elif eastbound:
                network.add_edge(a, b, speed_mps=STREET_SPEED)
            else:
                network.add_edge(b, a, speed_mps=STREET_SPEED)
    _require_strongly_connected(network)
    return network


def radial_city(
    n_rings: int = 6,
    n_spokes: int = 12,
    ring_spacing_m: float = 400.0,
    origin: GeoPoint = DEFAULT_ORIGIN,
) -> RoadNetwork:
    """Ring-and-spoke city: a centre node, concentric rings, radial spokes."""
    if n_rings < 1 or n_spokes < 3:
        raise ValueError("need at least 1 ring and 3 spokes")
    network = RoadNetwork()
    network.add_node(0, origin)
    next_id = 1
    ring_nodes: List[List[int]] = []
    for ring in range(1, n_rings + 1):
        nodes_here: List[int] = []
        for spoke in range(n_spokes):
            bearing = 360.0 * spoke / n_spokes
            position = destination_point(origin, bearing, ring * ring_spacing_m)
            network.add_node(next_id, position)
            nodes_here.append(next_id)
            next_id += 1
        ring_nodes.append(nodes_here)
    # Spokes: two-way radial edges.
    for spoke in range(n_spokes):
        network.add_edge(0, ring_nodes[0][spoke], speed_mps=AVENUE_SPEED, bidirectional=True)
        for ring in range(n_rings - 1):
            network.add_edge(
                ring_nodes[ring][spoke], ring_nodes[ring + 1][spoke],
                speed_mps=AVENUE_SPEED, bidirectional=True,
            )
    # Rings: two-way circumferential edges.
    for ring in range(n_rings):
        for spoke in range(n_spokes):
            network.add_edge(
                ring_nodes[ring][spoke], ring_nodes[ring][(spoke + 1) % n_spokes],
                speed_mps=STREET_SPEED, bidirectional=True,
            )
    _require_strongly_connected(network)
    return network


def random_planar_city(
    n_nodes: int = 300,
    extent_m: float = 4000.0,
    k_nearest: int = 4,
    origin: GeoPoint = DEFAULT_ORIGIN,
    seed: int = 7,
) -> RoadNetwork:
    """Random jittered intersections wired to their k nearest neighbours.

    All edges are two-way; a spanning pass guarantees connectivity even for
    unlucky samples.
    """
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = random.Random(seed)
    network = RoadNetwork()
    offsets: List[Tuple[float, float]] = []
    for node in range(n_nodes):
        east = rng.uniform(0.0, extent_m)
        north = rng.uniform(0.0, extent_m)
        offsets.append((east, north))
        position = destination_point(destination_point(origin, 90.0, east), 0.0, north)
        network.add_node(node, position)

    def _euclid(i: int, j: int) -> float:
        (e1, n1), (e2, n2) = offsets[i], offsets[j]
        return math.hypot(e1 - e2, n1 - n2)

    added = set()
    for i in range(n_nodes):
        neighbours = sorted(
            (j for j in range(n_nodes) if j != i), key=lambda j: _euclid(i, j)
        )[:k_nearest]
        for j in neighbours:
            key = (min(i, j), max(i, j))
            if key not in added:
                added.add(key)
                network.add_edge(i, j, speed_mps=STREET_SPEED, bidirectional=True)
    # Connectivity pass: greedily link any unreached component to the reached
    # set via the closest pair.
    reached = _reachable(network, 0)
    while len(reached) < n_nodes:
        best: Optional[Tuple[float, int, int]] = None
        for i in reached:
            for j in range(n_nodes):
                if j in reached:
                    continue
                d = _euclid(i, j)
                if best is None or d < best[0]:
                    best = (d, i, j)
        assert best is not None
        _d, i, j = best
        network.add_edge(i, j, speed_mps=STREET_SPEED, bidirectional=True)
        reached = _reachable(network, 0)
    _require_strongly_connected(network)
    return network


def _reachable(network: RoadNetwork, start: int) -> set:
    """Forward-reachable node set from ``start``."""
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for edge in network.out_edges(node):
            if edge.target not in seen:
                seen.add(edge.target)
                stack.append(edge.target)
    return seen


def _reverse_reachable(network: RoadNetwork, start: int) -> set:
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for edge in network.in_edges(node):
            if edge.source not in seen:
                seen.add(edge.source)
                stack.append(edge.source)
    return seen


def is_strongly_connected(network: RoadNetwork) -> bool:
    """True iff every node reaches and is reached by node 0."""
    if network.node_count == 0:
        return True
    start = next(network.nodes())
    n = network.node_count
    return len(_reachable(network, start)) == n and len(_reverse_reachable(network, start)) == n


def _require_strongly_connected(network: RoadNetwork) -> None:
    if not is_strongly_connected(network):
        raise RoadNetworkError("generated city is not strongly connected")
