"""Road network substrate: graph model, shortest paths, synthetic cities.

The paper consumes OpenStreetMap road data and OpenTripPlanner for routing.
This package provides the equivalent substrate from scratch:

* :class:`~repro.roadnet.graph.RoadNetwork` — a directed, weighted road graph
  whose nodes carry coordinates (OSM "waypoints"),
* :mod:`~repro.roadnet.shortest_path` — Dijkstra / bidirectional Dijkstra /
  A* / multi-source Dijkstra,
* :mod:`~repro.roadnet.generators` — parametric synthetic cities (Manhattan
  lattice, radial, random planar) standing in for the NYC OSM extract,
* :mod:`~repro.roadnet.travel_time` — distance→time models.
"""

from .graph import RoadEdge, RoadNetwork
from .shortest_path import (
    astar,
    bidirectional_dijkstra,
    dijkstra_all,
    dijkstra_path,
    multi_source_nearest,
    shortest_distance,
)
from .generators import (
    manhattan_city,
    radial_city,
    random_planar_city,
)
from .travel_time import TravelTimeModel, UniformSpeedModel, EdgeSpeedModel
from .io import load_network, save_network, network_from_dict, network_to_dict
from .alt import ALTRouter

__all__ = [
    "RoadEdge",
    "RoadNetwork",
    "dijkstra_all",
    "dijkstra_path",
    "bidirectional_dijkstra",
    "astar",
    "multi_source_nearest",
    "shortest_distance",
    "manhattan_city",
    "radial_city",
    "random_planar_city",
    "TravelTimeModel",
    "UniformSpeedModel",
    "EdgeSpeedModel",
    "save_network",
    "load_network",
    "network_to_dict",
    "network_from_dict",
    "ALTRouter",
]
