"""ALT routing: A* with landmark-distance lower bounds (Goldberg-Harrelson).

Create and book are the only XAR operations that compute shortest paths, and
they dominate those operations' cost (Fig. 4b/4c).  ALT accelerates them:

* preprocessing picks a handful of *routing landmarks* (farthest-point
  spread, unrelated to the discretization's POI landmarks) and stores, for
  every node, the distances to and from each landmark;
* queries run A* with the triangle-inequality lower bound
  ``max_L |d(L, t) - d(L, v)|, |d(v, L) - d(t, L)|`` — admissible and usually
  much tighter than the haversine bound, so far fewer nodes settle.

Preprocessing costs 2 Dijkstras per routing landmark; the tables live beside
the road network for the lifetime of the engine.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import NoPathError, RoadNetworkError
from .graph import RoadNetwork
from .shortest_path import dijkstra_all


class ALTRouter:
    """Preprocessed landmark tables + the accelerated query."""

    def __init__(self, network: RoadNetwork, n_landmarks: int = 8, seed_node: Optional[int] = None):
        if n_landmarks < 1:
            raise ValueError(f"n_landmarks must be >= 1, got {n_landmarks!r}")
        self.network = network
        nodes = list(network.nodes())
        if not nodes:
            raise RoadNetworkError("cannot build ALT tables on an empty network")
        self._node_index: Dict[int, int] = {node: i for i, node in enumerate(nodes)}
        self._nodes = nodes
        self.landmarks = self._pick_landmarks(
            min(n_landmarks, len(nodes)), seed_node if seed_node is not None else nodes[0]
        )
        n = len(nodes)
        k = len(self.landmarks)
        #: to_landmark[l][i]   = d(node_i -> landmark_l)
        #: from_landmark[l][i] = d(landmark_l -> node_i)
        self._to_landmark = np.full((k, n), np.inf)
        self._from_landmark = np.full((k, n), np.inf)
        for l_index, landmark in enumerate(self.landmarks):
            forward = dijkstra_all(network, landmark)
            for node, dist in forward.items():
                self._from_landmark[l_index, self._node_index[node]] = dist
            backward = self._reverse_dijkstra(landmark)
            for node, dist in backward.items():
                self._to_landmark[l_index, self._node_index[node]] = dist

    def _reverse_dijkstra(self, source: int) -> Dict[int, float]:
        dist: Dict[int, float] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in dist:
                continue
            dist[node] = d
            for edge in self.network.in_edges(node):
                if edge.source not in dist:
                    heapq.heappush(heap, (d + edge.length_m, edge.source))
        return dist

    def _pick_landmarks(self, k: int, first: int) -> List[int]:
        """Farthest-point spread in great-circle distance (cheap, effective)."""
        chosen = [first]
        positions = {node: self.network.position(node) for node in self._nodes}
        while len(chosen) < k:
            best_node, best_dist = None, -1.0
            for node in self._nodes:
                nearest = min(
                    positions[node].distance_to(positions[c]) for c in chosen
                )
                if nearest > best_dist:
                    best_node, best_dist = node, nearest
            if best_node is None or best_dist <= 0.0:
                break
            chosen.append(best_node)
        return chosen

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def lower_bound(self, node: int, target: int) -> float:
        """Admissible h(node) for a search toward ``target``."""
        i = self._node_index[node]
        j = self._node_index[target]
        # Directed-graph ALT bounds (signed, not absolute):
        #   d(v, t) >= d(v -> L) - d(t -> L)    (to-landmark tables)
        #   d(v, t) >= d(L -> t) - d(L -> v)    (from-landmark tables)
        to_diff = self._to_landmark[:, i] - self._to_landmark[:, j]
        from_diff = self._from_landmark[:, j] - self._from_landmark[:, i]
        bounds = np.concatenate([to_diff, from_diff])
        bounds = bounds[np.isfinite(bounds)]
        if bounds.size == 0:
            return 0.0
        return float(max(0.0, bounds.max()))

    def _bound_fn(self, target: int):
        """A fast per-query h(node): the target columns are fixed, so the
        bound is a max over 2k float subtractions in pure Python (numpy
        slicing per relaxed node would dominate query time)."""
        j = self._node_index[target]
        to_target = self._to_landmark[:, j].tolist()
        from_target = self._from_landmark[:, j].tolist()
        to_table = self._to_landmark
        from_table = self._from_landmark
        k = len(self.landmarks)
        node_index = self._node_index
        inf = float("inf")

        def bound(node: int) -> float:
            i = node_index[node]
            best = 0.0
            for l_index in range(k):
                to_v = to_table[l_index, i]
                to_t = to_target[l_index]
                if to_v != inf and to_t != inf:
                    diff = to_v - to_t
                    if diff > best:
                        best = diff
                from_v = from_table[l_index, i]
                from_t = from_target[l_index]
                if from_v != inf and from_t != inf:
                    diff = from_t - from_v
                    if diff > best:
                        best = diff
            return best

        return bound

    def shortest_path(self, source: int, target: int) -> Tuple[float, List[int]]:
        """Exact shortest path (length-weighted) via ALT-guided A*."""
        if not self.network.has_node(source):
            raise RoadNetworkError(f"unknown source node {source}")
        if not self.network.has_node(target):
            raise RoadNetworkError(f"unknown target node {target}")
        if source == target:
            return 0.0, [source]
        bound = self._bound_fn(target)
        settled: Dict[int, float] = {}
        seen: Dict[int, float] = {source: 0.0}
        parent: Dict[int, int] = {}
        heap: List[Tuple[float, float, int]] = [(bound(source), 0.0, source)]
        while heap:
            _f, d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled[node] = d
            if node == target:
                path = [target]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return d, path
            for edge in self.network.out_edges(node):
                nxt = edge.target
                if nxt in settled:
                    continue
                nd = d + edge.length_m
                if nd < seen.get(nxt, float("inf")):
                    seen[nxt] = nd
                    parent[nxt] = node
                    heapq.heappush(heap, (nd + bound(nxt), nd, nxt))
        raise NoPathError(source, target)

    def settled_count(self, source: int, target: int) -> int:
        """Nodes settled answering one query (for efficiency comparisons)."""
        if source == target:
            return 1
        settled: Dict[int, float] = {}
        seen: Dict[int, float] = {source: 0.0}
        heap: List[Tuple[float, float, int]] = [
            (self.lower_bound(source, target), 0.0, source)
        ]
        while heap:
            _f, d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled[node] = d
            if node == target:
                return len(settled)
            for edge in self.network.out_edges(node):
                nxt = edge.target
                if nxt in settled:
                    continue
                nd = d + edge.length_m
                if nd < seen.get(nxt, float("inf")):
                    seen[nxt] = nd
                    heapq.heappush(heap, (nd + self.lower_bound(nxt, target), nd, nxt))
        raise NoPathError(source, target)
