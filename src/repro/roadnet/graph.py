"""Directed road-network graph with geographic nodes.

Nodes are integers with a :class:`~repro.geo.point.GeoPoint` position
(OpenStreetMap calls these waypoints).  Edges are directed and carry a length
in metres and a speed in m/s.  The structure is adjacency-list based and
optimised for the access patterns of this library: Dijkstra expansion,
nearest-node snapping, and route tracing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import RoadNetworkError
from ..geo import BoundingBox, GeoPoint, GridIndex


@dataclass(frozen=True)
class RoadEdge:
    """A directed road segment ``source -> target``."""

    source: int
    target: int
    length_m: float
    speed_mps: float

    def __post_init__(self):
        if self.length_m < 0:
            raise ValueError(f"edge length must be >= 0, got {self.length_m!r}")
        if self.speed_mps <= 0:
            raise ValueError(f"edge speed must be > 0, got {self.speed_mps!r}")

    @property
    def travel_seconds(self) -> float:
        """Free-flow traversal time of this edge."""
        return self.length_m / self.speed_mps


class RoadNetwork:
    """A directed, geographic road graph.

    The graph is mutable while being built (``add_node`` / ``add_edge``) and
    is then used read-only by the rest of the system.  ``snap`` queries are
    served by a lazily built spatial hash over nodes.
    """

    def __init__(self):
        self._positions: Dict[int, GeoPoint] = {}
        self._adjacency: Dict[int, List[RoadEdge]] = {}
        self._reverse: Dict[int, List[RoadEdge]] = {}
        self._edge_count = 0
        self._snap_index: Optional[_NodeSpatialHash] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: int, position: GeoPoint) -> None:
        """Add a node; re-adding with a new position is an error."""
        existing = self._positions.get(node)
        if existing is not None and existing != position:
            raise RoadNetworkError(
                f"node {node} already exists at {existing}, refusing to move it"
            )
        if existing is None:
            self._positions[node] = position
            self._adjacency[node] = []
            self._reverse[node] = []
            self._snap_index = None

    def add_edge(
        self,
        source: int,
        target: int,
        length_m: Optional[float] = None,
        speed_mps: float = 11.0,
        bidirectional: bool = False,
    ) -> None:
        """Add a directed edge; ``length_m`` defaults to the haversine length.

        Set ``bidirectional=True`` to also add the reverse edge (two-way
        street).
        """
        for node in (source, target):
            if node not in self._positions:
                raise RoadNetworkError(f"edge endpoint {node} is not a node")
        if length_m is None:
            length_m = self._positions[source].distance_to(self._positions[target])
        edge = RoadEdge(source, target, length_m, speed_mps)
        self._adjacency[source].append(edge)
        self._reverse[target].append(edge)
        self._edge_count += 1
        if bidirectional:
            self.add_edge(target, source, length_m, speed_mps, bidirectional=False)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._positions)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def nodes(self) -> Iterator[int]:
        return iter(self._positions)

    def has_node(self, node: int) -> bool:
        return node in self._positions

    def position(self, node: int) -> GeoPoint:
        try:
            return self._positions[node]
        except KeyError:
            raise RoadNetworkError(f"unknown node {node}") from None

    def out_edges(self, node: int) -> Sequence[RoadEdge]:
        try:
            return self._adjacency[node]
        except KeyError:
            raise RoadNetworkError(f"unknown node {node}") from None

    def in_edges(self, node: int) -> Sequence[RoadEdge]:
        try:
            return self._reverse[node]
        except KeyError:
            raise RoadNetworkError(f"unknown node {node}") from None

    def edges(self) -> Iterator[RoadEdge]:
        for edges in self._adjacency.values():
            yield from edges

    def bounding_box(self, margin_deg: float = 0.001) -> BoundingBox:
        """Bounding box of all node positions, slightly padded."""
        if not self._positions:
            raise RoadNetworkError("bounding box of an empty network")
        return BoundingBox.around(self._positions.values(), margin_deg)

    # ------------------------------------------------------------------
    # Spatial snapping
    # ------------------------------------------------------------------
    def snap(self, point: GeoPoint) -> int:
        """Nearest node to a point (by great-circle distance)."""
        if not self._positions:
            raise RoadNetworkError("cannot snap on an empty network")
        if self._snap_index is None:
            self._snap_index = _NodeSpatialHash(self._positions)
        return self._snap_index.nearest(point)

    def route_length_m(self, nodes: Sequence[int]) -> float:
        """Length of a node path, validating every hop is a real edge."""
        total = 0.0
        for a, b in zip(nodes, nodes[1:]):
            edge = self._find_edge(a, b)
            if edge is None:
                raise RoadNetworkError(f"no edge {a} -> {b} on claimed route")
            total += edge.length_m
        return total

    def route_time_s(self, nodes: Sequence[int]) -> float:
        """Free-flow traversal time of a node path."""
        total = 0.0
        for a, b in zip(nodes, nodes[1:]):
            edge = self._find_edge(a, b)
            if edge is None:
                raise RoadNetworkError(f"no edge {a} -> {b} on claimed route")
            total += edge.travel_seconds
        return total

    def _find_edge(self, source: int, target: int) -> Optional[RoadEdge]:
        for edge in self._adjacency.get(source, ()):
            if edge.target == target:
                return edge
        return None


class _NodeSpatialHash:
    """Bucket nodes into ~250 m grid cells for nearest-node queries."""

    _CELL_M = 250.0

    def __init__(self, positions: Dict[int, GeoPoint]):
        self._positions = positions
        self._grid = GridIndex(BoundingBox.around(positions.values(), 0.001), self._CELL_M)
        self._buckets: Dict[Tuple[int, int], List[int]] = {}
        for node, pos in positions.items():
            self._buckets.setdefault(self._grid.cell_of(pos), []).append(node)

    def nearest(self, point: GeoPoint) -> int:
        cx, cy = self._grid.cell_of(point)
        # Points outside the network bounding box start from the nearest
        # in-region cell so ring expansion always finds the buckets.
        cx = min(max(cx, 0), self._grid.n_cols - 1)
        cy = min(max(cy, 0), self._grid.n_rows - 1)
        best_node = -1
        best_dist = float("inf")
        # Expand rings until we find a candidate, then one extra ring to be
        # safe against cell-boundary effects.
        max_radius = max(self._grid.n_cols, self._grid.n_rows) + 1
        found_at = None
        for radius in range(0, max_radius + 1):
            if found_at is not None and radius > found_at + 1:
                break
            for dx in range(-radius, radius + 1):
                for dy in range(-radius, radius + 1):
                    if max(abs(dx), abs(dy)) != radius:
                        continue
                    for node in self._buckets.get((cx + dx, cy + dy), ()):
                        dist = self._positions[node].distance_to(point)
                        if dist < best_dist:
                            best_dist = dist
                            best_node = node
            if best_node >= 0 and found_at is None:
                found_at = radius
        if best_node < 0:
            raise RoadNetworkError("spatial hash found no nodes")
        return best_node
