"""Travel-time models: converting route distances into ETAs.

The paper estimates the time of arrival of a ride at a cluster "from
historical travel times" (Section VI).  We model that with a pluggable
:class:`TravelTimeModel`: the default :class:`UniformSpeedModel` applies a
single urban average speed; :class:`EdgeSpeedModel` integrates per-edge
speeds along an actual route; :class:`TimeOfDayModel` layers a rush-hour
slowdown profile on top, standing in for historical data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

from ..config import DEFAULT_DRIVE_SPEED
from .graph import RoadNetwork


class TravelTimeModel(Protocol):
    """Anything that can turn a distance (and a departure time) into seconds."""

    def seconds_for(self, distance_m: float, depart_s: float = 0.0) -> float:
        """Estimated seconds to drive ``distance_m`` departing at ``depart_s``."""
        ...


@dataclass(frozen=True)
class UniformSpeedModel:
    """Constant average speed (m/s); the simplest historical-speed stand-in."""

    speed_mps: float = DEFAULT_DRIVE_SPEED

    def __post_init__(self):
        if self.speed_mps <= 0:
            raise ValueError(f"speed must be > 0, got {self.speed_mps!r}")

    def seconds_for(self, distance_m: float, depart_s: float = 0.0) -> float:
        return distance_m / self.speed_mps


@dataclass(frozen=True)
class TimeOfDayModel:
    """Speed scaled by a rush-hour profile.

    The multiplier dips to ``rush_factor`` at the morning (8h) and evening
    (18h) peaks with Gaussian shoulders — a standard shape for urban
    historical speeds.
    """

    base_speed_mps: float = DEFAULT_DRIVE_SPEED
    rush_factor: float = 0.6
    peak_hours: Sequence[float] = (8.0, 18.0)
    peak_width_h: float = 1.5

    def speed_at(self, depart_s: float) -> float:
        hour = (depart_s / 3600.0) % 24.0
        dip = 0.0
        for peak in self.peak_hours:
            dip = max(dip, math.exp(-((hour - peak) ** 2) / (2 * self.peak_width_h ** 2)))
        factor = 1.0 - (1.0 - self.rush_factor) * dip
        return self.base_speed_mps * factor

    def seconds_for(self, distance_m: float, depart_s: float = 0.0) -> float:
        return distance_m / self.speed_at(depart_s)


class EdgeSpeedModel:
    """Integrates per-edge speeds along explicit routes.

    Falls back to the network-wide mean speed when asked about a bare
    distance with no route.
    """

    def __init__(self, network: RoadNetwork):
        self._network = network
        total_len = 0.0
        total_time = 0.0
        for edge in network.edges():
            total_len += edge.length_m
            total_time += edge.travel_seconds
        self._mean_speed = (total_len / total_time) if total_time > 0 else DEFAULT_DRIVE_SPEED

    @property
    def mean_speed_mps(self) -> float:
        return self._mean_speed

    def seconds_for(self, distance_m: float, depart_s: float = 0.0) -> float:
        return distance_m / self._mean_speed

    def seconds_for_route(self, nodes: Sequence[int]) -> float:
        """Exact free-flow traversal time of a node route."""
        return self._network.route_time_s(nodes)
