"""Shortest-path algorithms over :class:`~repro.roadnet.graph.RoadNetwork`.

The paper's design principle is that shortest paths are computed only at ride
*creation* and *booking* time, never during search.  These are the routines
those operations use:

* :func:`dijkstra_all` — one-to-all distances (optionally early-terminated),
* :func:`dijkstra_path` — one-to-one distance + node path,
* :func:`bidirectional_dijkstra` — faster one-to-one distance queries,
* :func:`astar` — haversine-guided one-to-one path search,
* :func:`multi_source_nearest` — nearest-source labelling used by the
  discretization builder to associate every grid with its closest landmark in
  a single pass (instead of one Dijkstra per grid).

All distances are metres over edge lengths; time-weighted variants are
obtained by passing ``weight="time"``.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..exceptions import NoPathError, RoadNetworkError
from .graph import RoadEdge, RoadNetwork

#: Edge weight selectors.
_WEIGHTS: Dict[str, Callable[[RoadEdge], float]] = {
    "length": lambda e: e.length_m,
    "time": lambda e: e.travel_seconds,
}


def _weight_fn(weight: str) -> Callable[[RoadEdge], float]:
    try:
        return _WEIGHTS[weight]
    except KeyError:
        raise ValueError(f"unknown weight {weight!r}, expected 'length' or 'time'")


def dijkstra_all(
    network: RoadNetwork,
    source: int,
    weight: str = "length",
    cutoff: Optional[float] = None,
    targets: Optional[Set[int]] = None,
) -> Dict[int, float]:
    """One-to-all Dijkstra from ``source``.

    ``cutoff`` stops expanding beyond that distance; ``targets`` stops as soon
    as every target has been settled (whichever comes first).  Returns settled
    distances only.
    """
    if not network.has_node(source):
        raise RoadNetworkError(f"unknown source node {source}")
    wf = _weight_fn(weight)
    dist: Dict[int, float] = {}
    remaining = set(targets) if targets is not None else None
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in dist:
            continue
        if cutoff is not None and d > cutoff:
            break
        dist[node] = d
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for edge in network.out_edges(node):
            if edge.target not in dist:
                heapq.heappush(heap, (d + wf(edge), edge.target))
    return dist


def dijkstra_path(
    network: RoadNetwork,
    source: int,
    target: int,
    weight: str = "length",
) -> Tuple[float, List[int]]:
    """One-to-one Dijkstra returning ``(distance, node_path)``.

    Raises :class:`~repro.exceptions.NoPathError` if unreachable.
    """
    if not network.has_node(source):
        raise RoadNetworkError(f"unknown source node {source}")
    if not network.has_node(target):
        raise RoadNetworkError(f"unknown target node {target}")
    if source == target:
        return 0.0, [source]
    wf = _weight_fn(weight)
    settled: Dict[int, float] = {}
    seen: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled[node] = d
        if node == target:
            return d, _trace(parent, source, target)
        for edge in network.out_edges(node):
            nxt = edge.target
            if nxt in settled:
                continue
            nd = d + wf(edge)
            if nd < seen.get(nxt, float("inf")):
                seen[nxt] = nd
                parent[nxt] = node
                heapq.heappush(heap, (nd, nxt))
    raise NoPathError(source, target)


def _trace(parent: Dict[int, int], source: int, target: int) -> List[int]:
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def bidirectional_dijkstra(
    network: RoadNetwork,
    source: int,
    target: int,
    weight: str = "length",
) -> float:
    """Distance-only bidirectional Dijkstra (typically ~2x faster)."""
    if not network.has_node(source):
        raise RoadNetworkError(f"unknown source node {source}")
    if not network.has_node(target):
        raise RoadNetworkError(f"unknown target node {target}")
    if source == target:
        return 0.0
    wf = _weight_fn(weight)
    dist_f: Dict[int, float] = {}
    dist_b: Dict[int, float] = {}
    heap_f: List[Tuple[float, int]] = [(0.0, source)]
    heap_b: List[Tuple[float, int]] = [(0.0, target)]
    best = float("inf")
    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        # Expand the smaller frontier.
        if heap_f[0][0] <= heap_b[0][0]:
            d, node = heapq.heappop(heap_f)
            if node in dist_f:
                continue
            dist_f[node] = d
            if node in dist_b:
                best = min(best, d + dist_b[node])
            for edge in network.out_edges(node):
                if edge.target not in dist_f:
                    nd = d + wf(edge)
                    heapq.heappush(heap_f, (nd, edge.target))
                    if edge.target in dist_b:
                        best = min(best, nd + dist_b[edge.target])
        else:
            d, node = heapq.heappop(heap_b)
            if node in dist_b:
                continue
            dist_b[node] = d
            if node in dist_f:
                best = min(best, d + dist_f[node])
            for edge in network.in_edges(node):
                if edge.source not in dist_b:
                    nd = d + wf(edge)
                    heapq.heappush(heap_b, (nd, edge.source))
                    if edge.source in dist_f:
                        best = min(best, nd + dist_f[edge.source])
    if best == float("inf"):
        raise NoPathError(source, target)
    return best


def astar(
    network: RoadNetwork,
    source: int,
    target: int,
) -> Tuple[float, List[int]]:
    """A* with the great-circle lower bound; length-weighted only.

    The haversine distance is an admissible heuristic for road length, so the
    result is exact.
    """
    if not network.has_node(source):
        raise RoadNetworkError(f"unknown source node {source}")
    if not network.has_node(target):
        raise RoadNetworkError(f"unknown target node {target}")
    if source == target:
        return 0.0, [source]
    goal = network.position(target)
    settled: Dict[int, float] = {}
    seen: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {}
    start_h = network.position(source).distance_to(goal)
    heap: List[Tuple[float, float, int]] = [(start_h, 0.0, source)]
    while heap:
        _f, d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled[node] = d
        if node == target:
            return d, _trace(parent, source, target)
        for edge in network.out_edges(node):
            nxt = edge.target
            if nxt in settled:
                continue
            nd = d + edge.length_m
            if nd < seen.get(nxt, float("inf")):
                seen[nxt] = nd
                parent[nxt] = node
                h = network.position(nxt).distance_to(goal)
                heapq.heappush(heap, (nd + h, nd, nxt))
    raise NoPathError(source, target)


def multi_source_nearest(
    network: RoadNetwork,
    sources: Iterable[int],
    weight: str = "length",
    cutoff: Optional[float] = None,
) -> Dict[int, Tuple[int, float]]:
    """Label every reachable node with its nearest source and the distance.

    One heap pass from all sources simultaneously — the classic trick the
    discretization builder uses to associate every grid/node with its closest
    landmark without running a Dijkstra per grid.

    Note: distances here are *from source to node* following edge directions;
    for "driving distance from grid to landmark" semantics the caller passes
    the landmark set and we search the reverse graph.
    """
    wf = _weight_fn(weight)
    label: Dict[int, Tuple[int, float]] = {}
    heap: List[Tuple[float, int, int]] = []
    for src in sources:
        if not network.has_node(src):
            raise RoadNetworkError(f"unknown source node {src}")
        heapq.heappush(heap, (0.0, src, src))
    while heap:
        d, node, origin = heapq.heappop(heap)
        if node in label:
            continue
        if cutoff is not None and d > cutoff:
            break
        label[node] = (origin, d)
        for edge in network.out_edges(node):
            if edge.target not in label:
                heapq.heappush(heap, (d + wf(edge), edge.target, origin))
    return label


def multi_source_nearest_reverse(
    network: RoadNetwork,
    sources: Iterable[int],
    weight: str = "length",
    cutoff: Optional[float] = None,
) -> Dict[int, Tuple[int, float]]:
    """Like :func:`multi_source_nearest` but over reversed edges.

    The label of node ``v`` is then the nearest source *measured as the
    driving distance from v to the source*, which is the correct semantics for
    "drive from this grid to its landmark".
    """
    wf = _weight_fn(weight)
    label: Dict[int, Tuple[int, float]] = {}
    heap: List[Tuple[float, int, int]] = []
    for src in sources:
        if not network.has_node(src):
            raise RoadNetworkError(f"unknown source node {src}")
        heapq.heappush(heap, (0.0, src, src))
    while heap:
        d, node, origin = heapq.heappop(heap)
        if node in label:
            continue
        if cutoff is not None and d > cutoff:
            break
        label[node] = (origin, d)
        for edge in network.in_edges(node):
            if edge.source not in label:
                heapq.heappush(heap, (d + wf(edge), edge.source, origin))
    return label


def shortest_distance(
    network: RoadNetwork,
    source: int,
    target: int,
    weight: str = "length",
) -> float:
    """Convenience wrapper: distance only, bidirectional under the hood."""
    return bidirectional_dijkstra(network, source, target, weight)
