"""OpenStreetMap XML ingestion (the paper's map-processor input, §III).

Parses a ``.osm`` XML extract into a :class:`RoadNetwork`:

* ``<node>`` elements become graph nodes (only those referenced by kept
  ways are materialised),
* ``<way>`` elements with a ``highway`` tag become edge chains; ``oneway``
  tags are honoured; speeds default from the highway class and respect
  ``maxspeed`` when parseable.

This is a deliberately dependency-free subset parser (xml.etree): enough to
load a city extract, not a full OSM toolchain.  Ways whose class is in
``IGNORED_HIGHWAYS`` (footpaths etc.) are skipped — driving network only.
"""

from __future__ import annotations

import pathlib
import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Union

from ..exceptions import RoadNetworkError
from ..geo import GeoPoint
from .graph import RoadNetwork

PathLike = Union[str, pathlib.Path]

#: Default speeds (m/s) by highway class.
HIGHWAY_SPEEDS = {
    "motorway": 27.0,
    "trunk": 22.0,
    "primary": 16.0,
    "secondary": 13.0,
    "tertiary": 11.0,
    "unclassified": 8.0,
    "residential": 8.0,
    "service": 5.0,
    "living_street": 4.0,
    "motorway_link": 16.0,
    "trunk_link": 13.0,
    "primary_link": 11.0,
    "secondary_link": 11.0,
    "tertiary_link": 8.0,
}

#: Non-drivable classes.
IGNORED_HIGHWAYS = {
    "footway", "path", "cycleway", "steps", "pedestrian", "bridleway",
    "corridor", "track", "construction", "proposed", "raceway",
}


def _parse_maxspeed(value: Optional[str]) -> Optional[float]:
    """'50', '50 km/h' or '30 mph' → m/s; None when unparseable."""
    if not value:
        return None
    text = value.strip().lower()
    factor = 1000.0 / 3600.0
    if text.endswith("mph"):
        factor = 1609.344 / 3600.0
        text = text[:-3].strip()
    elif text.endswith("km/h"):
        text = text[:-4].strip()
    try:
        speed = float(text)
    except ValueError:
        return None
    return speed * factor if speed > 0 else None


def load_osm_xml(path: PathLike) -> RoadNetwork:
    """Parse an OSM XML extract into a strongly usable road network.

    Node ids are re-numbered densely (0..n-1) so they index arrays directly;
    the original OSM ids only matter inside the file.

    Raises :class:`RoadNetworkError` if no drivable way survives.
    """
    path = pathlib.Path(path)
    try:
        tree = ET.parse(path)
    except ET.ParseError as exc:
        raise RoadNetworkError(f"malformed OSM XML in {path}: {exc}") from exc
    root = tree.getroot()

    positions: Dict[str, GeoPoint] = {}
    for node in root.iter("node"):
        try:
            positions[node.attrib["id"]] = GeoPoint(
                float(node.attrib["lat"]), float(node.attrib["lon"])
            )
        except (KeyError, ValueError):
            continue  # skip malformed nodes

    network = RoadNetwork()
    renumber: Dict[str, int] = {}

    def node_id(osm_id: str) -> int:
        if osm_id not in renumber:
            renumber[osm_id] = len(renumber)
            network.add_node(renumber[osm_id], positions[osm_id])
        return renumber[osm_id]

    ways_kept = 0
    for way in root.iter("way"):
        tags = {
            tag.attrib.get("k"): tag.attrib.get("v") for tag in way.findall("tag")
        }
        highway = tags.get("highway")
        if highway is None or highway in IGNORED_HIGHWAYS:
            continue
        speed = _parse_maxspeed(tags.get("maxspeed"))
        if speed is None:
            speed = HIGHWAY_SPEEDS.get(highway, 8.0)
        oneway_tag = tags.get("oneway", "no")
        oneway = oneway_tag in ("yes", "true", "1", "-1")
        reversed_way = oneway_tag == "-1"

        refs = [nd.attrib.get("ref") for nd in way.findall("nd")]
        refs = [r for r in refs if r in positions]
        if len(refs) < 2:
            continue
        if reversed_way:
            refs = list(reversed(refs))
        ways_kept += 1
        for a_ref, b_ref in zip(refs, refs[1:]):
            a, b = node_id(a_ref), node_id(b_ref)
            if a == b:
                continue
            network.add_edge(a, b, speed_mps=speed, bidirectional=not oneway)

    if ways_kept == 0:
        raise RoadNetworkError(f"no drivable ways found in {path}")
    return network


def largest_component(network: RoadNetwork) -> RoadNetwork:
    """Restrict a network to its largest strongly connected component.

    Real OSM extracts contain disconnected fragments (parking lots, islands);
    routing needs one strongly connected graph.  Tarjan-free approach:
    repeated forward/backward reachability intersection from a sampled node —
    O(V+E) per probe, few probes in practice.
    """
    if network.node_count == 0:
        return network

    remaining = set(network.nodes())
    best: set = set()
    while remaining and len(remaining) > len(best):
        start = next(iter(remaining))
        forward = _reach(network, start, reverse=False)
        backward = _reach(network, start, reverse=True)
        component = forward & backward
        if len(component) > len(best):
            best = component
        remaining -= component

    rebuilt = RoadNetwork()
    keep = best
    for node in keep:
        rebuilt.add_node(node, network.position(node))
    for edge in network.edges():
        if edge.source in keep and edge.target in keep:
            rebuilt.add_edge(
                edge.source, edge.target,
                length_m=edge.length_m, speed_mps=edge.speed_mps,
            )
    return rebuilt


def _reach(network: RoadNetwork, start: int, reverse: bool) -> set:
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        edges = network.in_edges(node) if reverse else network.out_edges(node)
        for edge in edges:
            nxt = edge.source if reverse else edge.target
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen
