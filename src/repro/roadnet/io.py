"""Road-network serialization.

The paper's pre-processing runs once per city (Section III); persisting the
network (and the discretization, see :mod:`repro.discretization.io`) lets a
deployment load in milliseconds instead of rebuilding.  The format is plain
JSON — diff-able, versioned, and free of pickle's code-execution hazards.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Union

from ..exceptions import RoadNetworkError
from ..geo import GeoPoint
from .graph import RoadNetwork

#: Format version; bump on breaking changes.
FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def network_to_dict(network: RoadNetwork) -> Dict:
    """Serialize a network to a JSON-safe dictionary."""
    return {
        "format": "repro.roadnet",
        "version": FORMAT_VERSION,
        "nodes": [
            {"id": node, "lat": network.position(node).lat, "lon": network.position(node).lon}
            for node in network.nodes()
        ],
        "edges": [
            {
                "source": edge.source,
                "target": edge.target,
                "length_m": edge.length_m,
                "speed_mps": edge.speed_mps,
            }
            for edge in network.edges()
        ],
    }


def network_from_dict(payload: Dict) -> RoadNetwork:
    """Rebuild a network from :func:`network_to_dict` output."""
    if payload.get("format") != "repro.roadnet":
        raise RoadNetworkError("not a serialized road network")
    if payload.get("version") != FORMAT_VERSION:
        raise RoadNetworkError(
            f"unsupported network format version {payload.get('version')!r}"
        )
    network = RoadNetwork()
    for node in payload["nodes"]:
        network.add_node(int(node["id"]), GeoPoint(float(node["lat"]), float(node["lon"])))
    for edge in payload["edges"]:
        network.add_edge(
            int(edge["source"]),
            int(edge["target"]),
            length_m=float(edge["length_m"]),
            speed_mps=float(edge["speed_mps"]),
        )
    return network


def save_network(network: RoadNetwork, path: PathLike) -> None:
    """Write a network to a JSON file."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(network_to_dict(network)))


def load_network(path: PathLike) -> RoadNetwork:
    """Read a network from a JSON file."""
    path = pathlib.Path(path)
    return network_from_dict(json.loads(path.read_text()))
