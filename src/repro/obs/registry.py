"""Thread-safe metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the service's single source of truth for
operational numbers.  Every instrument lives in a *family* (one metric name
+ help text + label names); a family hands out *children* keyed by label
values, and each child is updated under a lock, so concurrent writers from
the shard workers, inline readers and load-generator drivers never lose
updates (the unlocked ``+=`` counters this package replaces did).

Histograms use **fixed, deterministic bucket bounds** — the bounds are part
of the family's identity, never derived from the data — so two replays of
the same seeded workload produce byte-identical snapshots (modulo wall-clock
durations), and snapshots taken mid-run and post-run line up bucket for
bucket.  A histogram can additionally retain raw samples
(``keep_samples=True``) for exact percentiles; the load generator uses this
so latency SLOs are evaluated on the same observations the exporters
publish.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DETOUR_RATIO_BUCKETS",
    "FANOUT_BUCKETS",
    "QUEUE_DEPTH_BUCKETS",
    "SWAP_GAIN_BUCKETS_M",
]

#: Latency bucket upper bounds in seconds, 250 µs to 10 s (+Inf implicit).
#: Deterministic and shared by every duration histogram in the system so
#: per-stage, per-op and client-side series are directly comparable.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Search fan-out width buckets (shards consulted per search).
FANOUT_BUCKETS: Tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 32, 64)

#: Queue occupancy buckets for wait-depth style histograms.
QUEUE_DEPTH_BUCKETS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Match-quality buckets: matched detour / direct trip distance.  0 means
#: the ride already passes both endpoints; 1 means the detour equals the
#: whole direct trip.  Fine near zero where most XAR matches land.
DETOUR_RATIO_BUCKETS: Tuple[float, ...] = (
    0.0, 0.01, 0.025, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.0,
)

#: Cost metres recovered by batch swap passes in one window.
SWAP_GAIN_BUCKETS_M: Tuple[float, ...] = (
    0.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class Counter:
    """Monotonically increasing counter (one labelled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value that can move both ways (one labelled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value: float) -> None:
        """Ratchet: keep the largest value ever seen (peak tracking)."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram (one labelled child).

    ``bounds`` are the *upper* bucket edges; an implicit +Inf bucket catches
    overflow.  ``observe`` is a bisect + three increments under the child's
    lock.  With ``keep_samples`` the raw observations are retained in
    arrival order for exact percentiles (memory grows with the run — meant
    for bounded load-test runs, not unbounded serving).
    """

    __slots__ = ("_lock", "bounds", "bucket_counts", "count", "sum",
                 "_min", "_max", "_samples")

    def __init__(self, bounds: Sequence[float], keep_samples: bool = False):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds!r}")
        self._lock = threading.Lock()
        self.bounds = ordered
        #: Per-bucket (non-cumulative) counts; index len(bounds) is +Inf.
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: Optional[List[float]] = [] if keep_samples else None

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if self._samples is not None:
                self._samples.append(value)

    # -- reads ----------------------------------------------------------
    @property
    def samples(self) -> List[float]:
        """Copy of the raw observations (empty unless ``keep_samples``)."""
        with self._lock:
            return list(self._samples) if self._samples is not None else []

    @property
    def min(self) -> Optional[float]:
        with self._lock:
            return self._min

    @property
    def max(self) -> Optional[float]:
        with self._lock:
            return self._max

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-shaped ``(le, cumulative_count)`` pairs, +Inf last."""
        with self._lock:
            out: List[Tuple[float, int]] = []
            running = 0
            for bound, n in zip(self.bounds, self.bucket_counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), running + self.bucket_counts[-1]))
            return out

    def quantile(self, q: float) -> float:
        """q in [0, 1].  Exact when samples are kept, else interpolated
        within the owning bucket (lower edge 0 for the first, previous
        bound otherwise; +Inf bucket answers its lower edge).  NaN when
        empty."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile out of range: {q!r}")
        with self._lock:
            if self.count == 0:
                return float("nan")
            if self._samples is not None:
                ordered = sorted(self._samples)
                if len(ordered) == 1:
                    return ordered[0]
                rank = q * (len(ordered) - 1)
                lo = int(rank)
                frac = rank - lo
                if frac == 0.0 or lo + 1 >= len(ordered):
                    return ordered[lo]
                return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac
            target = q * self.count
            running = 0
            previous_bound = 0.0
            for bound, n in zip(self.bounds, self.bucket_counts):
                if running + n >= target and n > 0:
                    inside = (target - running) / n
                    return previous_bound + (bound - previous_bound) * inside
                running += n
                previous_bound = bound
            return previous_bound  # +Inf bucket: best we can say

    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else float("nan")


class _Family:
    """One metric name: help text, label names, children by label values."""

    def __init__(self, name: str, help_text: str, kind: str,
                 labelnames: Tuple[str, ...], **child_kwargs: Any):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self._child_kwargs = child_kwargs
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(**self._child_kwargs)

    def labels(self, **labelvalues: str) -> Any:
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    # Unlabelled families act as their single child.
    def _solo(self) -> Any:
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    def collect(self) -> List[Tuple[Dict[str, str], Any]]:
        """``(labels, child)`` pairs in deterministic (sorted-key) order."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]


class MetricsRegistry:
    """Get-or-create registry of metric families, safe for concurrent use.

    Re-registering an existing name returns the existing family after
    checking that kind/labels/buckets agree — two subsystems naming the same
    series must mean the same thing.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    def _register(self, name: str, help_text: str, kind: str,
                  labelnames: Iterable[str], **child_kwargs: Any) -> _Family:
        labels = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labels:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.labelnames}, cannot re-register "
                        f"as {kind}{labels}"
                    )
                if kind == "histogram" and family._child_kwargs != child_kwargs:
                    raise ValueError(
                        f"metric {name!r} re-registered with different buckets"
                    )
                return family
            family = _Family(name, help_text, kind, labels, **child_kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labels: Iterable[str] = ()) -> _Family:
        return self._register(name, help_text, "counter", labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Iterable[str] = ()) -> _Family:
        return self._register(name, help_text, "gauge", labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Iterable[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
                  keep_samples: bool = False) -> _Family:
        return self._register(
            name, help_text, "histogram", labels,
            bounds=tuple(buckets), keep_samples=keep_samples,
        )

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every family (replay-stable ordering)."""
        out: Dict[str, Any] = {}
        for family in self.families():
            series = []
            for labels, child in family.collect():
                if family.kind == "histogram":
                    series.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "min": child.min,
                        "max": child.max,
                        "buckets": [
                            {"le": le, "count": n}
                            for le, n in child.cumulative_buckets()
                        ],
                    })
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return out
