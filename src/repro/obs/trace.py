"""Lightweight tracing: per-operation spans with per-stage timing.

A :class:`Span` covers one engine operation (search, book, track, create)
and is cut into named *stages* with ``with span.stage("candidate_scan"):``.
Stage and whole-op durations land in two registry histograms —

* ``xar_op_duration_seconds{op=...}``
* ``xar_stage_duration_seconds{op=..., stage=...}``

— plus any extra labels the owning :class:`Tracer` carries (a sharded
deployment labels each engine's tracer with its shard id).  The tracer also
retains the last ``keep`` finished spans with their stage breakdowns, which
is what the JSON exporter dumps as a poor-man's trace view.

Instrumentation must cost nothing when disabled: ``Tracer(None)`` hands out
the module-level :data:`NULL_SPAN`, whose ``stage`` returns a shared no-op
context manager — no timestamps, no allocation, no locks.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from .registry import DEFAULT_LATENCY_BUCKETS_S, MetricsRegistry

__all__ = ["NULL_SPAN", "Span", "Tracer"]

#: Registry family names the tracer writes to.
OP_DURATION = "xar_op_duration_seconds"
STAGE_DURATION = "xar_stage_duration_seconds"


class _NullStage:
    """Shared no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


class _NullSpan:
    """Span stand-in when no registry is attached: every call is a no-op."""

    __slots__ = ()
    _STAGE = _NullStage()

    def stage(self, name: str) -> _NullStage:
        return self._STAGE

    def finish(self) -> None:
        return None


NULL_SPAN = _NullSpan()


class _Stage:
    __slots__ = ("_span", "_name", "_t0")

    def __init__(self, span: "Span", name: str):
        self._span = span
        self._name = name

    def __enter__(self) -> "_Stage":
        self._t0 = self._span._clock()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self._span._record_stage(self._name, self._span._clock() - self._t0)
        return None


class Span:
    """One traced operation: stage timings + total duration."""

    __slots__ = ("op", "stages", "_tracer", "_clock", "_t0", "_finished",
                 "_duration")

    def __init__(self, op: str, tracer: "Tracer"):
        self.op = op
        #: ``(stage_name, seconds)`` in execution order; a stage entered
        #: twice contributes two entries.
        self.stages: List[Tuple[str, float]] = []
        self._tracer = tracer
        self._clock = tracer.clock
        self._t0 = self._clock()
        self._finished = False
        self._duration = 0.0

    def stage(self, name: str) -> _Stage:
        return _Stage(self, name)

    def _record_stage(self, name: str, seconds: float) -> None:
        self.stages.append((name, seconds))
        self._tracer._observe_stage(self.op, name, seconds)

    def finish(self) -> float:
        """Close the span, record the total duration, return it (seconds).

        Idempotent: a second ``finish`` (e.g. from an error path's
        ``finally``) is a no-op returning the recorded duration.
        """
        if self._finished:
            return self._duration
        self._finished = True
        self._duration = self._clock() - self._t0
        self._tracer._observe_op(self.op, self._duration, self)
        return self._duration


class Tracer:
    """Span factory bound to a registry (or to nothing: null tracing)."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry],
        labels: Optional[Dict[str, str]] = None,
        keep: int = 64,
        clock=time.perf_counter,
    ):
        self.registry = registry
        self.labels = dict(labels or {})
        self.clock = clock
        self._recent: "deque[Dict[str, Any]]" = deque(maxlen=keep)
        self._recent_lock = threading.Lock()
        if registry is not None:
            extra = tuple(sorted(self.labels))
            self._h_op = registry.histogram(
                OP_DURATION,
                "Engine operation duration by operation",
                labels=("op",) + extra,
                buckets=DEFAULT_LATENCY_BUCKETS_S,
            )
            self._h_stage = registry.histogram(
                STAGE_DURATION,
                "Engine per-stage duration by operation and stage",
                labels=("op", "stage") + extra,
                buckets=DEFAULT_LATENCY_BUCKETS_S,
            )

    @property
    def enabled(self) -> bool:
        return self.registry is not None

    def span(self, op: str):
        """A live span when enabled, the shared null span otherwise."""
        if self.registry is None:
            return NULL_SPAN
        return Span(op, self)

    # -- sink ----------------------------------------------------------
    def _observe_stage(self, op: str, stage: str, seconds: float) -> None:
        self._h_stage.labels(op=op, stage=stage, **self.labels).observe(seconds)

    def _observe_op(self, op: str, seconds: float, span: Span) -> None:
        self._h_op.labels(op=op, **self.labels).observe(seconds)
        with self._recent_lock:
            self._recent.append({
                "op": op,
                "duration_s": seconds,
                "stages": [
                    {"stage": name, "duration_s": d} for name, d in span.stages
                ],
                **({"labels": dict(self.labels)} if self.labels else {}),
            })

    def recent_spans(self) -> List[Dict[str, Any]]:
        """The last ``keep`` finished spans, oldest first."""
        with self._recent_lock:
            return list(self._recent)
