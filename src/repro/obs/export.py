"""Exporters: Prometheus text exposition format 0.0.4 and JSON dumps.

``to_prometheus_text`` renders a :class:`~repro.obs.registry.MetricsRegistry`
in the exact shape a Prometheus scrape endpoint serves (``# HELP`` /
``# TYPE`` headers, ``_bucket{le=...}`` cumulative histogram series with
``_sum`` / ``_count``), so a real Prometheus can ingest a dumped file via
textfile collection and our CI can assert the exposition parses.

``parse_prometheus_text`` is the matching minimal parser — not a full
client, just enough to round-trip what we emit: sample name, label dict,
float value.  ``to_json`` wraps the registry snapshot (plus optional recent
trace spans) for jq-style consumption.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .registry import MetricsRegistry
from .trace import Tracer

__all__ = ["to_prometheus_text", "to_json", "parse_prometheus_text"]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every family in the text exposition format (0.0.4)."""
    lines: List[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.collect():
            if family.kind == "histogram":
                for le, cumulative in child.cumulative_buckets():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _fmt_value(le)
                    lines.append(
                        f"{family.name}_bucket{_fmt_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_fmt_labels(labels)} "
                    f"{_fmt_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_fmt_labels(labels)} {child.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_fmt_labels(labels)} "
                    f"{_fmt_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


def to_json(
    registry: MetricsRegistry,
    tracers: Optional[List[Tracer]] = None,
    indent: int = 2,
) -> str:
    """Registry snapshot (and optional recent spans) as a JSON document."""
    payload: Dict[str, Any] = {"metrics": registry.snapshot()}
    if tracers:
        spans: List[Dict[str, Any]] = []
        for tracer in tracers:
            spans.extend(tracer.recent_spans())
        payload["recent_spans"] = spans
    return json.dumps(payload, indent=indent, sort_keys=True)


def _parse_labels(block: str) -> Dict[str, str]:
    """Parse the inside of a ``{...}`` label block."""
    labels: Dict[str, str] = {}
    i = 0
    while i < len(block):
        eq = block.index("=", i)
        name = block[i:eq].strip().lstrip(",").strip()
        if block[eq + 1] != '"':
            raise ValueError(f"unquoted label value near {block[eq:]!r}")
        j = eq + 2
        value_chars: List[str] = []
        while j < len(block):
            ch = block[j]
            if ch == "\\":
                nxt = block[j + 1]
                value_chars.append(
                    {"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt)
                )
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        else:
            raise ValueError(f"unterminated label value in {block!r}")
        labels[name] = "".join(value_chars)
        i = j + 1
    return labels


def parse_prometheus_text(
    text: str,
) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse an exposition into ``sample_name -> [(labels, value), ...]``.

    Sample names include histogram suffixes (``_bucket``, ``_sum``,
    ``_count``) exactly as emitted.  Raises ``ValueError`` on any line that
    is neither a comment nor a well-formed sample — CI uses this as a
    validity assertion, so be strict.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            block, _brace, tail = rest.rpartition("}")
            if not _brace:
                raise ValueError(f"unbalanced label braces: {raw!r}")
            labels = _parse_labels(block)
            value_text = tail.strip()
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed sample line: {raw!r}")
            name, value_text = parts
            labels = {}
        name = name.strip()
        if not name or not name[0].isalpha() and name[0] != "_":
            raise ValueError(f"invalid metric name in line: {raw!r}")
        samples.setdefault(name, []).append((labels, float(value_text)))
    return samples
