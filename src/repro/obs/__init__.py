"""First-class observability: metrics registry, tracing spans, exporters.

The serving stack (engine, shard workers, router, resilient runtime, load
generator) reports into one :class:`MetricsRegistry`:

* **counters** — shed/error/partial-search/dropped-tick totals, atomic
  under a lock (replacing the racy ad-hoc ints the router used to keep);
* **gauges** — shard queue depth, circuit-breaker state;
* **histograms** — per-operation and per-*stage* durations (search:
  snap → cluster_lookup → candidate_scan → feasibility_filter →
  rank_merge; book: snapshot → splice → reindex; track: sweep), queue
  wait vs service time, search fan-out width.  Bucket bounds are fixed and
  deterministic, so snapshots are replay-stable.

:class:`Tracer` produces the per-stage spans (null-object pattern: tracing
a non-instrumented engine costs nothing); :func:`to_prometheus_text` and
:func:`to_json` export the registry; :func:`parse_prometheus_text` is the
strict mini-parser CI uses to assert the exposition is valid.  See
``docs/observability.md`` for the full metric catalogue.
"""

from .export import parse_prometheus_text, to_json, to_prometheus_text
from .registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    DETOUR_RATIO_BUCKETS,
    FANOUT_BUCKETS,
    QUEUE_DEPTH_BUCKETS,
    SWAP_GAIN_BUCKETS_M,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DETOUR_RATIO_BUCKETS",
    "FANOUT_BUCKETS",
    "QUEUE_DEPTH_BUCKETS",
    "SWAP_GAIN_BUCKETS_M",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "to_prometheus_text",
    "to_json",
    "parse_prometheus_text",
]
