"""Implicit square grids over a geographic region (paper Definition 1).

A *grid* is a bounded square region; every point location maps to exactly one
grid.  The paper uses ~100 m squares and identifies each grid by its centroid.
Grids are *implicit*: we never materialise the full lattice, we only compute
cell ids numerically from a latitude/longitude — exactly the property the
paper relies on to keep grid-level storage tiny.

The cell id is a pair ``(ix, iy)`` of integer column/row offsets from the
south-west corner of the region bounding box.  Metric spacing is achieved by
converting the configured side length (metres) into degree deltas at the
region's reference latitude, so cells are square *in metres* to within the
local-projection error, which is negligible at city scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .bbox import BoundingBox
from .point import EARTH_RADIUS_M, GeoPoint

#: A grid cell identifier: (column, row) from the region's south-west corner.
GridCell = Tuple[int, int]


@dataclass(frozen=True)
class GridIndex:
    """Maps point locations to implicit square grid cells and back.

    Parameters
    ----------
    bbox:
        The region covered.  Points outside the box are still mapped (ids can
        be negative or exceed the nominal extent); callers that need coverage
        checks use :meth:`in_region`.
    side_m:
        Side of a cell in metres (paper: ~100 m).
    """

    bbox: BoundingBox
    side_m: float

    def __post_init__(self):
        if self.side_m <= 0:
            raise ValueError(f"grid side must be > 0, got {self.side_m!r}")

    @property
    def _lat_step(self) -> float:
        """Degrees of latitude spanned by one cell side."""
        return math.degrees(self.side_m / EARTH_RADIUS_M)

    @property
    def _lon_step(self) -> float:
        """Degrees of longitude spanned by one cell side at the mid latitude."""
        mid_lat = math.radians((self.bbox.min_lat + self.bbox.max_lat) / 2.0)
        shrink = max(math.cos(mid_lat), 1e-9)
        return math.degrees(self.side_m / (EARTH_RADIUS_M * shrink))

    @property
    def n_cols(self) -> int:
        """Number of columns covering the bounding box."""
        span = self.bbox.max_lon - self.bbox.min_lon
        return max(1, int(math.ceil(span / self._lon_step)))

    @property
    def n_rows(self) -> int:
        """Number of rows covering the bounding box."""
        span = self.bbox.max_lat - self.bbox.min_lat
        return max(1, int(math.ceil(span / self._lat_step)))

    def cell_of(self, point: GeoPoint) -> GridCell:
        """Unique cell containing ``point`` (many-to-one, Definition 1)."""
        ix = int(math.floor((point.lon - self.bbox.min_lon) / self._lon_step))
        iy = int(math.floor((point.lat - self.bbox.min_lat) / self._lat_step))
        return (ix, iy)

    def centroid_of(self, cell: GridCell) -> GeoPoint:
        """Centroid of a cell — the paper identifies a grid by its centroid."""
        ix, iy = cell
        lon = self.bbox.min_lon + (ix + 0.5) * self._lon_step
        lat = self.bbox.min_lat + (iy + 0.5) * self._lat_step
        return GeoPoint(lat, lon)

    def in_region(self, cell: GridCell) -> bool:
        """True if the cell lies within the nominal region extent."""
        ix, iy = cell
        return 0 <= ix < self.n_cols and 0 <= iy < self.n_rows

    def neighbours(self, cell: GridCell, ring: int = 1) -> List[GridCell]:
        """All in-region cells within Chebyshev distance ``ring`` (excl. self)."""
        if ring < 0:
            raise ValueError(f"ring must be >= 0, got {ring!r}")
        ix, iy = cell
        out: List[GridCell] = []
        for dx in range(-ring, ring + 1):
            for dy in range(-ring, ring + 1):
                if dx == 0 and dy == 0:
                    continue
                candidate = (ix + dx, iy + dy)
                if self.in_region(candidate):
                    out.append(candidate)
        return out

    def ring(self, cell: GridCell, radius: int) -> List[GridCell]:
        """In-region cells at exactly Chebyshev distance ``radius``.

        Used by T-Share's incrementally expanding dual-side search.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius!r}")
        if radius == 0:
            return [cell] if self.in_region(cell) else []
        ix, iy = cell
        out: List[GridCell] = []
        for dx in range(-radius, radius + 1):
            for dy in range(-radius, radius + 1):
                if max(abs(dx), abs(dy)) != radius:
                    continue
                candidate = (ix + dx, iy + dy)
                if self.in_region(candidate):
                    out.append(candidate)
        return out

    def cells_within(self, point: GeoPoint, radius_m: float) -> Iterator[GridCell]:
        """Yield in-region cells whose centroid is within ``radius_m`` of point.

        A cheap disk query used to prefilter spatial searches (e.g. finding
        walkable landmarks).  The candidate window is the square circumscribing
        the disk; each candidate centroid is then distance-checked.
        """
        if radius_m < 0:
            raise ValueError(f"radius_m must be >= 0, got {radius_m!r}")
        reach = int(math.ceil(radius_m / self.side_m)) + 1
        cx, cy = self.cell_of(point)
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                candidate = (cx + dx, cy + dy)
                if not self.in_region(candidate):
                    continue
                if self.centroid_of(candidate).distance_to(point) <= radius_m:
                    yield candidate

    def cell_count(self) -> int:
        """Total number of (implicit) cells in the region."""
        return self.n_cols * self.n_rows
