"""Axis-aligned geographic bounding boxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .point import GeoPoint


@dataclass(frozen=True)
class BoundingBox:
    """A lat/lon axis-aligned box, inclusive of its edges."""

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self):
        if self.min_lat > self.max_lat:
            raise ValueError("min_lat > max_lat")
        if self.min_lon > self.max_lon:
            raise ValueError("min_lon > max_lon")

    @classmethod
    def around(cls, points: Iterable[GeoPoint], margin_deg: float = 0.0) -> "BoundingBox":
        """Smallest box containing all ``points``, padded by ``margin_deg``."""
        pts = list(points)
        if not pts:
            raise ValueError("bounding box of an empty collection")
        return cls(
            min(p.lat for p in pts) - margin_deg,
            min(p.lon for p in pts) - margin_deg,
            max(p.lat for p in pts) + margin_deg,
            max(p.lon for p in pts) + margin_deg,
        )

    def contains(self, point: GeoPoint) -> bool:
        """True if ``point`` lies within the (closed) box."""
        return (
            self.min_lat <= point.lat <= self.max_lat
            and self.min_lon <= point.lon <= self.max_lon
        )

    @property
    def south_west(self) -> GeoPoint:
        return GeoPoint(self.min_lat, self.min_lon)

    @property
    def north_east(self) -> GeoPoint:
        return GeoPoint(self.max_lat, self.max_lon)

    @property
    def center(self) -> GeoPoint:
        return GeoPoint(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
