"""Geodesy primitives: points, haversine distances, bounding boxes, grids.

This package is the lowest substrate of the reproduction: everything above it
(road networks, discretization, indexes) speaks in terms of
:class:`~repro.geo.point.GeoPoint`, :class:`~repro.geo.bbox.BoundingBox` and
the implicit 100 m grid of :class:`~repro.geo.grid.GridIndex` (paper
Definition 1).
"""

from .point import (
    EARTH_RADIUS_M,
    GeoPoint,
    destination_point,
    haversine_m,
    haversine_points,
    midpoint,
)
from .bbox import BoundingBox
from .grid import GridCell, GridIndex

__all__ = [
    "EARTH_RADIUS_M",
    "GeoPoint",
    "haversine_m",
    "haversine_points",
    "destination_point",
    "midpoint",
    "BoundingBox",
    "GridCell",
    "GridIndex",
]
