"""Geographic points and great-circle distance helpers.

All distances are metres.  Latitudes/longitudes are WGS84 degrees.  The
haversine formula is exact enough (<0.5% error) at city scale, which is the
regime of every experiment in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

#: Mean Earth radius, metres (IUGG).
EARTH_RADIUS_M = 6_371_008.8


@dataclass(frozen=True, order=True)
class GeoPoint:
    """An immutable (latitude, longitude) pair in degrees."""

    lat: float
    lon: float

    def __post_init__(self):
        if not (-90.0 <= self.lat <= 90.0):
            raise ValueError(f"latitude out of range: {self.lat!r}")
        if not (-180.0 <= self.lon <= 180.0):
            raise ValueError(f"longitude out of range: {self.lon!r}")

    def distance_to(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in metres."""
        return haversine_m(self.lat, self.lon, other.lat, other.lon)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(lat, lon)``."""
        return (self.lat, self.lon)


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon pairs, in metres."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def haversine_points(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two :class:`GeoPoint`, in metres."""
    return haversine_m(a.lat, a.lon, b.lat, b.lon)


def destination_point(origin: GeoPoint, bearing_deg: float, distance_m: float) -> GeoPoint:
    """Point reached travelling ``distance_m`` from ``origin`` at a bearing.

    Used by the synthetic city generators to lay out streets with metric
    spacing.
    """
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    phi1 = math.radians(origin.lat)
    lam1 = math.radians(origin.lon)
    phi2 = math.asin(
        math.sin(phi1) * math.cos(delta)
        + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    )
    lam2 = lam1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * math.sin(phi2),
    )
    lon = math.degrees(lam2)
    # Normalise longitude to [-180, 180).
    lon = (lon + 180.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(phi2), lon)


def midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint:
    """Arithmetic midpoint — adequate at city scale."""
    return GeoPoint((a.lat + b.lat) / 2.0, (a.lon + b.lon) / 2.0)


def centroid(points: Iterable[GeoPoint]) -> GeoPoint:
    """Arithmetic centroid of a non-empty collection of points."""
    pts: List[GeoPoint] = list(points)
    if not pts:
        raise ValueError("centroid of an empty collection")
    lat = sum(p.lat for p in pts) / len(pts)
    lon = sum(p.lon for p in pts) / len(pts)
    return GeoPoint(lat, lon)
