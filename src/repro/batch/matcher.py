"""`BatchMatcher`: a windowed batch-assignment facade over any engine.

Implements the full :class:`~repro.sim.adapters.EngineAdapter` surface, so
anything that drives an engine (load generator, differential harness, CLI)
can swap it in.  ``search`` enqueues the request into the current window
and blocks until the window flushes; the flush searches every windowed
request against the inner engine, solves the request×ride assignment
(greedy seed + eject/2-swap improvement), and answers each caller with its
options re-ranked so the *batch-assigned* ride comes first.  ``book`` then
commits through the inner engine's transactional booking — a stale
assignment raises :class:`XARError` there, the caller falls through to the
next option, and the net effect is exactly the documented greedy fallback.

Accounting is explicit so "no request lost" is checkable: every submitted
request ends up in exactly one of ``assigned`` (solver placed it),
``fallback`` (solver passed, feasible options returned in greedy order),
``unmatched`` (no feasible ride), or ``failed`` (its search raised).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.exceptions import XARError
from repro.obs import MetricsRegistry
from repro.obs.registry import QUEUE_DEPTH_BUCKETS, SWAP_GAIN_BUCKETS_M

from .graph import build_candidate_graph
from .solver import solve_assignment
from .window import PendingRequest, WindowAccumulator

#: Every submitted request lands in exactly one of these ledger outcomes.
OUTCOMES = ("assigned", "fallback", "unmatched", "failed")


@dataclass(frozen=True)
class BatchConfig:
    """Tuning knobs for windowing and the assignment solve."""

    #: Window length in seconds; 0 flushes every request on its own.
    window_s: float = 0.5
    #: Flush early once this many requests are queued.
    max_batch: int = 64
    #: Candidate edges fetched per request from the inner search.
    k_candidates: int = 8
    #: Detour metres are worth this many walk metres in the edge cost.
    detour_weight: float = 0.1
    #: Wall-clock cap on the improvement passes of one solve.
    solver_budget_s: float = 0.05
    #: Hard cap on improvement passes regardless of time left.
    max_passes: int = 8


class BatchMatcher:
    """Windowed batch assignment facade with swap improvement."""

    def __init__(
        self,
        inner: Any,
        config: Optional[BatchConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.inner = inner
        self.config = config or BatchConfig()
        if metrics is None:
            metrics = getattr(inner, "metrics", None)
        if metrics is None:
            metrics = getattr(getattr(inner, "engine", None), "metrics", None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._ledger_lock = threading.Lock()
        self._ledger: Dict[str, int] = {key: 0 for key in OUTCOMES}
        self._ledger.update(submitted=0, committed=0, conflicts=0)
        m = self.metrics
        self._h_window = m.histogram(
            "xar_batch_window_size",
            "Requests per flushed batch window",
            buckets=QUEUE_DEPTH_BUCKETS,
        )
        self._h_passes = m.histogram(
            "xar_batch_solver_passes",
            "Improvement passes run per window solve",
            buckets=QUEUE_DEPTH_BUCKETS,
        )
        self._h_gain = m.histogram(
            "xar_batch_swap_gain_m",
            "Cost metres recovered by swap passes per window",
            buckets=SWAP_GAIN_BUCKETS_M,
        )
        self._h_solve = m.histogram(
            "xar_batch_solve_seconds",
            "Wall time of one window solve (search + assignment)",
        )
        self._c_windows = m.counter(
            "xar_batch_windows_total",
            "Flushed windows by flush trigger",
            labels=("trigger",),
        )
        self._c_requests = m.counter(
            "xar_batch_requests_total",
            "Windowed requests by final window outcome",
            labels=("outcome",),
        )
        self._c_commits = m.counter(
            "xar_batch_commits_total",
            "Batch bookings by commit result",
            labels=("result",),
        )
        self._window = WindowAccumulator(
            self._flush_window,
            window_s=self.config.window_s,
            max_batch=self.config.max_batch,
        )

    @property
    def name(self) -> str:
        return f"Batch({self.inner.name})"

    # ------------------------------------------------------------------
    # EngineAdapter surface
    # ------------------------------------------------------------------
    def create(
        self,
        source,
        destination,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
        shift_end_s: Optional[float] = None,
    ):
        return self.inner.create(
            source, destination, depart_s,
            seats=seats, detour_limit_m=detour_limit_m,
            shift_end_s=shift_end_s,
        )

    def search(self, request, k: Optional[int] = None) -> List[Any]:
        """Window the request; block until its batch is solved.

        Returns at most ``max(k, k_candidates)`` options (``k_candidates``
        when ``k`` is None) with the batch-assigned ride first.
        """
        pending = PendingRequest(
            request=request, k=k, enqueued_at=time.monotonic()
        )
        self._bump("submitted")
        self._window.submit(pending)
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        return list(pending.result or [])

    def book(self, request, match):
        try:
            record = self.inner.book(request, match)
        except XARError:
            self._bump("conflicts")
            self._c_commits.labels(result="conflict").inc()
            raise
        self._bump("committed")
        self._c_commits.labels(result="committed").inc()
        return record

    def track_all(self, now_s: float) -> int:
        return self.inner.track_all(now_s)

    def cancel(self, ride) -> None:
        self.inner.cancel(ride)

    def cancel_booking(self, request_id: int, ride_id: int):
        return self.inner.cancel_booking(request_id, ride_id)

    def active_rides(self):
        return self.inner.active_rides()

    def rollback_count(self) -> int:
        return self.inner.rollback_count()

    def index_stats(self) -> Dict[str, int]:
        return self.inner.index_stats()

    # ------------------------------------------------------------------
    # Extras used by loadgen / CLI when present on the inner target
    # ------------------------------------------------------------------
    def stats(self):
        stats = getattr(self.inner, "stats", None)
        out = dict(stats()) if callable(stats) else {}
        # The ledger rides along so JSON load reports carry the batch
        # accounting (CI asserts its balance without scraping stdout).
        out["batch_ledger"] = self.ledger()
        return out

    def audit(self, heal: bool = False):
        audit = getattr(self.inner, "audit", None)
        return audit(heal=heal) if callable(audit) else []

    def ledger(self) -> Dict[str, int]:
        """Copy of the request-accounting ledger (see module docstring)."""
        with self._ledger_lock:
            return dict(self._ledger)

    def close(self) -> None:
        """Stop the window thread; the inner engine stays usable."""
        self._window.close()

    def __enter__(self) -> "BatchMatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Window flush (runs on the accumulator thread)
    # ------------------------------------------------------------------
    def _flush_window(self, batch: List[PendingRequest], trigger: str) -> None:
        started = time.monotonic()
        cfg = self.config
        self._c_windows.labels(trigger=trigger).inc()
        self._h_window.observe(len(batch))
        graph = build_candidate_graph(
            self.inner, batch,
            k_candidates=cfg.k_candidates,
            detour_weight=cfg.detour_weight,
        )
        result = solve_assignment(
            graph.candidates, graph.budgets,
            max_passes=cfg.max_passes,
            time_budget_s=cfg.solver_budget_s,
        )
        self._h_passes.observe(result.passes)
        self._h_gain.observe(result.swap_gain)
        for index, pending in enumerate(batch):
            if pending.event.is_set():
                # Search raised; the graph builder already failed it.
                self._record_outcome("failed")
                continue
            options = graph.options.get(index, [])
            assigned = result.assignment.get(index)
            if assigned is not None:
                chosen = graph.option_by_ride[index][assigned.ride_id]
                ordered = [chosen]
                ordered.extend(o for o in options if o is not chosen)
                outcome = "assigned"
            elif options:
                ordered = list(options)
                outcome = "fallback"
            else:
                ordered = []
                outcome = "unmatched"
            self._record_outcome(outcome)
            if pending.k is not None:
                ordered = ordered[: pending.k]
            pending.resolve(ordered)
        self._h_solve.observe(time.monotonic() - started)

    def _record_outcome(self, outcome: str) -> None:
        self._bump(outcome)
        self._c_requests.labels(outcome=outcome).inc()

    def _bump(self, key: str) -> None:
        with self._ledger_lock:
            self._ledger[key] += 1
