"""Candidate graph builder: window of requests × active rides.

Edges come straight out of the inner engine's search path, so each one has
already passed the full XAR feasibility check (walk radius, seats, timing,
ε-bounded detour splice).  The builder only re-shapes them into the plain
:class:`~repro.batch.solver.Candidate` edges the solver consumes, and reads
per-ride budgets (seats left, remaining detour allowance) off the live ride
objects so the solver never over-packs a ride the engine would reject.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.exceptions import XARError

from .solver import Candidate, RideBudget
from .window import PendingRequest


@dataclass
class CandidateGraph:
    """One window's bipartite request×ride graph plus ride budgets."""

    pendings: Sequence[PendingRequest]
    candidates: List[Candidate] = field(default_factory=list)
    budgets: Dict[int, RideBudget] = field(default_factory=dict)
    #: request_index -> ranked MatchOption list from the inner search.
    options: Dict[int, List[Any]] = field(default_factory=dict)
    #: request_index -> MatchOption keyed by ride_id (for commit lookup).
    option_by_ride: Dict[int, Dict[int, Any]] = field(default_factory=dict)

    @property
    def n_edges(self) -> int:
        return len(self.candidates)


def edge_cost(option: Any, detour_weight: float) -> float:
    """Scalar edge cost: walk metres plus weighted detour metres."""
    return option.total_walk_m + detour_weight * option.detour_estimate_m


def build_candidate_graph(
    inner: Any,
    pendings: Sequence[PendingRequest],
    *,
    k_candidates: int = 8,
    detour_weight: float = 0.1,
) -> CandidateGraph:
    """Search each pending request against ``inner`` and collect edges.

    A search that raises :class:`XARError` marks that pending as failed (the
    caller re-raises it to the submitter) instead of poisoning the window.
    Budgets snapshot ``seats_available`` and the *remaining* ``detour_limit_m``
    of every active ride; edges onto rides that vanished between search and
    snapshot are dropped by the solver.
    """
    graph = CandidateGraph(pendings=pendings)
    for ride in inner.active_rides():
        graph.budgets[ride.ride_id] = RideBudget(
            ride_id=ride.ride_id,
            seats=ride.seats_available,
            detour_budget_m=ride.detour_limit_m,
        )
    for index, pending in enumerate(pendings):
        k = k_candidates if pending.k is None else max(pending.k, k_candidates)
        try:
            options = inner.search(pending.request, k)
        except XARError as exc:
            pending.fail(exc)
            continue
        graph.options[index] = options
        by_ride = graph.option_by_ride.setdefault(index, {})
        for option in options:
            by_ride.setdefault(option.ride_id, option)
            graph.candidates.append(
                Candidate(
                    request_index=index,
                    ride_id=option.ride_id,
                    cost=edge_cost(option, detour_weight),
                    detour_m=option.detour_estimate_m,
                )
            )
    return graph
