"""Batch assignment solver: greedy seed + swap/exchange improvement.

Pure functions over plain data — no engine, no threads, no RNG — so every
property test can drive it directly and two runs over the same candidate
graph produce the same assignment bit for bit.

The objective is lexicographic: **maximize matched requests, then minimize
total edge cost** (walk metres + weighted detour metres).  The greedy seed
scans candidates cheapest-first; two improvement moves then run to a fixed
point (or until the time budget / pass cap is hit):

* **eject-and-reinsert** — an unmatched request takes a seat on a full
  ride by ejecting one of its assigned requests, provided the ejected
  request re-inserts feasibly elsewhere: matched count +1, always accepted;
* **2-swap exchange** — two matched requests trade rides when both reverse
  edges exist, both budgets still hold, and the summed cost strictly drops:
  matched count unchanged, total cost down.

Both moves preserve per-ride feasibility (seats, remaining detour budget)
as *estimated* by the candidate edges; the transactional booking re-checks
the real schedule at commit time, so an estimate that went stale costs a
rollback and a greedy fallback, never a corrupted ride.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import monotonic
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class Candidate:
    """One feasible request->ride edge of the bipartite candidate graph."""

    request_index: int
    ride_id: int
    #: Scalar edge cost: total walk + detour_weight * detour estimate.
    cost: float
    #: Detour estimate (m) this assignment would charge to the ride.
    detour_m: float


@dataclass(frozen=True)
class RideBudget:
    """What a ride can still absorb, as seen at window-build time."""

    ride_id: int
    seats: int
    detour_budget_m: float


@dataclass
class SolveResult:
    """Outcome of one window's assignment solve."""

    #: request_index -> assigned Candidate (absent == unassigned).
    assignment: Dict[int, Candidate] = field(default_factory=dict)
    passes: int = 0
    ejections: int = 0
    swaps: int = 0
    #: Total cost reduction the improvement passes bought (>= 0).
    swap_gain: float = 0.0
    seed_matched: int = 0
    seed_cost: float = 0.0

    @property
    def matched(self) -> int:
        return len(self.assignment)

    @property
    def total_cost(self) -> float:
        return sum(c.cost for c in self.assignment.values())


class _RideState:
    """Mutable per-ride tally while the solver moves requests around."""

    __slots__ = ("budget", "seats_used", "detour_used")

    def __init__(self, budget: RideBudget):
        self.budget = budget
        self.seats_used = 0
        self.detour_used = 0.0

    def fits(self, candidate: Candidate) -> bool:
        return (
            self.seats_used < self.budget.seats
            and self.detour_used + candidate.detour_m
            <= self.budget.detour_budget_m
        )

    def fits_replacing(self, incoming: Candidate, outgoing: Candidate) -> bool:
        """Would ``incoming`` fit if ``outgoing`` left this ride first?"""
        return (
            self.detour_used - outgoing.detour_m + incoming.detour_m
            <= self.budget.detour_budget_m
        )

    def add(self, candidate: Candidate) -> None:
        self.seats_used += 1
        self.detour_used += candidate.detour_m

    def remove(self, candidate: Candidate) -> None:
        self.seats_used -= 1
        self.detour_used -= candidate.detour_m


def solve_assignment(
    candidates: List[Candidate],
    budgets: Dict[int, RideBudget],
    *,
    max_passes: int = 8,
    time_budget_s: float = 0.05,
    clock: Callable[[], float] = monotonic,
) -> SolveResult:
    """Assign requests to rides: greedy seed, then improvement passes.

    ``candidates`` may name rides absent from ``budgets`` (the ride vanished
    between search and solve); such edges are ignored.  Deterministic for a
    fixed input: candidate scans are pre-sorted and every move takes the
    first improvement in that order.
    """
    deadline = clock() + max(0.0, time_budget_s)
    result = SolveResult()
    states: Dict[int, _RideState] = {
        ride_id: _RideState(budget) for ride_id, budget in budgets.items()
    }
    #: request_index -> its edges, cheapest first (for reinsert scans).
    by_request: Dict[int, List[Candidate]] = {}
    ordered = sorted(
        (c for c in candidates if c.ride_id in states),
        key=lambda c: (c.cost, c.request_index, c.ride_id),
    )
    for candidate in ordered:
        by_request.setdefault(candidate.request_index, []).append(candidate)

    # -- greedy seed: cheapest feasible edge wins, one ride per request ----
    assignment = result.assignment
    for candidate in ordered:
        if candidate.request_index in assignment:
            continue
        state = states[candidate.ride_id]
        if state.fits(candidate):
            assignment[candidate.request_index] = candidate
            state.add(candidate)
    result.seed_matched = result.matched
    result.seed_cost = result.total_cost

    # -- improvement passes ------------------------------------------------
    while result.passes < max_passes and clock() < deadline:
        result.passes += 1
        improved = _eject_and_reinsert_pass(
            result, states, by_request, deadline, clock
        )
        improved |= _two_swap_pass(result, states, by_request, deadline, clock)
        if not improved:
            break
    return result


def _eject_and_reinsert_pass(
    result: SolveResult,
    states: Dict[int, _RideState],
    by_request: Dict[int, List[Candidate]],
    deadline: float,
    clock: Callable[[], float],
) -> bool:
    """Seat an unmatched request by relocating one assigned request.

    For each unmatched request r and each of its edges onto ride R: if R is
    full, try moving one of R's assigned requests onto a different ride with
    spare capacity.  Matched count goes up by one per accepted move, so the
    pass is monotone in the primary objective.
    """
    assignment = result.assignment
    improved = False
    unmatched = sorted(set(by_request) - set(assignment))
    for request_index in unmatched:
        if clock() >= deadline:
            break
        seated = False
        for candidate in by_request[request_index]:
            state = states[candidate.ride_id]
            if state.fits(candidate):
                # A direct seat opened up (an earlier move freed it).
                assignment[request_index] = candidate
                state.add(candidate)
                seated = True
                break
            # Ride is full (or out of budget): try ejecting one occupant.
            occupants = sorted(
                (ri for ri, c in assignment.items()
                 if c.ride_id == candidate.ride_id),
            )
            for occupant in occupants:
                outgoing = assignment[occupant]
                if not state.fits_replacing(candidate, outgoing):
                    continue
                relocation = _cheapest_elsewhere(
                    by_request.get(occupant, ()), states, exclude=candidate.ride_id
                )
                if relocation is None:
                    continue
                # Commit: occupant moves, the unmatched request takes its seat.
                state.remove(outgoing)
                assignment[occupant] = relocation
                states[relocation.ride_id].add(relocation)
                assignment[request_index] = candidate
                state.add(candidate)
                result.ejections += 1
                seated = True
                break
            if seated:
                break
        improved |= seated
    return improved


def _cheapest_elsewhere(
    edges, states: Dict[int, _RideState], exclude: int
) -> Optional[Candidate]:
    """Cheapest feasible edge for a request onto any ride but ``exclude``."""
    for candidate in edges:
        if candidate.ride_id == exclude:
            continue
        if states[candidate.ride_id].fits(candidate):
            return candidate
    return None


def _two_swap_pass(
    result: SolveResult,
    states: Dict[int, _RideState],
    by_request: Dict[int, List[Candidate]],
    deadline: float,
    clock: Callable[[], float],
) -> bool:
    """Exchange the rides of two matched requests when total cost drops.

    Matched count is invariant under a swap, and a swap is only taken when
    the summed edge cost strictly decreases, so (matched, -cost) is
    lexicographically monotone across the whole improvement loop.
    """
    assignment = result.assignment
    improved = False
    matched = sorted(assignment)
    for i, first in enumerate(matched):
        if clock() >= deadline:
            break
        a = assignment.get(first)
        if a is None:
            continue
        cross_first = _cheapest_by_ride(by_request.get(first, ()))
        for second in matched[i + 1:]:
            b = assignment.get(second)
            if b is None or b.ride_id == a.ride_id:
                continue
            a_to_b = cross_first.get(b.ride_id)
            if a_to_b is None:
                continue
            b_to_a = next(
                (c for c in by_request.get(second, ())
                 if c.ride_id == a.ride_id),
                None,
            )
            if b_to_a is None:
                continue
            gain = (a.cost + b.cost) - (a_to_b.cost + b_to_a.cost)
            if gain <= 1e-9:
                continue
            state_a = states[a.ride_id]
            state_b = states[b.ride_id]
            if not state_a.fits_replacing(b_to_a, a):
                continue
            if not state_b.fits_replacing(a_to_b, b):
                continue
            state_a.remove(a)
            state_b.remove(b)
            state_a.add(b_to_a)
            state_b.add(a_to_b)
            assignment[first] = a_to_b
            assignment[second] = b_to_a
            result.swaps += 1
            result.swap_gain += gain
            improved = True
            a = a_to_b
    return improved


def _cheapest_by_ride(edges) -> Dict[int, Candidate]:
    """ride_id -> cheapest edge, from a cheapest-first edge list."""
    out: Dict[int, Candidate] = {}
    for candidate in edges:
        out.setdefault(candidate.ride_id, candidate)
    return out
