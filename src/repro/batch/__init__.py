"""Windowed batch matching: collect requests, solve the assignment, commit.

The per-request greedy engine answers each search in isolation; this
package trades a short wait (the *window*) for a better joint assignment,
following the batched ride-pool assignment literature (greedy seed plus
swap/exchange improvement).  See ``docs/batching.md``.
"""

from .graph import CandidateGraph, build_candidate_graph, edge_cost
from .matcher import OUTCOMES, BatchConfig, BatchMatcher
from .solver import (
    Candidate,
    RideBudget,
    SolveResult,
    solve_assignment,
)
from .window import PendingRequest, WindowAccumulator

__all__ = [
    "BatchConfig",
    "BatchMatcher",
    "Candidate",
    "CandidateGraph",
    "OUTCOMES",
    "PendingRequest",
    "RideBudget",
    "SolveResult",
    "WindowAccumulator",
    "build_candidate_graph",
    "edge_cost",
    "solve_assignment",
]
