"""Time/size window accumulator for batched matching.

Incoming search calls park in a queue; a dedicated flusher thread cuts the
queue into *windows* and hands each one to a flush callback:

* a window **opens** when its first request arrives;
* it **flushes** when it has been open for ``window_s`` seconds (trigger
  ``"timeout"``), when it holds ``max_batch`` requests (trigger ``"size"``),
  or when the accumulator shuts down with requests still queued (trigger
  ``"close"`` — shutdown must never strand a waiting caller).

``window_s=0`` degenerates to solo windows: every request flushes as soon
as the flusher sees it, which is what the single-threaded differential
replay uses (batching across ops would deadlock a serial driver).

The flush callback runs on the flusher thread and must resolve every
:class:`PendingRequest` it is handed (set ``result`` or ``error``, then
``event``).  If it raises instead, the accumulator resolves the whole batch
with that error — a solver bug surfaces to the callers as a failed search,
not a hang.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass
class PendingRequest:
    """One enqueued search: the request, its k, and its completion latch."""

    request: Any
    k: Optional[int]
    enqueued_at: float
    event: threading.Event = field(default_factory=threading.Event)
    result: Optional[List[Any]] = None
    error: Optional[BaseException] = None

    def resolve(self, result: List[Any]) -> None:
        self.result = result
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


class WindowAccumulator:
    """Collects pending requests into windows and flushes them in batches."""

    def __init__(
        self,
        flush: Callable[[List[PendingRequest], str], None],
        window_s: float = 0.5,
        max_batch: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._flush = flush
        self.window_s = window_s
        self.max_batch = max_batch
        self.clock = clock
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._queue: List[PendingRequest] = []
        self._closed = False
        self.windows_flushed = 0
        self._thread = threading.Thread(
            target=self._run, name="xar-batch-window", daemon=True
        )
        self._thread.start()

    def submit(self, pending: PendingRequest) -> None:
        """Enqueue one request; wakes the flusher (it decides when to cut)."""
        with self._nonempty:
            if self._closed:
                raise RuntimeError("window accumulator is closed")
            self._queue.append(pending)
            self._nonempty.notify_all()

    def pending_count(self) -> int:
        with self._lock:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Flusher thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            batch, trigger = self._next_window()
            if batch is None:
                return
            self._dispatch(batch, trigger)

    def _next_window(self):
        """Block until one window is ready; None batch == shut down."""
        with self._nonempty:
            while not self._queue and not self._closed:
                self._nonempty.wait()
            if not self._queue:
                return None, ""
            if self._closed:
                batch = self._queue[: self.max_batch]
                del self._queue[: len(batch)]
                return batch, "close"
            deadline = self.clock() + self.window_s
            trigger = "timeout"
            while True:
                if len(self._queue) >= self.max_batch:
                    trigger = "size"
                    break
                if self._closed:
                    trigger = "close"
                    break
                remaining = deadline - self.clock()
                if remaining <= 0:
                    break
                self._nonempty.wait(timeout=remaining)
            batch = self._queue[: self.max_batch]
            del self._queue[: len(batch)]
            return batch, trigger

    def _dispatch(self, batch: List[PendingRequest], trigger: str) -> None:
        try:
            self._flush(batch, trigger)
        except BaseException as exc:  # noqa: BLE001 - callers must not hang
            for pending in batch:
                if not pending.event.is_set():
                    pending.fail(exc)
        finally:
            self.windows_flushed += 1
            # Belt and braces: a flush that forgot a request must not
            # strand its caller.
            for pending in batch:
                if not pending.event.is_set():
                    pending.fail(
                        RuntimeError("batch flush left a request unresolved")
                    )

    def close(self) -> None:
        """Stop the flusher; queued requests flush first (trigger 'close')."""
        with self._nonempty:
            if self._closed:
                return
            self._closed = True
            self._nonempty.notify_all()
        self._thread.join(timeout=30.0)
