"""T-Share reimplementation (grid-based spatio-temporal ride sharing).

The original implementation is not public; like the XAR authors (footnote 5),
we implement T-Share to resemble the description in Ma et al., ICDE 2013,
with the two modifications the XAR paper makes for the comparison:

* the search explores the region until it finds *all* (or the first k)
  matching taxis instead of stopping at the first one;
* exploration is capped at 80 neighbouring grid cells (~4 km detour bound).

Distances during search validation are either lazy shortest paths
(``distance_mode="dijkstra"``, the default, matching Fig. 4) or the haversine
formula (``distance_mode="haversine"``, the alternate setting of Fig. 5).
"""

from .engine import TShareEngine, TShareMatch
from .grid_index import CellEntry, CellTaxiIndex

__all__ = ["TShareEngine", "TShareMatch", "CellTaxiIndex", "CellEntry"]
