"""T-Share's grid-cell taxi index.

T-Share partitions the city into uniform grid cells (the XAR experiments use
1 km cells, "equivalent to the cluster size of XAR") and keeps, per cell, a
*temporally-ordered* list of the taxis expected to arrive in the cell with
their estimated arrival times.  That is the only spatial structure — all
accuracy beyond the cell resolution comes from lazy shortest-path validation
during search, which is precisely what XAR's cluster-level indexing avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ...geo import GridCell, GridIndex
from ...index import SortedKeyList


@dataclass(frozen=True)
class CellEntry:
    """One taxi's expected visit of a cell."""

    taxi_id: int
    eta_s: float
    route_index: int


class CellTaxiIndex:
    """Per-cell temporally ordered taxi lists."""

    def __init__(self, grid: GridIndex):
        self.grid = grid
        self._cells: Dict[GridCell, SortedKeyList[CellEntry]] = {}
        #: taxi id -> cells it currently appears in (for removal).
        self._taxi_cells: Dict[int, List[GridCell]] = {}

    def add_visit(self, cell: GridCell, entry: CellEntry) -> None:
        bucket = self._cells.get(cell)
        if bucket is None:
            bucket = SortedKeyList(key=lambda e: e.eta_s)
            self._cells[cell] = bucket
        bucket.add(entry)
        self._taxi_cells.setdefault(entry.taxi_id, []).append(cell)

    def remove_taxi(self, taxi_id: int) -> None:
        """Remove every visit of a taxi (used on booking re-index / finish)."""
        for cell in self._taxi_cells.pop(taxi_id, []):
            bucket = self._cells.get(cell)
            if bucket is None:
                continue
            stale = [entry for entry in bucket if entry.taxi_id == taxi_id]
            for entry in stale:
                bucket.discard(entry)
            if not len(bucket):
                del self._cells[cell]

    def visits_in_window(
        self, cell: GridCell, start_s: float, end_s: float
    ) -> Iterator[CellEntry]:
        """Binary search of the cell's temporal list."""
        bucket = self._cells.get(cell)
        if bucket is None:
            return iter(())
        return bucket.irange(start_s, end_s)

    def cell_count(self) -> int:
        return len(self._cells)

    def total_entries(self) -> int:
        return sum(len(bucket) for bucket in self._cells.values())
