"""T-Share engine: create / dual-side search / book / track.

Search follows T-Share's *dual-side taxi searching*: expand grid cells in
rings around the request's origin and destination (nearest cells first),
collect taxis whose expected arrival falls in the time window, and validate
each candidate with **lazy shortest-path computations** — the insertion
detour at the pickup and at the drop-off.  Exploration stops when the
combined number of examined cells reaches ``max_cells`` (80 in the paper's
setting, ~4 km) or, in first-k mode, when k validated matches are found.

This gives the baseline its measured character: search cost grows with the
number of cells and candidates examined (linear in k, Fig. 5a) because every
candidate costs distance computations, while create and book are cheap grid
operations (Fig. 4b/4c).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...config import DEFAULT_DRIVE_SPEED
from ...exceptions import BookingError, RideError, UnknownRideError
from ...geo import GeoPoint, GridIndex
from ...roadnet import RoadNetwork, astar, dijkstra_path
from ...core.request import RideRequest
from ...core.ride import Ride, RideStatus, ViaPoint
from .grid_index import CellEntry, CellTaxiIndex


@dataclass(frozen=True)
class TShareMatch:
    """A validated T-Share match."""

    taxi_id: int
    request_id: int
    pickup_node: int
    dropoff_node: int
    pickup_route_index: int
    dropoff_route_index: int
    eta_pickup_s: float
    detour_m: float
    #: Shortest-path (or haversine) evaluations spent validating this match.
    validations: int


class TShareEngine:
    """A running T-Share instance."""

    def __init__(
        self,
        network: RoadNetwork,
        cell_m: float = 1000.0,
        max_cells: int = 80,
        max_detour_m: float = 4000.0,
        distance_mode: str = "dijkstra",
        default_seats: int = 3,
        max_passenger_delay_s: float = 600.0,
    ):
        if distance_mode not in ("dijkstra", "haversine"):
            raise ValueError(
                f"distance_mode must be 'dijkstra' or 'haversine', got {distance_mode!r}"
            )
        self.network = network
        self.grid = GridIndex(network.bounding_box(), cell_m)
        self.cells = CellTaxiIndex(self.grid)
        self.taxis: Dict[int, Ride] = {}
        self.max_cells = max_cells
        self.max_detour_m = max_detour_m
        self.distance_mode = distance_mode
        self.default_seats = default_seats
        #: T-Share's service guarantee: an accepted passenger's drop-off may
        #: slip by at most this much due to later insertions.
        self.max_passenger_delay_s = max_passenger_delay_s
        #: request_id -> promised drop-off ETA, recorded at booking.
        self.promises: Dict[int, float] = {}
        self._taxi_ids = itertools.count(1)
        #: Cumulative distance evaluations — the experiment's cost counter.
        self.distance_evaluations = 0

    # ------------------------------------------------------------------
    # Distance backends
    # ------------------------------------------------------------------
    def _distance(self, a: int, b: int) -> float:
        """Driving distance between two nodes, by the configured backend."""
        self.distance_evaluations += 1
        if a == b:
            return 0.0
        if self.distance_mode == "dijkstra":
            _d, _path = dijkstra_path(self.network, a, b)
            return _d
        return self.network.position(a).distance_to(self.network.position(b))

    # ------------------------------------------------------------------
    # Taxi creation (cheap: route + grid inserts)
    # ------------------------------------------------------------------
    def create_taxi(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        departure_s: float,
        seats: Optional[int] = None,
    ) -> Ride:
        source_node = self.network.snap(source)
        destination_node = self.network.snap(destination)
        if source_node == destination_node:
            raise RideError("taxi source and destination snap to the same node")
        _length, route = astar(self.network, source_node, destination_node)
        taxi = Ride(
            ride_id=next(self._taxi_ids),
            network=self.network,
            route=route,
            departure_s=departure_s,
            detour_limit_m=self.max_detour_m,
            seats=seats if seats is not None else self.default_seats,
            source_point=source,
            destination_point=destination,
        )
        self.taxis[taxi.ride_id] = taxi
        self._index_taxi(taxi)
        return taxi

    def _index_taxi(self, taxi: Ride) -> None:
        seen: Set = set()
        for route_index, node in enumerate(taxi.route):
            cell = self.grid.cell_of(self.network.position(node))
            if cell in seen:
                continue
            seen.add(cell)
            self.cells.add_visit(
                cell,
                CellEntry(
                    taxi_id=taxi.ride_id,
                    eta_s=taxi.eta_at_index(route_index),
                    route_index=route_index,
                ),
            )

    # ------------------------------------------------------------------
    # Dual-side search with lazy shortest paths
    # ------------------------------------------------------------------
    def search(
        self, request: RideRequest, k: Optional[int] = None
    ) -> List[TShareMatch]:
        """Dual-side incremental search: first k validated matches.

        Rings around the origin and destination cells are expanded
        alternately; as soon as a taxi appears on both sides it is validated
        with lazy distance computations.  The search stops when k matches
        are confirmed or the cell budget (``2 * max_cells``) is exhausted —
        which is why T-Share's search cost grows with k (Fig. 5a) and with
        the region it must sweep, while XAR's does not.
        """
        origin_cell = self.grid.cell_of(request.source)
        dest_cell = self.grid.cell_of(request.destination)
        pickup_node = self.network.snap(request.source)
        dropoff_node = self.network.snap(request.destination)

        origin_candidates: Dict[int, CellEntry] = {}
        dest_candidates: Dict[int, CellEntry] = {}
        validated: Set[int] = set()
        matches: List[TShareMatch] = []
        cells_examined = 0
        max_ring = max(1, int(self.max_detour_m / self.grid.side_m))

        for radius in range(0, max_ring + 1):
            for cell in self.grid.ring(origin_cell, radius):
                cells_examined += 1
                for entry in self.cells.visits_in_window(
                    cell, request.window_start_s, request.window_end_s
                ):
                    current = origin_candidates.get(entry.taxi_id)
                    if current is None or entry.eta_s < current.eta_s:
                        origin_candidates[entry.taxi_id] = entry
            for cell in self.grid.ring(dest_cell, radius):
                cells_examined += 1
                for entry in self.cells.visits_in_window(
                    cell, request.window_start_s, float("inf")
                ):
                    current = dest_candidates.get(entry.taxi_id)
                    if current is None or entry.eta_s < current.eta_s:
                        dest_candidates[entry.taxi_id] = entry

            # Validate taxis now present on both sides, earliest pickup first.
            ready = sorted(
                (
                    taxi_id
                    for taxi_id in dest_candidates
                    if taxi_id in origin_candidates and taxi_id not in validated
                ),
                key=lambda taxi_id: origin_candidates[taxi_id].eta_s,
            )
            for taxi_id in ready:
                validated.add(taxi_id)
                origin_entry = origin_candidates[taxi_id]
                dest_entry = dest_candidates[taxi_id]
                taxi = self.taxis.get(taxi_id)
                if taxi is None or taxi.seats_available < 1:
                    continue
                # Drop-off must not precede pickup along the schedule; equal
                # ETAs (one cell holds both endpoints) are valid — the splice
                # keeps order.
                if dest_entry.eta_s < origin_entry.eta_s:
                    continue
                match = self._validate(
                    taxi, request, origin_entry, dest_entry,
                    pickup_node, dropoff_node,
                )
                if match is not None:
                    matches.append(match)
                    if k is not None and len(matches) >= k:
                        matches.sort(key=lambda m: (m.detour_m, m.taxi_id))
                        return matches
            if cells_examined >= 2 * self.max_cells:
                break

        matches.sort(key=lambda m: (m.detour_m, m.taxi_id))
        return matches

    def _validate(
        self,
        taxi: Ride,
        request: RideRequest,
        origin_entry: CellEntry,
        dest_entry: CellEntry,
        pickup_node: int,
        dropoff_node: int,
    ) -> Optional[TShareMatch]:
        """Insertion feasibility via lazy distance computations.

        The added detour of serving the request is estimated as the
        out-and-back cost of leaving the route at the recorded visit points:
        2·d(route_o, pickup) + 2·d(route_d, dropoff), the standard T-Share
        insertion bound with pickup and drop-off handled independently.
        """
        evaluations_before = self.distance_evaluations
        route = taxi.route
        route_o = route[min(origin_entry.route_index, len(route) - 1)]
        route_d = route[min(dest_entry.route_index, len(route) - 1)]
        detour_pickup = 2.0 * self._distance(route_o, pickup_node)
        if detour_pickup > taxi.detour_limit_m:
            return None
        detour_dropoff = 2.0 * self._distance(route_d, dropoff_node)
        detour = detour_pickup + detour_dropoff
        if detour > taxi.detour_limit_m:
            return None
        return TShareMatch(
            taxi_id=taxi.ride_id,
            request_id=request.request_id,
            pickup_node=pickup_node,
            dropoff_node=dropoff_node,
            pickup_route_index=origin_entry.route_index,
            dropoff_route_index=dest_entry.route_index,
            eta_pickup_s=origin_entry.eta_s,
            detour_m=detour,
            validations=self.distance_evaluations - evaluations_before,
        )

    # ------------------------------------------------------------------
    # Booking: splice the schedule, update grid lists
    # ------------------------------------------------------------------
    def book(self, request: RideRequest, match: TShareMatch) -> Ride:
        """Insert the request into the taxi's schedule."""
        taxi = self.taxis.get(match.taxi_id)
        if taxi is None:
            raise UnknownRideError(match.taxi_id)
        if taxi.seats_available < 1:
            raise BookingError(f"taxi {match.taxi_id} has no free seats")

        route = taxi.route
        old_length = taxi.length_m
        pickup_at = min(match.pickup_route_index, len(route) - 2)
        dropoff_at = min(match.dropoff_route_index, len(route) - 2)
        if dropoff_at < pickup_at:
            dropoff_at = pickup_at

        def splice(path: List[int], at: int, node: int) -> Tuple[List[int], int]:
            """Divert the route through ``node`` at route position ``at``."""
            if path[at] == node:
                return path, at
            _d1, leg_out = dijkstra_path(self.network, path[at], node)
            _d2, leg_back = dijkstra_path(self.network, node, path[at + 1])
            new_path = path[: at + 1] + leg_out[1:] + leg_back[1:] + path[at + 2:]
            return new_path, at + len(leg_out) - 1

        new_route, pickup_index = splice(route, pickup_at, match.pickup_node)
        shift = len(new_route) - len(route)
        new_route, dropoff_index = splice(
            new_route, dropoff_at + shift, match.dropoff_node
        )
        if dropoff_index < pickup_index:
            raise BookingError("T-Share splice produced drop-off before pickup")

        vias = [
            ViaPoint(node=new_route[0], route_index=0, label="source"),
            ViaPoint(
                node=new_route[pickup_index],
                route_index=pickup_index,
                label="pickup",
                request_id=request.request_id,
            ),
            ViaPoint(
                node=new_route[dropoff_index],
                route_index=dropoff_index,
                label="dropoff",
                request_id=request.request_id,
            ),
            ViaPoint(
                node=new_route[-1], route_index=len(new_route) - 1, label="destination"
            ),
        ]
        vias.sort(key=lambda v: v.route_index)
        old_route = taxi.route
        old_vias = list(taxi.via_points)
        # Preserve already-booked passengers' via-points: re-anchor them onto
        # the new route (their nodes are still on it, in order).
        vias = self._merge_existing_vias(old_vias, new_route, vias)
        taxi.replace_route(new_route, vias)

        # Service guarantee (Ma et al.): no previously accepted passenger's
        # drop-off may slip beyond the allowed delay.
        for via in taxi.via_points:
            if via.label != "dropoff" or via.request_id == request.request_id:
                continue
            promise = self.promises.get(via.request_id)
            if promise is None:
                continue
            new_eta = taxi.eta_at_index(via.route_index)
            if new_eta > promise + self.max_passenger_delay_s:
                taxi.replace_route(old_route, old_vias)
                raise BookingError(
                    f"insertion would delay passenger {via.request_id} by "
                    f"{new_eta - promise:.0f}s (> {self.max_passenger_delay_s:.0f}s)"
                )

        taxi.consume_seat()
        taxi.consume_detour(max(0.0, taxi.length_m - old_length))
        dropoff_via = next(
            v for v in taxi.via_points
            if v.label == "dropoff" and v.request_id == request.request_id
        )
        self.promises[request.request_id] = taxi.eta_at_index(dropoff_via.route_index)
        # Refresh the grid lists for the new schedule.
        self.cells.remove_taxi(taxi.ride_id)
        self._index_taxi(taxi)
        return taxi

    @staticmethod
    def _merge_existing_vias(
        old_vias: List[ViaPoint], new_route: List[int], new_vias: List[ViaPoint]
    ) -> List[ViaPoint]:
        """Carry previous pickup/drop-off via-points onto the spliced route.

        Splices only ever insert nodes, so every old via node still occurs on
        the new route in order; each old via is re-anchored at the first
        occurrence at or after the previous via's position.
        """
        carried: List[ViaPoint] = []
        cursor = 0
        for via in old_vias:
            if via.label in ("source", "destination"):
                continue
            try:
                index = new_route.index(via.node, cursor)
            except ValueError:
                continue  # node vanished (should not happen); drop the via
            carried.append(
                ViaPoint(
                    node=via.node, route_index=index,
                    label=via.label, request_id=via.request_id,
                )
            )
            cursor = index
        merged = {(v.route_index, v.label, v.request_id): v for v in new_vias}
        for via in carried:
            merged.setdefault((via.route_index, via.label, via.request_id), via)
        out = sorted(merged.values(), key=lambda v: (v.route_index, v.label))
        # Anchors first/last.
        out = (
            [v for v in out if v.label == "source"]
            + [v for v in out if v.label not in ("source", "destination")]
            + [v for v in out if v.label == "destination"]
        )
        return out

    def remove_taxi(self, taxi_id: int) -> None:
        """Withdraw a taxi entirely (driver cancelled)."""
        if taxi_id not in self.taxis:
            raise UnknownRideError(taxi_id)
        self.cells.remove_taxi(taxi_id)
        del self.taxis[taxi_id]

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------
    def track(self, taxi_id: int, now_s: float) -> None:
        """Completed taxis leave the index (grid lists are time-filtered, so
        passed cells naturally stop matching windows)."""
        taxi = self.taxis.get(taxi_id)
        if taxi is None:
            raise UnknownRideError(taxi_id)
        if now_s >= taxi.arrival_s:
            taxi.status = RideStatus.COMPLETED
            self.cells.remove_taxi(taxi_id)
            del self.taxis[taxi_id]
        elif now_s >= taxi.departure_s:
            taxi.status = RideStatus.ACTIVE
            taxi.progressed_m = taxi.offset_at_index(taxi.index_at_time(now_s))

    def track_all(self, now_s: float) -> int:
        completed = 0
        for taxi_id in list(self.taxis):
            before = taxi_id in self.taxis
            self.track(taxi_id, now_s)
            if before and taxi_id not in self.taxis:
                completed += 1
        return completed

    @property
    def n_taxis(self) -> int:
        return len(self.taxis)
