"""Baseline systems XAR is benchmarked against.

Currently one baseline: T-Share (Ma, Zheng, Wolfson — ICDE 2013), the
state-of-the-art grid-based dynamic taxi ridesharing system the paper
compares with in Section X-B2.
"""

from .tshare import TShareEngine, TShareMatch

__all__ = ["TShareEngine", "TShareMatch"]
