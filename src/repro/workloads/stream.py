"""Turning trip records into ride-share request streams.

The paper's simulation "considers all the trips in the data set as requests
for sharing rides" (Section X-A2): each taxi trip becomes a ride request
with a departure window opening at its pickup time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..core.request import RideRequest
from .nyc import TripRecord


def trips_to_requests(
    trips: Sequence[TripRecord],
    window_s: float = 600.0,
    walk_threshold_m: float = 800.0,
) -> List[RideRequest]:
    """Each trip becomes a request with window [pickup, pickup + window_s]."""
    if window_s < 0:
        raise ValueError(f"window_s must be >= 0, got {window_s!r}")
    requests: List[RideRequest] = []
    for trip in trips:
        requests.append(
            RideRequest(
                request_id=trip.trip_id,
                source=trip.pickup,
                destination=trip.dropoff,
                window_start_s=trip.pickup_s,
                window_end_s=trip.pickup_s + window_s,
                walk_threshold_m=walk_threshold_m,
            )
        )
    return requests


@dataclass
class RequestStream:
    """A replayable, time-ordered request stream."""

    requests: List[RideRequest]

    def __post_init__(self):
        self.requests = sorted(self.requests, key=lambda r: r.window_start_s)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[RideRequest]:
        return iter(self.requests)

    def between(self, start_s: float, end_s: float) -> "RequestStream":
        """Sub-stream with window starts inside [start_s, end_s)."""
        return RequestStream(
            [r for r in self.requests if start_s <= r.window_start_s < end_s]
        )

    def head(self, n: int) -> "RequestStream":
        return RequestStream(self.requests[:n])
