"""Workload generation: the NYC-taxi-trip substitute.

The paper's experiments replay ~350k real taxi trips from 2013-03-07 as ride
share requests.  That dataset is not shippable here, so
:class:`~repro.workloads.nyc.NYCWorkloadGenerator` synthesises a request
stream with the properties that drive the evaluation: spatial hotspots
(business district, transit terminals), a double-peaked time-of-day demand
curve, and a log-normal trip length distribution matching published NYC taxi
statistics (median ~2.9 km).
"""

from .nyc import NYCWorkloadGenerator, TripRecord
from .stream import RequestStream, trips_to_requests
from .synthetic import corridor_workload, hotspot_pulse_workload, uniform_workload
from .nyc_csv import load_nyc_trips_csv

__all__ = [
    "NYCWorkloadGenerator",
    "TripRecord",
    "RequestStream",
    "trips_to_requests",
    "uniform_workload",
    "corridor_workload",
    "hotspot_pulse_workload",
    "load_nyc_trips_csv",
]
