"""Additional workload shapes beyond the NYC-style generator.

* :func:`uniform_workload` — origins/destinations uniform over intersections,
  times uniform in a window: the null model for ablations;
* :func:`corridor_workload` — commute-corridor demand: origins near one
  anchor, destinations near another, all in a tight time band — the
  high-shareability regime where pooling rates peak;
* :func:`hotspot_pulse_workload` — a burst of requests from one location
  (event egress: stadium, station), stress-testing per-cluster index lists.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..geo import GeoPoint, destination_point
from ..roadnet import RoadNetwork
from .nyc import TripRecord


def uniform_workload(
    network: RoadNetwork,
    n_trips: int,
    start_s: float = 0.0,
    end_s: float = 3600.0,
    seed: int = 0,
) -> List[TripRecord]:
    """Uniform origins, destinations and times."""
    if n_trips < 0:
        raise ValueError(f"n_trips must be >= 0, got {n_trips!r}")
    if end_s < start_s:
        raise ValueError("end_s before start_s")
    rng = random.Random(seed)
    nodes = list(network.nodes())
    trips: List[TripRecord] = []
    times = sorted(rng.uniform(start_s, end_s) for _i in range(n_trips))
    for trip_id, pickup_s in enumerate(times):
        a, b = rng.sample(nodes, 2)
        trips.append(
            TripRecord(
                trip_id=trip_id,
                pickup_s=pickup_s,
                pickup=network.position(a),
                dropoff=network.position(b),
            )
        )
    return trips


def corridor_workload(
    network: RoadNetwork,
    n_trips: int,
    origin_anchor: Optional[GeoPoint] = None,
    destination_anchor: Optional[GeoPoint] = None,
    spread_m: float = 500.0,
    start_s: float = 8.0 * 3600,
    band_s: float = 1800.0,
    seed: int = 0,
) -> List[TripRecord]:
    """Commute corridor: everyone travels anchor→anchor within one band.

    Defaults anchor the corridor across the city's bounding-box diagonal.
    """
    if n_trips < 0:
        raise ValueError(f"n_trips must be >= 0, got {n_trips!r}")
    rng = random.Random(seed)
    box = network.bounding_box()
    origin_anchor = origin_anchor or box.south_west
    destination_anchor = destination_anchor or box.north_east

    def jitter(anchor: GeoPoint) -> GeoPoint:
        moved = destination_point(
            anchor, rng.uniform(0, 360), abs(rng.gauss(0.0, spread_m))
        )
        return network.position(network.snap(moved))

    times = sorted(rng.uniform(start_s, start_s + band_s) for _i in range(n_trips))
    trips: List[TripRecord] = []
    for trip_id, pickup_s in enumerate(times):
        pickup = jitter(origin_anchor)
        dropoff = jitter(destination_anchor)
        for _retry in range(5):
            if network.snap(pickup) != network.snap(dropoff):
                break
            dropoff = jitter(destination_anchor)
        trips.append(
            TripRecord(
                trip_id=trip_id, pickup_s=pickup_s, pickup=pickup, dropoff=dropoff
            )
        )
    return trips


def hotspot_pulse_workload(
    network: RoadNetwork,
    n_trips: int,
    epicentre: Optional[GeoPoint] = None,
    pulse_start_s: float = 22.0 * 3600,
    pulse_length_s: float = 900.0,
    spread_m: float = 300.0,
    seed: int = 0,
) -> List[TripRecord]:
    """Event egress: a burst of trips leaving one spot for everywhere."""
    if n_trips < 0:
        raise ValueError(f"n_trips must be >= 0, got {n_trips!r}")
    rng = random.Random(seed)
    nodes = list(network.nodes())
    epicentre = epicentre or network.bounding_box().center

    times = sorted(
        rng.uniform(pulse_start_s, pulse_start_s + pulse_length_s)
        for _i in range(n_trips)
    )
    trips: List[TripRecord] = []
    for trip_id, pickup_s in enumerate(times):
        moved = destination_point(
            epicentre, rng.uniform(0, 360), abs(rng.gauss(0.0, spread_m))
        )
        pickup = network.position(network.snap(moved))
        dropoff = network.position(rng.choice(nodes))
        for _retry in range(5):
            if network.snap(pickup) != network.snap(dropoff):
                break
            dropoff = network.position(rng.choice(nodes))
        trips.append(
            TripRecord(
                trip_id=trip_id, pickup_s=pickup_s, pickup=pickup, dropoff=dropoff
            )
        )
    return trips
