"""Synthetic NYC-like taxi trip generator.

Reproduces the statistical shape of the 2013 NYC taxi data the paper replays:

* **Spatial hotspots** — a small number of high-demand centres (CBD, transit
  terminals, entertainment district) emitting/attracting most trips, plus a
  uniform background over the road network;
* **Temporal profile** — a morning peak (~8h), an evening peak (~18-19h) and
  a late-night shoulder, matching the classic NYC pickup histogram;
* **Trip lengths** — log-normal with median ≈ 2.9 km, clipped to the city.

Every draw comes from an explicit ``random.Random`` seed — runs are
reproducible bit-for-bit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..geo import GeoPoint, destination_point
from ..roadnet import RoadNetwork


@dataclass(frozen=True)
class TripRecord:
    """One taxi trip: pickup time + pickup/drop-off locations."""

    trip_id: int
    pickup_s: float
    pickup: GeoPoint
    dropoff: GeoPoint


@dataclass(frozen=True)
class Hotspot:
    """A demand centre with an attraction weight and a spatial spread."""

    center: GeoPoint
    weight: float
    sigma_m: float


#: Hourly pickup intensity (relative), NYC-shaped: low overnight, morning
#: peak, sustained afternoon, strong evening peak.
HOURLY_INTENSITY = [
    1.0, 0.6, 0.4, 0.3, 0.3, 0.5,  # 0-5
    1.2, 2.2, 3.0, 2.6, 2.2, 2.2,  # 6-11
    2.4, 2.4, 2.4, 2.3, 2.2, 2.6,  # 12-17
    3.2, 3.4, 3.0, 2.6, 2.2, 1.6,  # 18-23
]


class NYCWorkloadGenerator:
    """Generates trip request streams over a road network."""

    def __init__(
        self,
        network: RoadNetwork,
        seed: int = 42,
        n_hotspots: int = 5,
        hotspot_share: float = 0.7,
        median_trip_m: float = 2900.0,
        trip_sigma: float = 0.6,
    ):
        if not (0.0 <= hotspot_share <= 1.0):
            raise ValueError(f"hotspot_share out of [0,1]: {hotspot_share!r}")
        self.network = network
        self.rng = random.Random(seed)
        self.hotspot_share = hotspot_share
        self.median_trip_m = median_trip_m
        self.trip_sigma = trip_sigma
        self._nodes = list(network.nodes())
        self.hotspots = self._make_hotspots(n_hotspots)

    def _make_hotspots(self, n: int) -> List[Hotspot]:
        """Hotspots at random intersections; the first is the dominant CBD."""
        chosen = self.rng.sample(self._nodes, min(n, len(self._nodes)))
        hotspots: List[Hotspot] = []
        for rank, node in enumerate(chosen):
            weight = 1.0 / (rank + 1.0)  # Zipf-ish dominance of the CBD
            hotspots.append(
                Hotspot(
                    center=self.network.position(node),
                    weight=weight,
                    sigma_m=300.0 + 150.0 * rank,
                )
            )
        return hotspots

    # ------------------------------------------------------------------
    # Sampling primitives
    # ------------------------------------------------------------------
    def _sample_point(self) -> GeoPoint:
        """A pickup/drop-off location: hotspot-clustered or background."""
        if self.hotspots and self.rng.random() < self.hotspot_share:
            weights = [h.weight for h in self.hotspots]
            hotspot = self.rng.choices(self.hotspots, weights=weights, k=1)[0]
            radius = abs(self.rng.gauss(0.0, hotspot.sigma_m))
            bearing = self.rng.uniform(0.0, 360.0)
            return destination_point(hotspot.center, bearing, radius)
        node = self.rng.choice(self._nodes)
        return self.network.position(node)

    def _sample_dropoff(self, pickup: GeoPoint) -> GeoPoint:
        """Drop-off at a log-normal trip length from the pickup."""
        length = self.rng.lognormvariate(math.log(self.median_trip_m), self.trip_sigma)
        bearing = self.rng.uniform(0.0, 360.0)
        candidate = destination_point(pickup, bearing, length)
        # Clamp into the city: snap to the nearest road node's position.
        return self.network.position(self.network.snap(candidate))

    def _sample_pickup_times(
        self, n: int, start_hour: float, end_hour: float
    ) -> List[float]:
        """n pickup times following the hourly intensity profile, sorted."""
        if end_hour <= start_hour:
            raise ValueError("end_hour must be after start_hour")
        hours = []
        weights = []
        hour = start_hour
        step = 0.25  # quarter-hour buckets
        while hour < end_hour:
            hours.append(hour)
            weights.append(HOURLY_INTENSITY[int(hour) % 24])
            hour += step
        times = []
        for _draw in range(n):
            bucket = self.rng.choices(range(len(hours)), weights=weights, k=1)[0]
            t = (hours[bucket] + self.rng.uniform(0.0, step)) * 3600.0
            times.append(t)
        times.sort()
        return times

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(
        self,
        n_trips: int,
        start_hour: float = 6.0,
        end_hour: float = 12.0,
    ) -> List[TripRecord]:
        """A stream of ``n_trips`` trips sorted by pickup time.

        Defaults to 6am–12pm, the window the paper's T-Share comparison
        extracts (Section X-B2).
        """
        if n_trips < 0:
            raise ValueError(f"n_trips must be >= 0, got {n_trips!r}")
        times = self._sample_pickup_times(n_trips, start_hour, end_hour)
        trips: List[TripRecord] = []
        for trip_id, pickup_s in enumerate(times):
            pickup = self._sample_point()
            dropoff = self._sample_dropoff(pickup)
            # Degenerate trips (same snapped node) are re-drawn a few times.
            for _retry in range(5):
                if self.network.snap(pickup) != self.network.snap(dropoff):
                    break
                dropoff = self._sample_dropoff(pickup)
            trips.append(
                TripRecord(
                    trip_id=trip_id, pickup_s=pickup_s, pickup=pickup, dropoff=dropoff
                )
            )
        return trips
