"""Loader for the real NYC taxi trip CSV format.

The paper replays the public 2013 NYC taxi trip dataset
(http://www.andresmh.com/nyctaxitrips/).  That data cannot be shipped here,
but a user who has it can replay the real day: this loader reads the
``trip_data_*.csv`` column layout —

    medallion, hack_license, vendor_id, rate_code, store_and_fwd_flag,
    pickup_datetime, dropoff_datetime, passenger_count, trip_time_in_secs,
    trip_distance, pickup_longitude, pickup_latitude,
    dropoff_longitude, dropoff_latitude

— into :class:`~repro.workloads.nyc.TripRecord` objects, with the cleaning
the paper's replay needs: rows with zero/garbage coordinates are dropped,
coordinates outside an optional bounding box are dropped, and pickups are
converted to seconds since the day's midnight.
"""

from __future__ import annotations

import csv
import datetime as _dt
import pathlib
from typing import Iterable, List, Optional, Union

from ..geo import BoundingBox, GeoPoint
from .nyc import TripRecord

PathLike = Union[str, pathlib.Path]

#: Accepted datetime layouts (the 2013 dump uses the first).
_DATETIME_FORMATS = ("%Y-%m-%d %H:%M:%S", "%m/%d/%Y %H:%M:%S", "%m/%d/%Y %H:%M")


def _parse_datetime(text: str) -> Optional[_dt.datetime]:
    for fmt in _DATETIME_FORMATS:
        try:
            return _dt.datetime.strptime(text.strip(), fmt)
        except ValueError:
            continue
    return None


def load_nyc_trips_csv(
    path: PathLike,
    bbox: Optional[BoundingBox] = None,
    max_trips: Optional[int] = None,
    day: Optional[_dt.date] = None,
) -> List[TripRecord]:
    """Read taxi trips from a NYC-format CSV.

    ``bbox`` drops trips with an endpoint outside the box (GPS noise in the
    real data routinely lands in the Atlantic); ``day`` keeps only pickups on
    that calendar date (the paper replays 2013-03-07); ``max_trips`` caps the
    result.  Returned trips are sorted by pickup time, timed as seconds since
    the (first seen or requested) day's midnight.
    """
    path = pathlib.Path(path)
    records: List[TripRecord] = []
    anchor_midnight: Optional[_dt.datetime] = (
        _dt.datetime.combine(day, _dt.time()) if day is not None else None
    )
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            when = _parse_datetime(row.get("pickup_datetime", "") or "")
            if when is None:
                continue
            if day is not None and when.date() != day:
                continue
            try:
                pickup = GeoPoint(
                    float(row["pickup_latitude"]), float(row["pickup_longitude"])
                )
                dropoff = GeoPoint(
                    float(row["dropoff_latitude"]), float(row["dropoff_longitude"])
                )
            except (KeyError, ValueError):
                continue
            if pickup.lat == 0.0 or dropoff.lat == 0.0:
                continue  # the dataset's "no GPS" sentinel
            if bbox is not None and not (
                bbox.contains(pickup) and bbox.contains(dropoff)
            ):
                continue
            if anchor_midnight is None:
                anchor_midnight = _dt.datetime.combine(when.date(), _dt.time())
            pickup_s = (when - anchor_midnight).total_seconds()
            records.append(
                TripRecord(
                    trip_id=len(records),
                    pickup_s=pickup_s,
                    pickup=pickup,
                    dropoff=dropoff,
                )
            )
            if max_trips is not None and len(records) >= max_trips:
                break
    records.sort(key=lambda trip: trip.pickup_s)
    # Re-number after the sort so ids follow pickup order.
    return [
        TripRecord(
            trip_id=index,
            pickup_s=trip.pickup_s,
            pickup=trip.pickup,
            dropoff=trip.dropoff,
        )
        for index, trip in enumerate(records)
    ]
