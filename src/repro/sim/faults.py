"""Composable, seedable fault injection for the simulator.

Agent-based ride-share platforms (HRSim, RidePy) treat failure dynamics —
cancellations, no-shows, degraded service — as first-class simulation
inputs.  This module brings that to the XAR replay loop: *fault policies*
are injected through the adapter layer, so neither the engine nor the
simulator's control flow knows whether it is running on clean or hostile
infrastructure.

Policies (each with its own deterministic RNG derived from the adapter
seed, so runs replay bit-identically):

* :class:`RouterFault` — the routing back-end fails transiently
  (``NoPathError``) or stalls (latency spikes) on the shortest-path-bound
  operations (create / book); optionally stalls search too, modelling a
  shared ETA service;
* :class:`TrackingDropout` — whole ``track_all`` sweeps are dropped (GPS /
  telemetry outage), leaving obsolete clusters stale;
* :class:`DriverCancellation` — per processed request, a random
  not-yet-departed ride is withdrawn (replaces the legacy
  ``SimulatorConfig.cancellation_rate`` draw);
* :class:`IndexCorruption` — random ⟨ride, eta⟩ tuples vanish from the
  cluster index (lost updates / partial failures), the damage class the
  invariant auditor detects and heals.

Compose them with :class:`FaultInjectingAdapter`::

    adapter = FaultInjectingAdapter(
        XARAdapter(engine),
        policies=[RouterFault(rate=0.05), TrackingDropout(rate=0.1),
                  DriverCancellation(rate=0.02), IndexCorruption(rate=0.01)],
        seed=7,
    )
    report = RideShareSimulator(adapter, config).run(requests)
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..core.request import RideRequest
from ..exceptions import NoPathError, TransientFaultError, WorkerCrashError
from ..geo import GeoPoint


@dataclass
class FaultContext:
    """What a policy sees when it fires: its RNG and the world."""

    rng: random.Random
    adapter: "FaultInjectingAdapter"
    now_s: float = 0.0

    @property
    def engine(self) -> Optional[Any]:
        """The raw XAREngine under the adapter stack, if any."""
        return self.adapter.raw_engine()


class FaultPolicy:
    """Base class: every hook is a no-op; override what the fault touches."""

    name = "fault"

    def __init__(self) -> None:
        self.injections = 0

    def on_request(self, ctx: FaultContext) -> None:
        """Fires once per processed request (before its operations)."""

    def before_create(self, ctx: FaultContext) -> None:
        """May raise to fail the create call."""

    def before_book(self, ctx: FaultContext) -> None:
        """May raise to fail the book call."""

    def before_search(self, ctx: FaultContext) -> None:
        """May raise/stall to fail the search call."""

    def allow_track(self, ctx: FaultContext) -> bool:
        """Return False to drop this track sweep."""
        return True


class RouterFault(FaultPolicy):
    """Transient routing failures and latency spikes.

    ``rate`` — probability a create/book call raises ``NoPathError``
    (transient: an immediate retry re-rolls the dice);
    ``latency_rate``/``latency_s`` — probability and duration of a stall
    injected into create/book (and search when ``stall_search``), which
    per-operation deadlines are meant to catch.
    """

    name = "router"

    def __init__(
        self,
        rate: float = 0.05,
        latency_rate: float = 0.0,
        latency_s: float = 0.0,
        stall_search: bool = False,
        sleep=time.sleep,
    ):
        super().__init__()
        if not (0.0 <= rate <= 1.0) or not (0.0 <= latency_rate <= 1.0):
            raise ValueError("fault rates must be within [0, 1]")
        self.rate = rate
        self.latency_rate = latency_rate
        self.latency_s = latency_s
        self.stall_search = stall_search
        self._sleep = sleep

    def _roll(self, ctx: FaultContext) -> None:
        if self.latency_rate > 0 and ctx.rng.random() < self.latency_rate:
            self.injections += 1
            self._sleep(self.latency_s)
        if self.rate > 0 and ctx.rng.random() < self.rate:
            self.injections += 1
            raise NoPathError(-1, -1)

    def before_create(self, ctx: FaultContext) -> None:
        self._roll(ctx)

    def before_book(self, ctx: FaultContext) -> None:
        self._roll(ctx)

    def before_search(self, ctx: FaultContext) -> None:
        if not self.stall_search:
            return
        if self.latency_rate > 0 and ctx.rng.random() < self.latency_rate:
            self.injections += 1
            self._sleep(self.latency_s)
        if self.rate > 0 and ctx.rng.random() < self.rate:
            self.injections += 1
            raise TransientFaultError("search backend unavailable")


class TrackingDropout(FaultPolicy):
    """GPS/telemetry outage: whole track sweeps silently vanish."""

    name = "tracking"

    def __init__(self, rate: float = 0.1):
        super().__init__()
        if not (0.0 <= rate <= 1.0):
            raise ValueError("fault rates must be within [0, 1]")
        self.rate = rate

    def allow_track(self, ctx: FaultContext) -> bool:
        if self.rate > 0 and ctx.rng.random() < self.rate:
            self.injections += 1
            return False
        return True


class DriverCancellation(FaultPolicy):
    """A driver still on the road gives up; the ride is withdrawn."""

    name = "cancellation"

    def __init__(self, rate: float = 0.02):
        super().__init__()
        if not (0.0 <= rate <= 1.0):
            raise ValueError("fault rates must be within [0, 1]")
        self.rate = rate

    def on_request(self, ctx: FaultContext) -> None:
        if self.rate <= 0 or ctx.rng.random() >= self.rate:
            return
        pending = [
            ride
            for ride in ctx.adapter.active_rides()
            if getattr(ride, "arrival_s", float("inf")) > ctx.now_s
        ]
        if not pending:
            return
        ctx.adapter.cancel_injected(ctx.rng.choice(pending))
        self.injections += 1


class IndexCorruption(FaultPolicy):
    """Random cluster-index tuples vanish (lost update / partial failure).

    Only applies when the adapter stack bottoms out at an engine exposing a
    ``cluster_index``; silently inert otherwise (e.g. T-Share).
    """

    name = "index"

    def __init__(self, rate: float = 0.01, entries_per_event: int = 1):
        super().__init__()
        if not (0.0 <= rate <= 1.0):
            raise ValueError("fault rates must be within [0, 1]")
        self.rate = rate
        self.entries_per_event = max(1, entries_per_event)

    def on_request(self, ctx: FaultContext) -> None:
        if self.rate <= 0 or ctx.rng.random() >= self.rate:
            return
        engine = ctx.engine
        if engine is None:
            return
        index = engine.cluster_index
        populated = [
            cluster_id
            for cluster_id in range(index.n_clusters)
            if index.potential_count(cluster_id) > 0
        ]
        if not populated:
            return
        for _ in range(self.entries_per_event):
            cluster_id = ctx.rng.choice(populated)
            entries = list(index.all_rides(cluster_id))
            if not entries:
                continue
            victim = ctx.rng.choice(entries)
            index.remove(cluster_id, victim.ride_id)
            self.injections += 1


class WorkerCrash(FaultPolicy):
    """Seeded worker deaths: a mutating op raises
    :class:`~repro.exceptions.WorkerCrashError` instead of running.

    Three flavours, matching the windows durability must close:

    * ``rate`` — the op dies *before* it starts (crash between dequeue and
      execute; nothing logged, nothing applied);
    * ``mid_book_rate`` — arms the engine's one-shot ``fault_hook`` so the
      booking dies **between its WAL append + transactional snapshot and
      the route splice**: the op is on disk but not applied, the exact gap
      crash recovery replays forward;
    * ``kill=True`` — process mode: instead of raising in the caller, the
      policy SIGKILLs a random shard *subprocess* through the stack's
      ``crash_shard(victim, kill=True)`` hook (the op then proceeds against
      the dying fleet — in-flight RPCs see EOF exactly as a real crash).
      Falls back to the in-process raise when the stack has no
      ``crash_shard`` (e.g. a bare engine).

    Only meaningful on a stack with a durability layer underneath (a plain
    engine cannot recover); the service's failover supervisor — thread
    router or process supervisor — catches the death, replays the shard's
    WAL and resumes.
    """

    name = "crash"

    def __init__(self, rate: float = 0.0, mid_book_rate: float = 0.0,
                 kill: bool = False):
        super().__init__()
        if not (0.0 <= rate <= 1.0) or not (0.0 <= mid_book_rate <= 1.0):
            raise ValueError("fault rates must be within [0, 1]")
        self.rate = rate
        self.mid_book_rate = mid_book_rate
        self.kill = kill

    def _kill_one(self, ctx: FaultContext, *, mid_book: bool) -> bool:
        """SIGKILL flavour: crash a random shard via the stack's own chaos
        hook; False when the stack cannot kill (caller raises instead)."""
        stack = ctx.adapter.inner
        crash_shard = getattr(stack, "crash_shard", None)
        n_shards = getattr(stack, "n_shards", 0)
        if crash_shard is None or not n_shards:
            return False
        victim = ctx.rng.randrange(n_shards)
        try:
            crash_shard(victim, mid_book=mid_book, kill=True)
        except Exception:  # noqa: BLE001 - chaos must never take down the run
            return False
        self.injections += 1
        return True

    def _roll(self, ctx: FaultContext, operation: str) -> None:
        if self.rate > 0 and ctx.rng.random() < self.rate:
            if self.kill and self._kill_one(ctx, mid_book=False):
                return
            self.injections += 1
            raise WorkerCrashError(f"injected worker crash before {operation}")

    def before_create(self, ctx: FaultContext) -> None:
        self._roll(ctx, "create")

    def before_book(self, ctx: FaultContext) -> None:
        if self.mid_book_rate > 0 and ctx.rng.random() < self.mid_book_rate:
            if self.kill and self._kill_one(ctx, mid_book=True):
                return
            engine = ctx.engine
            if engine is not None:
                self.injections += 1

                def hook(point: str) -> None:
                    if point == "book:post-snapshot":
                        engine.fault_hook = None
                        raise WorkerCrashError(f"injected crash at {point}")

                engine.fault_hook = hook
                return
        self._roll(ctx, "book")


class TornWrite(FaultPolicy):
    """Torn tail on crash: the dying shard's WAL loses random tail bytes.

    Models the difference between a process death (flushed bytes survive)
    and a power cut (the last, not-yet-fsynced frames are half-written).
    The policy itself never fires during normal operation — call
    :meth:`maybe_tear` on the WAL path *after* a crash, before recovery
    runs; with probability ``rate`` it truncates the file at a uniformly
    random byte offset past the header.  Recovery must then detect the torn
    tail via CRC framing and resume from the last complete record.
    """

    name = "torn-write"

    def __init__(self, rate: float = 1.0, max_tear_bytes: int = 256):
        super().__init__()
        if not (0.0 <= rate <= 1.0):
            raise ValueError("fault rates must be within [0, 1]")
        self.rate = rate
        self.max_tear_bytes = max(1, max_tear_bytes)
        self.rng = random.Random(0xBAD5EED)

    def seed(self, seed: int) -> "TornWrite":
        self.rng = random.Random(seed)
        return self

    def maybe_tear(self, wal_path: str) -> int:
        """Truncate the WAL at a random byte; returns bytes torn off (0 =
        the dice said no, or the log holds nothing beyond its header)."""
        import os

        from ..durability.wal import iter_frames

        if self.rate <= 0 or self.rng.random() >= self.rate:
            return 0
        size = os.path.getsize(wal_path)
        frames = iter_frames(wal_path)
        try:
            next(frames)  # header
            second = next(frames)
        except StopIteration:
            return 0  # header only (or less): nothing to tear
        # Never tear into the header frame — a destroyed header is file
        # corruption, not a torn tail; a power cut can also only lose bytes
        # near the (un-fsynced) end, hence the max_tear_bytes bound.
        header_end = second.offset
        if header_end >= size:
            return 0
        tear_at = self.rng.randrange(
            max(header_end, size - self.max_tear_bytes), size
        )
        with open(wal_path, "r+b") as handle:
            handle.truncate(tear_at)
        self.injections += 1
        return size - tear_at


class FaultInjectingAdapter:
    """EngineAdapter decorator threading fault policies through every op."""

    def __init__(
        self,
        inner: Any,
        policies: Sequence[FaultPolicy],
        seed: int = 0,
    ):
        self.inner = inner
        self.policies = list(policies)
        self.name = getattr(inner, "name", "engine")
        #: One independent RNG per policy so adding a policy does not change
        #: the draws of the others (replayability under composition).  The
        #: derived seed avoids str hashing, which is randomized per process.
        self._contexts = [
            FaultContext(rng=random.Random(seed * 1_000_003 + index), adapter=self)
            for index, _policy in enumerate(self.policies)
        ]
        self.n_cancelled = 0

    # ------------------------------------------------------------------
    # Simulator hooks
    # ------------------------------------------------------------------
    def on_request(self, now_s: float) -> None:
        """Per-request fault pulse (cancellations, index corruption, ...)."""
        for policy, ctx in zip(self.policies, self._contexts):
            ctx.now_s = now_s
            policy.on_request(ctx)

    def cancel_injected(self, ride: Any) -> None:
        """Cancellation performed *by a policy* (counted separately)."""
        self.inner.cancel(ride)
        self.n_cancelled += 1

    def fault_stats(self) -> Dict[str, int]:
        return {policy.name: policy.injections for policy in self.policies}

    def raw_engine(self) -> Optional[Any]:
        seen = set()
        node: Any = self.inner
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if hasattr(node, "cluster_index") and hasattr(node, "rides"):
                return node
            node = getattr(node, "engine", None) or getattr(node, "inner", None)
        return None

    # ------------------------------------------------------------------
    # EngineAdapter protocol
    # ------------------------------------------------------------------
    def create(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
        shift_end_s: Optional[float] = None,
    ) -> Any:
        for policy, ctx in zip(self.policies, self._contexts):
            policy.before_create(ctx)
        return self.inner.create(
            source, destination, depart_s,
            seats=seats, detour_limit_m=detour_limit_m,
            shift_end_s=shift_end_s,
        )

    def search(self, request: RideRequest, k: Optional[int] = None) -> List[Any]:
        for policy, ctx in zip(self.policies, self._contexts):
            policy.before_search(ctx)
        return self.inner.search(request, k)

    def book(self, request: RideRequest, match: Any) -> Any:
        for policy, ctx in zip(self.policies, self._contexts):
            policy.before_book(ctx)
        return self.inner.book(request, match)

    def track_all(self, now_s: float) -> int:
        for policy, ctx in zip(self.policies, self._contexts):
            ctx.now_s = now_s
            if not policy.allow_track(ctx):
                return 0
        return self.inner.track_all(now_s)

    def cancel(self, ride: Any) -> None:
        self.inner.cancel(ride)

    def active_rides(self) -> List[Any]:
        return self.inner.active_rides()

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


def default_fault_policies(
    router_rate: float = 0.05,
    tracking_rate: float = 0.1,
    cancellation_rate: float = 0.02,
    corruption_rate: float = 0.01,
) -> List[FaultPolicy]:
    """The four-policy suite at the acceptance-test rates."""
    return [
        RouterFault(rate=router_rate),
        TrackingDropout(rate=tracking_rate),
        DriverCancellation(rate=cancellation_rate),
        IndexCorruption(rate=corruption_rate),
    ]
