"""Occupancy and vehicle-distance accounting.

T-Share's stated objective is reducing the overall distance travelled, and
Agatz et al. (the paper's related work) optimise total system-wide vehicle
miles.  These helpers measure both on a finished XAR engine:

* :func:`ride_occupancy_timeline` — occupants per route interval, derived
  from the ride's pickup/drop-off via-points;
* :func:`vehicle_km` / :func:`passenger_km` — totals across rides;
* :func:`occupancy_stats` — the distance-weighted mean occupancy and the
  passenger-km / vehicle-km utilisation ratio.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core import XAREngine
from ..core.ride import Ride


def ride_occupancy_timeline(ride: Ride) -> List[Tuple[float, float, int]]:
    """(start_offset_m, end_offset_m, occupants) intervals along the route.

    The driver counts as one occupant; each pickup via-point adds one and
    each drop-off removes one.  Interval boundaries are via-point offsets.
    """
    boundaries: List[Tuple[float, int]] = []
    for via in ride.via_points:
        offset = ride.offset_at_index(via.route_index)
        if via.label == "pickup":
            boundaries.append((offset, +1))
        elif via.label == "dropoff":
            boundaries.append((offset, -1))
    boundaries.sort()

    timeline: List[Tuple[float, float, int]] = []
    occupants = 1  # the driver
    cursor = 0.0
    for offset, delta in boundaries:
        if offset > cursor:
            timeline.append((cursor, offset, occupants))
            cursor = offset
        occupants += delta
        if occupants < 1:
            raise ValueError(
                f"ride {ride.ride_id}: occupancy dropped below the driver "
                "(drop-off before pickup?)"
            )
    if cursor < ride.length_m:
        timeline.append((cursor, ride.length_m, occupants))
    return timeline


def _all_rides(engine: XAREngine) -> List[Ride]:
    return list(engine.rides.values()) + list(engine.completed_rides.values())


def vehicle_km(engine: XAREngine) -> float:
    """Total distance driven by every ride in the system, km."""
    return sum(ride.length_m for ride in _all_rides(engine)) / 1000.0


def passenger_km(engine: XAREngine) -> float:
    """Total occupant-distance, km (driver included, per occupancy)."""
    total_m = 0.0
    for ride in _all_rides(engine):
        for start, end, occupants in ride_occupancy_timeline(ride):
            total_m += (end - start) * occupants
    return total_m / 1000.0


def occupancy_stats(engine: XAREngine) -> Dict[str, float]:
    """Distance-weighted occupancy summary across all rides."""
    vkm = vehicle_km(engine)
    pkm = passenger_km(engine)
    rides = _all_rides(engine)
    peak = 1
    for ride in rides:
        for _start, _end, occupants in ride_occupancy_timeline(ride):
            peak = max(peak, occupants)
    return {
        "rides": float(len(rides)),
        "vehicle_km": vkm,
        "passenger_km": pkm,
        "mean_occupancy": (pkm / vkm) if vkm > 0 else float("nan"),
        "peak_occupancy": float(peak),
    }
