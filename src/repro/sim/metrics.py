"""Timing/quality metrics collected by the simulator.

All timings are wall-clock seconds from ``time.perf_counter``; helper
functions turn them into the percentile curves and CDFs the paper plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


def percentile(samples: Sequence[float], q: float) -> float:
    """q-th percentile (0..100), linear interpolation; NaN when empty."""
    if not samples:
        return float("nan")
    if not (0.0 <= q <= 100.0):
        raise ValueError(f"percentile q out of range: {q!r}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def cdf_points(samples: Sequence[float], n_points: int = 100) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    step = max(1, n // n_points)
    for index in range(0, n, step):
        points.append((ordered[index], (index + 1) / n))
    points.append((ordered[-1], 1.0))
    return points


def fraction_below(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples <= threshold (NaN when empty)."""
    if not samples:
        return float("nan")
    return sum(1 for s in samples if s <= threshold) / len(samples)


@dataclass
class OperationTimings:
    """Per-operation wall-clock samples (seconds)."""

    search_s: List[float] = field(default_factory=list)
    create_s: List[float] = field(default_factory=list)
    book_s: List[float] = field(default_factory=list)

    def summary(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for name, samples in (
            ("search", self.search_s),
            ("create", self.create_s),
            ("book", self.book_s),
        ):
            if samples:
                out[name] = {
                    "count": float(len(samples)),
                    "mean_ms": 1000.0 * sum(samples) / len(samples),
                    "p50_ms": 1000.0 * percentile(samples, 50),
                    "p95_ms": 1000.0 * percentile(samples, 95),
                    "p99_ms": 1000.0 * percentile(samples, 99),
                    "max_ms": 1000.0 * max(samples),
                }
            else:
                out[name] = {"count": 0.0}
        return out


@dataclass
class SimulationReport:
    """Everything one simulation run produced."""

    engine_name: str
    n_requests: int
    n_matched: int
    n_booked: int
    n_created: int
    timings: OperationTimings
    #: Matches returned per search (the paper's multiple-options property).
    matches_per_search: List[int] = field(default_factory=list)
    #: |actual - estimated| booking detours, metres (XAR only; Fig. 3a).
    detour_approx_errors_m: List[float] = field(default_factory=list)
    #: Walking incurred by booked requesters, metres (XAR only).
    walk_distances_m: List[float] = field(default_factory=list)
    #: Rides withdrawn by the cancellation injector.
    n_cancelled: int = 0
    #: Bookings that failed mid-splice and were rolled back (transactional
    #: booking audit trail; XAR only).
    n_rollbacks: int = 0
    #: Requests served per degradation tier (ResilientEngine only):
    #: optimized / grid_fallback / create_on_miss.
    degradation_tiers: Dict[str, int] = field(default_factory=dict)
    #: Injected faults per policy name (fault-injected runs only).
    fault_injections: Dict[str, int] = field(default_factory=dict)
    #: Resilience counters: retries, deadline violations, breaker trips, ...
    resilience: Dict[str, float] = field(default_factory=dict)
    #: Invariant-audit counters: sweeps, violations_found, healed,
    #: post_run_violations.
    audit: Dict[str, int] = field(default_factory=dict)

    @property
    def match_rate(self) -> float:
        return self.n_matched / self.n_requests if self.n_requests else float("nan")

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"engine            : {self.engine_name}",
            f"requests          : {self.n_requests}",
            f"matched / booked  : {self.n_matched} / {self.n_booked}"
            f"  (match rate {100.0 * self.match_rate:.1f}%)",
            f"rides created     : {self.n_created}",
        ]
        for op, stats in self.timings.summary().items():
            if stats.get("count"):
                lines.append(
                    f"{op:<7} ms        : mean {stats['mean_ms']:.3f}"
                    f"  p95 {stats['p95_ms']:.3f}  max {stats['max_ms']:.3f}"
                    f"  (n={int(stats['count'])})"
                )
        if self.detour_approx_errors_m:
            errors = self.detour_approx_errors_m
            lines.append(
                f"detour approx err : mean {sum(errors)/len(errors):.0f} m"
                f"  p98 {percentile(errors, 98):.0f} m  max {max(errors):.0f} m"
            )
        if self.n_cancelled:
            lines.append(f"rides cancelled   : {self.n_cancelled}")
        if self.n_rollbacks:
            lines.append(f"booking rollbacks : {self.n_rollbacks}")
        if self.degradation_tiers:
            tiers = self.degradation_tiers
            lines.append(
                "served by tier    : "
                f"optimized {tiers.get('optimized', 0)}"
                f" / grid-fallback {tiers.get('grid_fallback', 0)}"
                f" / create-on-miss {tiers.get('create_on_miss', 0)}"
            )
        if self.fault_injections:
            injected = ", ".join(
                f"{name}={count}" for name, count in sorted(self.fault_injections.items())
            )
            lines.append(f"faults injected   : {injected}")
        if self.resilience:
            lines.append(
                "resilience        : "
                f"retries {self.resilience.get('retries', 0)}, "
                f"deadline blows {self.resilience.get('deadline_violations', 0)}, "
                f"breaker trips {self.resilience.get('breaker_trips', 0)}, "
                f"fallback searches {self.resilience.get('fallback_searches', 0)}"
            )
        if self.audit:
            lines.append(
                "invariant audit   : "
                f"{self.audit.get('sweeps', 0)} sweeps, "
                f"{self.audit.get('violations_found', 0)} violations found, "
                f"{self.audit.get('healed', 0)} healed, "
                f"{self.audit.get('post_run_violations', 0)} post-run"
            )
        return "\n".join(lines)
