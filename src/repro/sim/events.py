"""Event-driven simulation: exact-time tracking.

The replay loop (:mod:`~repro.sim.simulator`) tracks rides on a fixed
simulated cadence — cheap, but a ride can serve a stale match for up to one
sweep interval.  :class:`EventDrivenSimulator` instead schedules a tracking
event at **every pass-through cluster's ETA** of every ride, so obsolescence
happens at exactly the moment the paper's Section VIII-A semantics demand,
plus a completion event at each arrival.

XAR-specific (it reads the engine's ride index to know the ETAs); the
periodic simulator remains the engine-agnostic workhorse.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..core import XAREngine
from ..core.request import RideRequest
from ..exceptions import BookingError
from .metrics import OperationTimings, SimulationReport


@dataclass
class EventDrivenSimulator:
    """Replays requests with per-cluster-crossing tracking events."""

    engine: XAREngine
    k_matches: Optional[int] = None
    create_on_miss: bool = True

    def run(self, requests: Iterable[RideRequest]) -> SimulationReport:
        timings = OperationTimings()
        matches_per_search: List[int] = []
        detour_errors: List[float] = []
        walks: List[float] = []
        n_requests = n_matched = n_booked = n_created = 0

        counter = itertools.count()
        heap: List[Tuple[float, int, str, object]] = []
        for request in requests:
            heapq.heappush(
                heap, (request.window_start_s, next(counter), "request", request)
            )

        def schedule_ride_events(ride_id: int) -> None:
            entry = self.engine.ride_entries.get(ride_id)
            ride = self.engine.rides.get(ride_id)
            if entry is None or ride is None:
                return
            for visit in entry.pass_through:
                heapq.heappush(
                    heap, (visit.eta_s, next(counter), "track", ride_id)
                )
            heapq.heappush(
                heap, (ride.arrival_s + 1e-3, next(counter), "track", ride_id)
            )

        while heap:
            now, _seq, kind, payload = heapq.heappop(heap)
            if kind == "track":
                ride_id = payload
                if ride_id not in self.engine.rides:
                    continue
                previous = self.engine.tracked_to.get(ride_id)
                if previous is not None and now < previous:
                    continue  # booking re-timed the route; stale event
                self.engine.track(ride_id, now)
                continue

            request = payload
            n_requests += 1
            t0 = time.perf_counter()
            matches = self.engine.search(request, self.k_matches)
            timings.search_s.append(time.perf_counter() - t0)
            matches_per_search.append(len(matches))

            booked = False
            if matches:
                n_matched += 1
                for match in matches:
                    t0 = time.perf_counter()
                    try:
                        record = self.engine.book(request, match)
                    except BookingError:
                        timings.book_s.append(time.perf_counter() - t0)
                        continue
                    timings.book_s.append(time.perf_counter() - t0)
                    booked = True
                    n_booked += 1
                    detour_errors.append(record.approximation_error_m)
                    walks.append(record.walk_source_m + record.walk_destination_m)
                    # The splice changed the route; refresh tracking events.
                    schedule_ride_events(match.ride_id)
                    break
            if not booked and self.create_on_miss:
                t0 = time.perf_counter()
                try:
                    ride = self.engine.create_ride(
                        request.source, request.destination, now
                    )
                except Exception:
                    ride = None
                timings.create_s.append(time.perf_counter() - t0)
                if ride is not None:
                    n_created += 1
                    schedule_ride_events(ride.ride_id)

        return SimulationReport(
            engine_name="XAR/event-driven",
            n_requests=n_requests,
            n_matched=n_matched,
            n_booked=n_booked,
            n_created=n_created,
            timings=timings,
            matches_per_search=matches_per_search,
            detour_approx_errors_m=detour_errors,
            walk_distances_m=walks,
        )
