"""The ride-share replay loop (paper Section X-A2).

For each request in pickup-time order: search for existing rides; if matches
exist, book the best one; otherwise create a new ride from the request and
make it available to be shared.  Tracking runs on a fixed simulated-time
cadence so rides on the move stop matching clusters behind them.

Look-to-book behaviour is a first-class parameter: ``looks_per_book`` extra
searches are issued per request before the booking decision, reproducing the
paper's look-to-book experiments (Figure 5b) and the MMTP integration regime.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from ..core.booking import BookingRecord
from ..core.request import RideRequest
from ..exceptions import XARError
from .adapters import EngineAdapter
from .metrics import OperationTimings, SimulationReport


@dataclass
class SimulatorConfig:
    """Knobs of one replay run."""

    #: Return at most k matches per search (None = all, the paper's setting).
    k_matches: Optional[int] = None
    #: Additional "look" searches per request (look-to-book ratio - 1).
    looks_per_book: int = 0
    #: Simulated seconds between track_all sweeps (0 disables tracking).
    track_every_s: float = 300.0
    #: Create a ride from unmatched requests (the paper's policy).
    create_on_miss: bool = True
    #: Probability (per processed request) that one random not-yet-departed
    #: ride is withdrawn — driver cancellations, a dynamic-scenario stressor.
    #: Legacy knob: prefer a :class:`repro.sim.faults.DriverCancellation`
    #: policy on a :class:`repro.sim.faults.FaultInjectingAdapter`.
    cancellation_rate: float = 0.0
    #: Seed for the cancellation draws.
    cancellation_seed: int = 0
    #: Simulated seconds between invariant-audit sweeps (0 disables).  Needs
    #: the adapter stack to bottom out at an :class:`repro.core.XAREngine`.
    audit_every_s: float = 0.0
    #: Self-heal (re-index) when an audit sweep finds violations.
    audit_heal: bool = True


def _raw_engine(adapter: Any) -> Optional[Any]:
    """Unwrap an adapter stack down to the XAREngine, if there is one."""
    seen = set()
    node: Any = adapter
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if hasattr(node, "cluster_index") and hasattr(node, "rides"):
            return node
        node = getattr(node, "engine", None) or getattr(node, "inner", None)
    return None


class RideShareSimulator:
    """Replays request streams against any :class:`EngineAdapter`."""

    def __init__(self, adapter: EngineAdapter, config: Optional[SimulatorConfig] = None):
        self.adapter = adapter
        self.config = config or SimulatorConfig()

    def run(self, requests: Iterable[RideRequest]) -> SimulationReport:
        config = self.config
        timings = OperationTimings()
        matches_per_search = []
        detour_errors = []
        walks = []
        n_requests = n_matched = n_booked = n_created = 0
        n_cancelled = n_search_failures = n_create_failures = 0
        last_track = None
        last_audit = None
        cancel_rng = random.Random(config.cancellation_seed)

        # Optional invariant auditing: only when the adapter stack bottoms
        # out at an XAREngine (T-Share has its own structures).
        auditor = None
        audit_stats = {"sweeps": 0, "violations_found": 0, "healed": 0}
        if config.audit_every_s > 0:
            engine = _raw_engine(self.adapter)
            if engine is not None:
                from ..resilience.audit import InvariantAuditor

                auditor = InvariantAuditor(engine)

        def sweep_audit() -> None:
            audit_report = auditor.audit()
            audit_stats["sweeps"] += 1
            audit_stats["violations_found"] += len(audit_report.violations)
            if config.audit_heal and not audit_report.ok:
                audit_stats["healed"] += auditor.heal(audit_report)

        #: Per-request fault pulse (cancellation / corruption policies).
        on_request = getattr(self.adapter, "on_request", None)

        for request in requests:
            n_requests += 1
            now = request.window_start_s
            if config.track_every_s > 0 and (
                last_track is None or now - last_track >= config.track_every_s
            ):
                self.adapter.track_all(now)
                last_track = now
            if on_request is not None:
                on_request(now)
            if auditor is not None and (
                last_audit is None or now - last_audit >= config.audit_every_s
            ):
                sweep_audit()
                last_audit = now

            if config.cancellation_rate > 0 and cancel_rng.random() < config.cancellation_rate:
                # A driver still on the road gives up (the ride vanishes for
                # future matching; passengers already dropped are unaffected
                # in this model).
                pending = [
                    ride
                    for ride in self.adapter.active_rides()
                    if ride.arrival_s > now
                ]
                if pending:
                    self.adapter.cancel(cancel_rng.choice(pending))
                    n_cancelled += 1

            # Extra looks first (high look-to-book regimes).  A search that
            # fails (injected outage) counts as zero matches — the request
            # degrades to create-on-miss rather than killing the replay.
            for _look in range(config.looks_per_book):
                t0 = time.perf_counter()
                try:
                    self.adapter.search(request, config.k_matches)
                except XARError:
                    pass
                timings.search_s.append(time.perf_counter() - t0)

            t0 = time.perf_counter()
            try:
                matches = self.adapter.search(request, config.k_matches)
            except XARError:
                matches = []
                n_search_failures += 1
            timings.search_s.append(time.perf_counter() - t0)
            matches_per_search.append(len(matches))

            if matches:
                n_matched += 1
                booked = False
                for match in matches:  # best-first; fall through stale ones
                    t0 = time.perf_counter()
                    try:
                        record = self.adapter.book(request, match)
                    except Exception:
                        timings.book_s.append(time.perf_counter() - t0)
                        continue
                    timings.book_s.append(time.perf_counter() - t0)
                    booked = True
                    if isinstance(record, BookingRecord):
                        detour_errors.append(record.approximation_error_m)
                        walks.append(
                            record.walk_source_m + record.walk_destination_m
                        )
                    break
                if booked:
                    n_booked += 1
                    continue
            if config.create_on_miss:
                t0 = time.perf_counter()
                try:
                    self.adapter.create(request.source, request.destination, now)
                except XARError:
                    # Routing back-end down even for the fresh ride: the
                    # request goes unserved but the replay survives.
                    n_create_failures += 1
                else:
                    n_created += 1
                timings.create_s.append(time.perf_counter() - t0)

        # Post-run audit: verify (and optionally heal) before reporting, so
        # "zero post-run violations" is a meaningful acceptance criterion.
        if auditor is not None:
            sweep_audit()  # heals (when enabled) anything since the last sweep
            audit_stats["post_run_violations"] = len(auditor.audit().violations)

        report = SimulationReport(
            engine_name=self.adapter.name,
            n_requests=n_requests,
            n_matched=n_matched,
            n_booked=n_booked,
            n_created=n_created,
            timings=timings,
            matches_per_search=matches_per_search,
            detour_approx_errors_m=detour_errors,
            walk_distances_m=walks,
            n_cancelled=n_cancelled,
        )
        if auditor is not None:
            report.audit = dict(audit_stats)

        # Fault/resilience accounting contributed by decorated adapters.
        fault_stats = getattr(self.adapter, "fault_stats", None)
        if fault_stats is not None:
            report.fault_injections = dict(fault_stats())
            report.n_cancelled += getattr(self.adapter, "n_cancelled", 0)
        resilience_stats = getattr(self.adapter, "resilience_stats", None)
        if resilience_stats is not None:
            stats = dict(resilience_stats())
            report.degradation_tiers = stats.pop("tiers", {})
            stats.pop("breaker_states", None)
            stats["search_failures"] = n_search_failures
            stats["create_failures"] = n_create_failures
            report.resilience = stats
        elif n_search_failures or n_create_failures:
            report.resilience = {
                "search_failures": n_search_failures,
                "create_failures": n_create_failures,
            }
        engine = _raw_engine(self.adapter)
        if engine is not None and hasattr(engine, "rollbacks"):
            report.n_rollbacks = len(engine.rollbacks)
        return report
