"""The ride-share replay loop (paper Section X-A2).

For each request in pickup-time order: search for existing rides; if matches
exist, book the best one; otherwise create a new ride from the request and
make it available to be shared.  Tracking runs on a fixed simulated-time
cadence so rides on the move stop matching clusters behind them.

Look-to-book behaviour is a first-class parameter: ``looks_per_book`` extra
searches are issued per request before the booking decision, reproducing the
paper's look-to-book experiments (Figure 5b) and the MMTP integration regime.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from ..core.booking import BookingRecord
from ..core.request import RideRequest
from .adapters import EngineAdapter
from .metrics import OperationTimings, SimulationReport


@dataclass
class SimulatorConfig:
    """Knobs of one replay run."""

    #: Return at most k matches per search (None = all, the paper's setting).
    k_matches: Optional[int] = None
    #: Additional "look" searches per request (look-to-book ratio - 1).
    looks_per_book: int = 0
    #: Simulated seconds between track_all sweeps (0 disables tracking).
    track_every_s: float = 300.0
    #: Create a ride from unmatched requests (the paper's policy).
    create_on_miss: bool = True
    #: Probability (per processed request) that one random not-yet-departed
    #: ride is withdrawn — driver cancellations, a dynamic-scenario stressor.
    cancellation_rate: float = 0.0
    #: Seed for the cancellation draws.
    cancellation_seed: int = 0


class RideShareSimulator:
    """Replays request streams against any :class:`EngineAdapter`."""

    def __init__(self, adapter: EngineAdapter, config: Optional[SimulatorConfig] = None):
        self.adapter = adapter
        self.config = config or SimulatorConfig()

    def run(self, requests: Iterable[RideRequest]) -> SimulationReport:
        config = self.config
        timings = OperationTimings()
        matches_per_search = []
        detour_errors = []
        walks = []
        n_requests = n_matched = n_booked = n_created = 0
        n_cancelled = 0
        last_track = None
        cancel_rng = random.Random(config.cancellation_seed)

        for request in requests:
            n_requests += 1
            now = request.window_start_s
            if config.track_every_s > 0 and (
                last_track is None or now - last_track >= config.track_every_s
            ):
                self.adapter.track_all(now)
                last_track = now

            if config.cancellation_rate > 0 and cancel_rng.random() < config.cancellation_rate:
                # A driver still on the road gives up (the ride vanishes for
                # future matching; passengers already dropped are unaffected
                # in this model).
                pending = [
                    ride
                    for ride in self.adapter.active_rides()
                    if ride.arrival_s > now
                ]
                if pending:
                    self.adapter.cancel(cancel_rng.choice(pending))
                    n_cancelled += 1

            # Extra looks first (high look-to-book regimes).
            for _look in range(config.looks_per_book):
                t0 = time.perf_counter()
                self.adapter.search(request, config.k_matches)
                timings.search_s.append(time.perf_counter() - t0)

            t0 = time.perf_counter()
            matches = self.adapter.search(request, config.k_matches)
            timings.search_s.append(time.perf_counter() - t0)
            matches_per_search.append(len(matches))

            if matches:
                n_matched += 1
                booked = False
                for match in matches:  # best-first; fall through stale ones
                    t0 = time.perf_counter()
                    try:
                        record = self.adapter.book(request, match)
                    except Exception:
                        timings.book_s.append(time.perf_counter() - t0)
                        continue
                    timings.book_s.append(time.perf_counter() - t0)
                    booked = True
                    if isinstance(record, BookingRecord):
                        detour_errors.append(record.approximation_error_m)
                        walks.append(
                            record.walk_source_m + record.walk_destination_m
                        )
                    break
                if booked:
                    n_booked += 1
                    continue
            if config.create_on_miss:
                t0 = time.perf_counter()
                self.adapter.create(request.source, request.destination, now)
                timings.create_s.append(time.perf_counter() - t0)
                n_created += 1

        return SimulationReport(
            engine_name=self.adapter.name,
            n_requests=n_requests,
            n_matched=n_matched,
            n_booked=n_booked,
            n_created=n_created,
            timings=timings,
            matches_per_search=matches_per_search,
            detour_approx_errors_m=detour_errors,
            walk_distances_m=walks,
            n_cancelled=n_cancelled,
        )
