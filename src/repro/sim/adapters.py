"""Uniform engine adapters for head-to-head simulation.

XAR and T-Share expose slightly different vocabularies (rides vs taxis,
walk-based vs detour-based match ranking).  The simulator drives both
through :class:`EngineAdapter`, which also makes the booking policy of each
system explicit:

* XAR books the match with the least total walking (Section X-A2);
* T-Share books the match with the least detour (it has no walking concept —
  taxis pick up at the door).

Adapters compose: :class:`repro.sim.faults.FaultInjectingAdapter` injects
fault policies around any adapter, and
:class:`repro.resilience.ResilientEngine` wraps one with retries, deadlines,
circuit breaking and tiered degradation.  Decorators expose the wrapped
adapter as ``.inner`` and the raw engine keeps being reachable through the
``.engine`` attribute chain (the simulator and auditor rely on this).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, runtime_checkable

from ..baselines import TShareEngine
from ..core import XAREngine
from ..core.request import RideRequest
from ..geo import GeoPoint


@runtime_checkable
class EngineAdapter(Protocol):
    """What the simulator needs from a ride-sharing engine.

    Runtime-checkable: ``isinstance(adapter, EngineAdapter)`` verifies the
    whole surface is present, which is what the conformance tests in
    ``tests/sim/test_adapter_conformance.py`` assert for every adapter and
    decorator — interface drift (an introspection method added to one
    adapter but not the others) fails there instead of deep inside a
    simulator run.
    """

    name: str

    def create(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
        shift_end_s: Optional[float] = None,
    ) -> Any:
        """Offer a new ride/taxi starting at ``depart_s``.

        ``seats`` and ``detour_limit_m`` default to the engine's configured
        values when None; engines without a per-ride detour budget (T-Share)
        accept and ignore ``detour_limit_m``.  ``shift_end_s`` is the
        driver's shift end: past it the ride retires from matching and
        drains its booked passengers (engines without shift semantics
        accept and ignore it).
        """
        ...

    def search(self, request: RideRequest, k: Optional[int] = None) -> List[Any]:
        """Feasible matches, best first."""
        ...

    def book(self, request: RideRequest, match: Any) -> Any:
        """Confirm a match."""
        ...

    def track_all(self, now_s: float) -> int:
        """Advance all rides to simulated time ``now_s``."""
        ...

    def cancel(self, ride: Any) -> None:
        """Withdraw a previously created ride (driver cancellation)."""
        ...

    def cancel_booking(self, request_id: int, ride_id: int) -> Any:
        """Cancel one passenger's booking: un-splice their via-points,
        release the seat, restore the detour budget exactly (engines
        without bookings raise)."""
        ...

    def active_rides(self) -> List[Any]:
        """Handles of rides currently in the system (for cancellation)."""
        ...

    def rollback_count(self) -> int:
        """Bookings that failed mid-splice and were rolled back (0 for
        engines without transactional booking)."""
        ...

    def index_stats(self) -> Dict[str, int]:
        """Cheap counters describing the engine's in-memory index."""
        ...


class XARAdapter:
    """Adapter over :class:`~repro.core.engine.XAREngine`."""

    name = "XAR"

    def __init__(self, engine: XAREngine):
        self.engine = engine

    def create(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
        shift_end_s: Optional[float] = None,
    ):
        return self.engine.create_ride(
            source,
            destination,
            departure_s=depart_s,
            seats=seats,
            detour_limit_m=detour_limit_m,
            shift_end_s=shift_end_s,
        )

    def search(self, request: RideRequest, k: Optional[int] = None):
        return self.engine.search(request, k)

    def book(self, request: RideRequest, match):
        return self.engine.book(request, match)

    def track_all(self, now_s: float) -> int:
        return self.engine.track_all(now_s)

    def cancel(self, ride) -> None:
        self.engine.remove_ride(ride.ride_id)

    def cancel_booking(self, request_id: int, ride_id: int):
        return self.engine.cancel_booking(request_id, ride_id)

    def active_rides(self):
        return list(self.engine.rides.values())

    def rollback_count(self) -> int:
        """Bookings that failed mid-splice and were rolled back."""
        return len(self.engine.rollbacks)

    def index_stats(self) -> Dict[str, int]:
        return self.engine.index_stats()


class TShareAdapter:
    """Adapter over :class:`~repro.baselines.tshare.engine.TShareEngine`."""

    name = "T-Share"

    def __init__(self, engine: TShareEngine):
        self.engine = engine

    def create(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
        shift_end_s: Optional[float] = None,
    ):
        # T-Share has a global detour policy, not a per-taxi budget, and no
        # shift model; both limits are accepted for protocol parity and
        # ignored.
        return self.engine.create_taxi(
            source, destination, departure_s=depart_s, seats=seats
        )

    def search(self, request: RideRequest, k: Optional[int] = None):
        return self.engine.search(request, k)

    def book(self, request: RideRequest, match):
        return self.engine.book(request, match)

    def track_all(self, now_s: float) -> int:
        return self.engine.track_all(now_s)

    def cancel(self, taxi) -> None:
        self.engine.remove_taxi(taxi.ride_id)

    def cancel_booking(self, request_id: int, ride_id: int):
        raise NotImplementedError(
            "T-Share bookings are not reversible (no via-point un-splice)"
        )

    def active_rides(self):
        return list(self.engine.taxis.values())

    def rollback_count(self) -> int:
        """T-Share books non-transactionally; nothing is ever rolled back."""
        return 0

    def index_stats(self) -> Dict[str, int]:
        return {
            "rides": len(self.engine.taxis),
            "cells": self.engine.cells.cell_count(),
            "cell_entries": self.engine.cells.total_entries(),
        }
