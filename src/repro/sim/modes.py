"""Transport-mode comparison (paper Section X-B3, Figure 6).

Serves the *same* request stream under four modes and reports the paper's
metrics — mean end-to-end travel time, walking time, waiting time, and the
number of cars needed:

* **Taxi** — every request gets its own car, door to door;
* **Public transport (PT)** — every request rides the synthetic GTFS network
  through the multimodal planner;
* **Ride sharing (RS)** — the XAR replay policy: book a shared ride when one
  matches, otherwise become a driver (one more car) whose ride others share;
* **RS + PT (aider mode)** — requests ride PT; segments that are infeasible
  (long walk / long wait) are patched with shared rides via XAR's aider
  mode; requests that PT + aider cannot serve drive themselves and offer
  their ride for sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core import XAREngine
from ..core.request import RideRequest
from ..discretization import DiscretizedRegion
from ..exceptions import BookingError, PlannerError, XARError
from ..mmtp import AiderMode, LegMode, MultiModalPlanner
from ..roadnet import dijkstra_path


@dataclass
class ModeMetrics:
    """Aggregated Fig. 6 metrics for one transport mode."""

    name: str
    travel_times_s: List[float] = field(default_factory=list)
    walk_times_s: List[float] = field(default_factory=list)
    wait_times_s: List[float] = field(default_factory=list)
    cars: int = 0
    unserved: int = 0
    #: Total distance driven by this mode's vehicles (the Agatz objective).
    vehicle_km: float = 0.0

    def add(self, travel_s: float, walk_s: float, wait_s: float) -> None:
        self.travel_times_s.append(travel_s)
        self.walk_times_s.append(walk_s)
        self.wait_times_s.append(wait_s)

    @property
    def served(self) -> int:
        return len(self.travel_times_s)

    def mean_travel_s(self) -> float:
        return _mean(self.travel_times_s)

    def mean_walk_s(self) -> float:
        return _mean(self.walk_times_s)

    def mean_wait_s(self) -> float:
        return _mean(self.wait_times_s)

    def row(self) -> Dict[str, float]:
        return {
            "travel_min": self.mean_travel_s() / 60.0,
            "walk_min": self.mean_walk_s() / 60.0,
            "wait_min": self.mean_wait_s() / 60.0,
            "cars": float(self.cars),
            "served": float(self.served),
            "unserved": float(self.unserved),
            "vehicle_km": self.vehicle_km,
        }


def _mean(samples: List[float]) -> float:
    return sum(samples) / len(samples) if samples else float("nan")


#: Assumed hail wait for a taxi (the dataset's metrics are per-trip only).
TAXI_PICKUP_WAIT_S = 180.0


def evaluate_taxi(region: DiscretizedRegion, requests: Iterable[RideRequest]) -> ModeMetrics:
    """Door-to-door single-occupancy taxi; one car per request."""
    network = region.network
    metrics = ModeMetrics(name="Taxi")
    for request in requests:
        try:
            source = network.snap(request.source)
            target = network.snap(request.destination)
            _length, path = dijkstra_path(network, source, target)
            drive_s = network.route_time_s(path)
        except XARError:
            metrics.unserved += 1
            continue
        metrics.add(
            travel_s=TAXI_PICKUP_WAIT_S + drive_s,
            walk_s=0.0,
            wait_s=TAXI_PICKUP_WAIT_S,
        )
        metrics.cars += 1
        metrics.vehicle_km += network.route_length_m(path) / 1000.0
    return metrics


def evaluate_public_transport(
    planner: MultiModalPlanner, requests: Iterable[RideRequest]
) -> ModeMetrics:
    """Pure PT through the multimodal planner; zero cars."""
    metrics = ModeMetrics(name="PT")
    for request in requests:
        try:
            plan = planner.plan(request.source, request.destination, request.window_start_s)
        except PlannerError:
            metrics.unserved += 1
            continue
        metrics.add(plan.travel_time_s, plan.walk_time_s, plan.wait_time_s)
    return metrics


def evaluate_ride_share(
    region: DiscretizedRegion, requests: Iterable[RideRequest]
) -> ModeMetrics:
    """XAR replay: book the least-walk match or become a driver."""
    engine = XAREngine(region)
    walk_speed = region.config.walk_speed_mps
    metrics = ModeMetrics(name="RS")
    for request in requests:
        engine.track_all(request.window_start_s)
        matches = engine.search(request)
        booked = None
        for match in matches:
            try:
                booked = engine.book(request, match)
                break
            except BookingError:
                continue
        if booked is not None:
            walk_s = (booked.walk_source_m + booked.walk_destination_m) / walk_speed
            at_pickup = request.window_start_s + booked.walk_source_m / walk_speed
            wait_s = max(0.0, booked.eta_pickup_s - at_pickup)
            ride_s = max(0.0, booked.eta_dropoff_s - booked.eta_pickup_s)
            metrics.add(travel_s=walk_s + wait_s + ride_s, walk_s=walk_s, wait_s=wait_s)
            continue
        # No share available: drive yourself, offer the ride to others.
        try:
            ride = engine.create_ride(
                request.source, request.destination, request.window_start_s
            )
        except XARError:
            metrics.unserved += 1
            continue
        metrics.cars += 1
        metrics.add(travel_s=ride.duration_s, walk_s=0.0, wait_s=0.0)
    metrics.vehicle_km = _engine_vehicle_km(engine)
    return metrics


def _engine_vehicle_km(engine: XAREngine) -> float:
    rides = list(engine.rides.values()) + list(engine.completed_rides.values())
    return sum(ride.length_m for ride in rides) / 1000.0


def evaluate_rs_pt(
    region: DiscretizedRegion,
    planner: MultiModalPlanner,
    requests: Iterable[RideRequest],
    max_walk_leg_m: float = 1000.0,
    max_wait_s: float = 600.0,
) -> ModeMetrics:
    """PT patched with shared rides (aider mode); self-drive as last resort.

    The paper's infeasibility thresholds: a single segment walking more than
    1 km or waiting more than 10 minutes.
    """
    engine = XAREngine(region)
    aider = AiderMode(
        planner,
        engine,
        max_walk_leg_m=max_walk_leg_m,
        max_wait_s=max_wait_s,
        book=True,
    )
    metrics = ModeMetrics(name="RS+PT")
    for request in requests:
        engine.track_all(request.window_start_s)
        try:
            plan = aider.improve(
                request.source, request.destination, request.window_start_s
            )
        except PlannerError:
            plan = None
        if plan is not None:
            still_infeasible = any(aider._leg_infeasible(leg) for leg in plan.legs)
            if not still_infeasible:
                metrics.add(plan.travel_time_s, plan.walk_time_s, plan.wait_time_s)
                continue
        # PT + aider could not produce a tolerable plan: self-drive and share.
        try:
            ride = engine.create_ride(
                request.source, request.destination, request.window_start_s
            )
        except XARError:
            metrics.unserved += 1
            continue
        metrics.cars += 1
        metrics.add(travel_s=ride.duration_s, walk_s=0.0, wait_s=0.0)
    metrics.vehicle_km = _engine_vehicle_km(engine)
    return metrics


def compare_modes(
    region: DiscretizedRegion,
    planner: MultiModalPlanner,
    requests: List[RideRequest],
) -> Dict[str, ModeMetrics]:
    """Run all four modes on the same request list (Fig. 6)."""
    return {
        "Taxi": evaluate_taxi(region, requests),
        "PT": evaluate_public_transport(planner, requests),
        "RS": evaluate_ride_share(region, requests),
        "RS+PT": evaluate_rs_pt(region, planner, requests),
    }
