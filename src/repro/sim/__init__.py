"""Simulation framework (paper Section X-A2).

Replays a request stream against a ride-sharing engine: for each request,
search for matching rides; book the best match if any (least walking for
XAR, least detour for T-Share), else create a new ride from the request.
Per-operation wall-clock timings and matching statistics are collected —
these are the raw series behind Figures 3, 4 and 5.
"""

from .adapters import EngineAdapter, TShareAdapter, XARAdapter
from .faults import (
    DriverCancellation,
    FaultInjectingAdapter,
    FaultPolicy,
    IndexCorruption,
    RouterFault,
    TornWrite,
    TrackingDropout,
    WorkerCrash,
    default_fault_policies,
)
from .metrics import OperationTimings, SimulationReport, percentile
from .simulator import RideShareSimulator, SimulatorConfig
from .events import EventDrivenSimulator

__all__ = [
    "EngineAdapter",
    "XARAdapter",
    "TShareAdapter",
    "FaultPolicy",
    "FaultInjectingAdapter",
    "RouterFault",
    "TrackingDropout",
    "DriverCancellation",
    "IndexCorruption",
    "TornWrite",
    "WorkerCrash",
    "default_fault_policies",
    "OperationTimings",
    "SimulationReport",
    "percentile",
    "RideShareSimulator",
    "SimulatorConfig",
    "EventDrivenSimulator",
]
