"""Per-cluster potential-ride lists (paper Section VI).

Each cluster C keeps tuples ⟨r, t⟩ — ride r can serve requests near C with an
estimated arrival time t — "in two different lists, one sorted in
non-decreasing order by the time of arrival, and the other sorted by the
unique ride identification numbers".

The ETA-sorted list answers the search window query in O(log n + answer);
the id-sorted list makes removal and membership checks O(log n).  One entry
is kept per (cluster, ride): when several pass-through clusters make the
same ride potential for C, the earliest ETA wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .sorted_list import SortedKeyList


@dataclass(frozen=True)
class PotentialRide:
    """One ⟨ride, eta⟩ tuple in a cluster's potential-ride lists."""

    ride_id: int
    eta_s: float


class _ClusterLists:
    """The two sorted orders over one cluster's potential rides."""

    __slots__ = ("by_eta", "by_ride")

    def __init__(self):
        self.by_eta: SortedKeyList[PotentialRide] = SortedKeyList(
            key=lambda entry: entry.eta_s
        )
        self.by_ride: SortedKeyList[PotentialRide] = SortedKeyList(
            key=lambda entry: entry.ride_id
        )


class ClusterRideIndex:
    """All clusters' potential-ride lists, with consistent dual ordering."""

    def __init__(self, n_clusters: int):
        if n_clusters < 0:
            raise ValueError(f"n_clusters must be >= 0, got {n_clusters!r}")
        self._lists: List[_ClusterLists] = [_ClusterLists() for _c in range(n_clusters)]

    @property
    def n_clusters(self) -> int:
        return len(self._lists)

    def add(self, cluster_id: int, ride_id: int, eta_s: float) -> None:
        """Insert (or improve) ride's entry at a cluster.

        If the ride is already potential for this cluster, the entry is
        replaced only when the new ETA is earlier.
        """
        lists = self._lists[cluster_id]
        existing = lists.by_ride.find_by_key(ride_id)
        if existing is not None:
            if eta_s >= existing.eta_s:
                return
            lists.by_ride.remove(existing)
            lists.by_eta.remove(existing)
        entry = PotentialRide(ride_id=ride_id, eta_s=eta_s)
        lists.by_eta.add(entry)
        lists.by_ride.add(entry)

    def update(self, cluster_id: int, ride_id: int, eta_s: float) -> None:
        """Insert or *replace* ride's entry at a cluster, whatever the ETA.

        :meth:`add` implements the paper's merge rule (earliest ETA wins),
        which is correct when several pass-through clusters contribute
        candidate ETAs for the same ride during one indexing pass.  It is
        wrong for *re*-indexing: a booking splice shifts schedules later,
        and keeping the stale earlier ETA pins the pre-booking schedule in
        the index forever.  Reindex paths must use ``update`` so the stored
        ETA always matches the recomputed schedule.
        """
        lists = self._lists[cluster_id]
        existing = lists.by_ride.find_by_key(ride_id)
        if existing is not None:
            if eta_s == existing.eta_s:
                return
            lists.by_ride.remove(existing)
            lists.by_eta.remove(existing)
        entry = PotentialRide(ride_id=ride_id, eta_s=eta_s)
        lists.by_eta.add(entry)
        lists.by_ride.add(entry)

    def remove(self, cluster_id: int, ride_id: int) -> bool:
        """Remove ride's entry at a cluster; True if it existed."""
        lists = self._lists[cluster_id]
        existing = lists.by_ride.find_by_key(ride_id)
        if existing is None:
            return False
        lists.by_ride.remove(existing)
        lists.by_eta.remove(existing)
        return True

    def purge_ride(self, ride_id: int) -> int:
        """Remove a ride's entries from *every* cluster list; returns count.

        The entry-driven :meth:`remove` path is O(log n) but trusts the
        ride's index entry to name the clusters it lives in; ``purge_ride``
        is the belt-and-braces sweep used by withdrawal and self-healing so
        that a corrupted or stale entry can never leave a cancelled ride
        discoverable.
        """
        purged = 0
        for cluster_id in range(len(self._lists)):
            if self.remove(cluster_id, ride_id):
                purged += 1
        return purged

    def eta(self, cluster_id: int, ride_id: int) -> Optional[float]:
        """The stored ETA of a ride at a cluster, if potential there."""
        existing = self._lists[cluster_id].by_ride.find_by_key(ride_id)
        return existing.eta_s if existing is not None else None

    def rides_in_window(
        self, cluster_id: int, start_s: float, end_s: float
    ) -> Iterator[PotentialRide]:
        """Binary search on the ETA-sorted list (the paper's Step 1 lookup)."""
        return self._lists[cluster_id].by_eta.irange(start_s, end_s)

    def count_in_window(
        self, cluster_id: int, start_s: float, end_s: float
    ) -> int:
        """How many potential rides fall in the ETA window — two bisects,
        no iteration.  Lets the search choose between scanning a window and
        probing a candidate set without paying for the scan first."""
        return self._lists[cluster_id].by_eta.count_in_range(start_s, end_s)

    def potential_count(self, cluster_id: int) -> int:
        return len(self._lists[cluster_id].by_ride)

    def all_rides(self, cluster_id: int) -> Iterator[PotentialRide]:
        return iter(self._lists[cluster_id].by_ride)

    def total_entries(self) -> int:
        """Total ⟨r, t⟩ tuples across clusters (a memory-footprint proxy)."""
        return sum(len(lists.by_ride) for lists in self._lists)

    def check_consistency(self) -> None:
        """Debug invariant: both orders contain identical entry sets."""
        for cluster_id, lists in enumerate(self._lists):
            a = sorted((e.ride_id, e.eta_s) for e in lists.by_eta)
            b = sorted((e.ride_id, e.eta_s) for e in lists.by_ride)
            if a != b:
                raise AssertionError(
                    f"cluster {cluster_id} dual lists diverged: {a} != {b}"
                )
