"""Flat struct-of-arrays search core with a spatio-temporal candidate hash.

The legacy search path walks per-ride Python objects: ``SortedKeyList`` →
``PotentialRide`` dataclasses → ``RideIndexEntry`` dicts → ``segment_for``
scans, paying interpreter overhead on every candidate.  This module stores
the same information as parallel primitive arrays so the hot stages become
C-speed numpy kernels over contiguous slices:

* **Per-cluster slab** — one row per (cluster, ride): ride id, stored ETA,
  cluster-level detour estimate, and the *precomputed feasibility bounds*
  the filter stage needs (pickup/drop-off segment choice plus that
  segment's bounding landmarks and on-route length, i.e. everything
  ``segment_for`` + ``_splice_estimate`` would otherwise recompute per
  candidate per search).
* **Spatio-temporal hash** — per slab, buckets keyed by (cluster cell,
  ETA time slice ``floor(eta / slice_s)``).  A window query shortlists the
  buckets overlapping the departure window in O(1)-ish hash/bisect work and
  refines only the two edge buckets to exact ETA bounds; interior buckets
  are in-window by construction.  This is the candidate-generation scheme
  of *When Hashing Met Matching* adapted to the XAR index.
* **Budget columns** — one global row per ride: seats available and the
  remaining detour budget, refreshed at every (re)index point, so the
  feasibility filter reads two gathers instead of 2×N attribute lookups.

Row storage is append + swap-remove (O(1) mutation); the sorted views the
queries need (by ride id for the R1∩R2 probe, by ETA for the window scan,
plus the bucket ranges) are rebuilt lazily per slab on first query after a
mutation — a create/book/track burst dirties slabs for free and the next
search pays one ``argsort`` per *touched* cluster.

The index is a strict mirror: every mutation flows through the same engine
seams that maintain ``ClusterRideIndex`` (index / unindex / reindex /
obsolescence / restore / purge), ``check_consistency``/``divergences``
compare the two, and the invariant auditor heals any drift by reindexing.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.engine import XAREngine
    from ..core.ride import Ride
    from .ride_index import RideIndexEntry

__all__ = ["FlatSearchIndex", "flat_search_rides"]

#: Float columns of a slab row.
F_ETA, F_DETOUR, F_SP_LEN, F_SD_LEN = 0, 1, 2, 3
_N_F = 4
#: Int columns of a slab row (-1 encodes "none"/"unknown landmark").
I_SEG_E, I_SEG_L, I_SP_A, I_SP_B, I_SD_A, I_SD_B = 0, 1, 2, 3, 4, 5
_N_I = 6

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)
_EMPTY_IDX = np.empty(0, dtype=np.intp)


def _segment_meta(entry: "RideIndexEntry", segment: int) -> Tuple[int, int, float]:
    """(start_landmark, end_landmark, length) of a segment, or the invalid
    triple that makes the vectorized splice fall back to the coarse
    cluster-level estimate — exactly when ``_splice_estimate`` returns None."""
    if 0 <= segment < len(entry.segments):
        meta = entry.segments[segment]
        return meta.start_landmark, meta.end_landmark, meta.length_m
    return -1, -1, 0.0


def _feasibility_row(
    entry: "RideIndexEntry", cluster_id: int, eta_s: float
) -> Tuple[Tuple[float, float, float, float], Tuple[int, int, int, int, int, int]]:
    """One slab row's column values for a (ride, cluster) pair."""
    info = entry.reachable.get(cluster_id)
    detour = info.detour_estimate_m if info is not None else float("inf")
    seg_e = entry.segment_for(cluster_id, earliest=True)
    seg_l = entry.segment_for(cluster_id, earliest=False)
    sp_a, sp_b, sp_len = (
        _segment_meta(entry, seg_e) if seg_e is not None else (-1, -1, 0.0)
    )
    sd_a, sd_b, sd_len = (
        _segment_meta(entry, seg_l) if seg_l is not None else (-1, -1, 0.0)
    )
    return (
        (eta_s, detour, sp_len, sd_len),
        (
            -1 if seg_e is None else seg_e,
            -1 if seg_l is None else seg_l,
            sp_a,
            sp_b,
            sd_a,
            sd_b,
        ),
    )


class _ClusterSlab:
    """One cluster's rows: unsorted SoA storage + lazy sorted views."""

    __slots__ = (
        "rows", "n", "rids", "fdata", "idata", "dirty",
        "rid_order", "rid_sorted", "eta_order", "eta_sorted", "erids",
        "slice_keys", "slice_starts",
    )

    def __init__(self):
        #: ride id -> storage row (live rows are ``[0, n)``).
        self.rows: Dict[int, int] = {}
        self.n = 0
        self.rids = np.empty(0, dtype=np.int64)
        # Column-major: queries gather whole columns by row index, so each
        # column must be contiguous (row writes touch a handful of cells).
        self.fdata = np.empty((0, _N_F), dtype=np.float64, order="F")
        self.idata = np.empty((0, _N_I), dtype=np.int64, order="F")
        self.dirty = True
        self.rid_order = _EMPTY_IDX
        self.rid_sorted = _EMPTY_I64
        self.eta_order = _EMPTY_IDX
        self.eta_sorted = _EMPTY_F64
        self.erids = _EMPTY_I64
        self.slice_keys = _EMPTY_I64
        self.slice_starts = np.zeros(1, dtype=np.int64)

    # -- mutation -------------------------------------------------------
    def _grow(self) -> None:
        cap = max(8, 2 * len(self.rids))
        rids = np.empty(cap, dtype=np.int64)
        fdata = np.empty((cap, _N_F), dtype=np.float64, order="F")
        idata = np.empty((cap, _N_I), dtype=np.int64, order="F")
        rids[: self.n] = self.rids[: self.n]
        fdata[: self.n] = self.fdata[: self.n]
        idata[: self.n] = self.idata[: self.n]
        self.rids, self.fdata, self.idata = rids, fdata, idata

    def put(self, rid: int, fvals, ivals) -> None:
        row = self.rows.get(rid)
        if row is None:
            if self.n == len(self.rids):
                self._grow()
            row = self.n
            self.rows[rid] = row
            self.rids[row] = rid
            self.n += 1
            self.dirty = True
        elif self.fdata[row, F_ETA] != fvals[0]:
            self.dirty = True  # the ETA views/buckets must re-sort
        self.fdata[row] = fvals
        self.idata[row] = ivals

    def update_feasibility(self, rid: int, fvals, ivals) -> bool:
        """Refresh segment/splice columns only (ETA + detour untouched).

        Used after obsolescence shrank a surviving cluster's support set:
        the stored ETA and detour estimate stay (the legacy index keeps
        them too), but the segment choice can move.  Never dirties the
        sorted views — row identity and ETA are unchanged.
        """
        row = self.rows.get(rid)
        if row is None:
            return False
        self.fdata[row, F_SP_LEN] = fvals[2]
        self.fdata[row, F_SD_LEN] = fvals[3]
        self.idata[row] = ivals
        return True

    def remove(self, rid: int) -> bool:
        row = self.rows.pop(rid, None)
        if row is None:
            return False
        last = self.n - 1
        if row != last:
            moved = int(self.rids[last])
            self.rids[row] = moved
            self.fdata[row] = self.fdata[last]
            self.idata[row] = self.idata[last]
            self.rows[moved] = row
        self.n = last
        self.dirty = True
        return True

    # -- queries --------------------------------------------------------
    def rebuild(self, slice_s: float) -> None:
        if not self.dirty:
            return
        n = self.n
        rids = self.rids[:n]
        self.rid_order = np.argsort(rids, kind="stable")
        self.rid_sorted = rids[self.rid_order]
        etas = self.fdata[:n, F_ETA]
        self.eta_order = np.argsort(etas, kind="stable")
        self.eta_sorted = etas[self.eta_order]
        self.erids = rids[self.eta_order]
        # The spatio-temporal hash: bucket b holds rows with
        # floor(eta / slice_s) == b, stored as contiguous ranges of the
        # ETA-sorted view (ETA order == bucket order).
        if n:
            slices = np.floor_divide(self.eta_sorted, slice_s).astype(np.int64)
            keys, starts = np.unique(slices, return_index=True)
            self.slice_keys = keys
            self.slice_starts = np.append(starts, n).astype(np.int64)
        else:
            self.slice_keys = _EMPTY_I64
            self.slice_starts = np.zeros(1, dtype=np.int64)
        self.dirty = False

    def window(
        self, start_s: float, end_s: float, slice_s: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ride ids, ETAs, storage rows) with ``start_s <= eta <= end_s``.

        Buckets overlapping ``[start_s, end_s]`` are shortlisted via the
        slice hash; only the two edge buckets need exact ETA refinement.
        Views into the ETA-sorted arrays — zero copies.
        """
        self.rebuild(slice_s)
        n = self.n
        if n == 0 or end_s < start_s:
            return _EMPTY_I64, _EMPTY_F64, _EMPTY_IDX
        lo_key = math.floor(start_s / slice_s)
        ki = int(np.searchsorted(self.slice_keys, lo_key, side="left"))
        lo = int(self.slice_starts[ki])
        if end_s == float("inf"):
            hi = n
        else:
            hi_key = math.floor(end_s / slice_s)
            kj = int(np.searchsorted(self.slice_keys, hi_key, side="right"))
            hi = int(self.slice_starts[kj])
        # Exact bounds within the edge buckets (interior buckets are fully
        # inside the window by construction of the slice keys).
        lo += int(np.searchsorted(self.eta_sorted[lo:hi], start_s, side="left"))
        if end_s != float("inf"):
            hi = lo + int(
                np.searchsorted(self.eta_sorted[lo:hi], end_s, side="right")
            )
        return self.erids[lo:hi], self.eta_sorted[lo:hi], self.eta_order[lo:hi]


class _BudgetStore:
    """Global per-ride columns: seats available + remaining detour budget."""

    __slots__ = ("slots", "n", "rids", "seats", "detour", "dirty",
                 "order", "rid_sorted")

    def __init__(self):
        self.slots: Dict[int, int] = {}
        self.n = 0
        self.rids = np.empty(0, dtype=np.int64)
        self.seats = np.empty(0, dtype=np.int64)
        self.detour = np.empty(0, dtype=np.float64)
        self.dirty = True
        self.order = _EMPTY_IDX
        self.rid_sorted = _EMPTY_I64

    def _grow(self) -> None:
        cap = max(16, 2 * len(self.rids))
        for name in ("rids", "seats", "detour"):
            old = getattr(self, name)
            fresh = np.empty(cap, dtype=old.dtype)
            fresh[: self.n] = old[: self.n]
            setattr(self, name, fresh)

    def put(self, rid: int, seats: int, detour_limit_m: float) -> None:
        slot = self.slots.get(rid)
        if slot is None:
            if self.n == len(self.rids):
                self._grow()
            slot = self.n
            self.slots[rid] = slot
            self.rids[slot] = rid
            self.n += 1
            self.dirty = True
        self.seats[slot] = seats
        self.detour[slot] = detour_limit_m

    def drop(self, rid: int) -> None:
        slot = self.slots.pop(rid, None)
        if slot is None:
            return
        last = self.n - 1
        if slot != last:
            moved = int(self.rids[last])
            self.rids[slot] = moved
            self.seats[slot] = self.seats[last]
            self.detour[slot] = self.detour[last]
            self.slots[moved] = slot
        self.n = last
        self.dirty = True

    def rebuild(self) -> None:
        if not self.dirty:
            return
        rids = self.rids[: self.n]
        self.order = np.argsort(rids, kind="stable")
        self.rid_sorted = rids[self.order]
        self.dirty = False


class FlatSearchIndex:
    """The flat search core: per-cluster slabs + global budget columns.

    Strictly mirrors ``ClusterRideIndex`` membership and stored ETAs; the
    feasibility columns mirror each ride's ``RideIndexEntry`` as of the
    last (re)index or obsolescence sweep.
    """

    #: Default ETA slice width of the spatio-temporal hash (seconds).  The
    #: workload's departure windows are O(10 minutes); one-slice windows
    #: touch at most two buckets.
    DEFAULT_SLICE_S = 600.0

    def __init__(self, n_clusters: int, slice_s: float = DEFAULT_SLICE_S):
        if n_clusters < 0:
            raise ValueError(f"n_clusters must be >= 0, got {n_clusters!r}")
        if slice_s <= 0:
            raise ValueError(f"slice_s must be > 0, got {slice_s!r}")
        self.slice_s = float(slice_s)
        self._slabs = [_ClusterSlab() for _c in range(n_clusters)]
        #: ride id -> clusters currently holding a row for it.
        self._ride_clusters: Dict[int, List[int]] = {}
        self._budget = _BudgetStore()

    @property
    def n_clusters(self) -> int:
        return len(self._slabs)

    # ------------------------------------------------------------------
    # Mutation seams (mirroring the ClusterRideIndex maintenance points)
    # ------------------------------------------------------------------
    def reindex_ride(
        self,
        ride: "Ride",
        entry: "RideIndexEntry",
        etas: Mapping[int, float],
    ) -> None:
        """(Re)build one ride's rows from its entry + the stored ETA map.

        ``etas`` is exactly what the caller installed into the cluster
        index (entry ETAs on index, snapshotted ETAs on restore), keeping
        the two indexes in lockstep by construction.
        """
        ride_id = ride.ride_id
        old = self._ride_clusters.get(ride_id)
        if old is not None:
            for cluster_id in old:
                self._slabs[cluster_id].remove(ride_id)
        clusters: List[int] = []
        for cluster_id, eta_s in etas.items():
            fvals, ivals = _feasibility_row(entry, cluster_id, eta_s)
            self._slabs[cluster_id].put(ride_id, fvals, ivals)
            clusters.append(cluster_id)
        self._ride_clusters[ride_id] = clusters
        self._budget.put(ride_id, ride.seats_available, ride.detour_limit_m)

    def drop_ride(self, ride_id: int) -> None:
        """Remove every trace of a ride (cancel / complete / unindex)."""
        for cluster_id in self._ride_clusters.pop(ride_id, ()):
            self._slabs[cluster_id].remove(ride_id)
        self._budget.drop(ride_id)

    def refresh_supports(self, ride_id: int, entry: "RideIndexEntry") -> None:
        """Re-derive rows after obsolescence shrank the entry's supports.

        Clusters no longer reachable lose their row (the legacy index
        removed them too); surviving rows keep their stored ETA and detour
        estimate but refresh the precomputed segment choice, which depends
        on the support set.
        """
        clusters = self._ride_clusters.get(ride_id)
        if clusters is None:
            return
        kept: List[int] = []
        for cluster_id in clusters:
            if cluster_id in entry.reachable:
                kept.append(cluster_id)
            else:
                self._slabs[cluster_id].remove(ride_id)
        # Second pass: refresh feasibility columns of the survivors.
        for cluster_id in kept:
            slab = self._slabs[cluster_id]
            row = slab.rows.get(ride_id)
            if row is None:
                continue
            eta_s = float(slab.fdata[row, F_ETA])
            fvals, ivals = _feasibility_row(entry, cluster_id, eta_s)
            detour = float(slab.fdata[row, F_DETOUR])
            slab.update_feasibility(
                ride_id, (eta_s, detour, fvals[2], fvals[3]), ivals
            )
        self._ride_clusters[ride_id] = kept

    def refresh_budget(self, ride: "Ride") -> None:
        """Refresh seats/detour columns without touching the rows."""
        if ride.ride_id in self._budget.slots:
            self._budget.put(
                ride.ride_id, ride.seats_available, ride.detour_limit_m
            )

    # ------------------------------------------------------------------
    # Queries (the search hot path)
    # ------------------------------------------------------------------
    def window(
        self, cluster_id: int, start_s: float, end_s: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ride ids, ETAs, rows) of one cluster's potential rides in the
        ETA window — the bucket-hash shortlist plus exact edge refinement."""
        return self._slabs[cluster_id].window(start_s, end_s, self.slice_s)

    def slab(self, cluster_id: int) -> _ClusterSlab:
        """The cluster's slab with its sorted views rebuilt (probe-ready)."""
        slab = self._slabs[cluster_id]
        slab.rebuild(self.slice_s)
        return slab

    def budget_view(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(rid_sorted, order, seats, detour) for vectorized budget gathers."""
        store = self._budget
        store.rebuild()
        return store.rid_sorted, store.order, store.seats, store.detour

    def eta(self, cluster_id: int, ride_id: int) -> Optional[float]:
        """Stored ETA of a ride at a cluster (mirror of the legacy query)."""
        slab = self._slabs[cluster_id]
        row = slab.rows.get(ride_id)
        return float(slab.fdata[row, F_ETA]) if row is not None else None

    # ------------------------------------------------------------------
    # Introspection / verification
    # ------------------------------------------------------------------
    def total_rows(self) -> int:
        return sum(slab.n for slab in self._slabs)

    def stats(self) -> Dict[str, int]:
        return {
            "rows": self.total_rows(),
            "rides": len(self._ride_clusters),
            "buckets": sum(len(s.slice_keys) for s in self._slabs),
        }

    def divergences(self, engine: "XAREngine") -> List[Tuple[Optional[int], str]]:
        """Every way this mirror disagrees with the authoritative state.

        Compares row membership + ETAs against ``ClusterRideIndex`` and the
        budget columns against the live rides.  Empty == strict mirror.
        """
        problems: List[Tuple[Optional[int], str]] = []
        cluster_index = engine.cluster_index
        seen = 0
        for ride_id, clusters in self._ride_clusters.items():
            for cluster_id in clusters:
                seen += 1
                expected = cluster_index.eta(cluster_id, ride_id)
                actual = self.eta(cluster_id, ride_id)
                if expected is None:
                    problems.append((
                        ride_id,
                        f"flat row (cluster {cluster_id}, ride {ride_id}) "
                        f"missing from the cluster index",
                    ))
                elif actual != expected:
                    problems.append((
                        ride_id,
                        f"flat ETA {actual} != cluster-index ETA {expected} "
                        f"at (cluster {cluster_id}, ride {ride_id})",
                    ))
        total = cluster_index.total_entries()
        if seen != total:
            for cluster_id in range(cluster_index.n_clusters):
                for potential in cluster_index.all_rides(cluster_id):
                    if self.eta(cluster_id, potential.ride_id) is None:
                        problems.append((
                            potential.ride_id,
                            f"cluster-index row (cluster {cluster_id}, ride "
                            f"{potential.ride_id}) missing from the flat index",
                        ))
        for ride_id in self._ride_clusters:
            slot = self._budget.slots.get(ride_id)
            ride = engine.rides.get(ride_id)
            if slot is None:
                problems.append((ride_id, f"ride {ride_id} has no budget row"))
                continue
            if ride is None:
                continue  # dead-ride rows are the audit's ghost checks' job
            if int(self._budget.seats[slot]) != ride.seats_available:
                problems.append((
                    ride_id,
                    f"flat seats {int(self._budget.seats[slot])} != live "
                    f"{ride.seats_available} for ride {ride_id}",
                ))
            if float(self._budget.detour[slot]) != ride.detour_limit_m:
                problems.append((
                    ride_id,
                    f"flat detour budget {float(self._budget.detour[slot])!r} "
                    f"!= live {ride.detour_limit_m!r} for ride {ride_id}",
                ))
        return problems

    def check_consistency(self, engine: "XAREngine") -> None:
        """Assert the mirror is exact (test/debug hook)."""
        problems = self.divergences(engine)
        if problems:
            details = "; ".join(detail for _rid, detail in problems[:10])
            raise AssertionError(
                f"flat index diverged in {len(problems)} place(s): {details}"
            )


# ----------------------------------------------------------------------
# The flat search path (dispatched to by repro.core.search.search_rides)
# ----------------------------------------------------------------------
def flat_search_rides(
    engine: "XAREngine",
    flat: FlatSearchIndex,
    request,
    k: Optional[int],
    span,
) -> list:
    """Two-step XAR search over the flat core — identical results (values
    and rank order) to ``repro.core.search._search_legacy``.

    Same five stages, each entered exactly once per search; the per-object
    loops become numpy kernels:

    * **cluster_lookup** — per source cluster, the spatio-temporal hash
      shortlists the (cluster, ETA-slice) buckets overlapping the
      departure window; the two edge buckets refine to exact ETA bounds.
      Returns zero-copy views of the ETA-sorted slab.
    * **candidate_scan** — R1 = first-occurrence ``np.unique`` over the
      option-ordered concatenation (options ascend by walk distance, so
      first occurrence == the legacy best-walk winner under strict ``<``);
      the destination pass probes R1 against each destination slab's
      rid-sorted view (one vectorized ``searchsorted`` per cluster).
    * **feasibility_filter** — vectorized seat/walk/order/cluster/detour
      checks over gathered columns; the landmark-level splice estimate is
      computed with the same float64 operation order as the scalar code,
      so results are bit-identical.  The rare segment-order retry
      (latest drop-off segment before earliest pickup segment) falls back
      to the exact legacy scalar path.
    """
    from ..core.search import MatchOption, _build_match, _splice_estimate

    region = engine.region
    with span.stage("snap"):
        source_options = region.walkable_clusters(
            request.source, request.walk_threshold_m
        )
        destination_options = (
            region.walkable_clusters(request.destination, request.walk_threshold_m)
            if source_options
            else []
        )
    if not source_options or not destination_options:
        return []

    window_start = request.window_start_s

    with span.stage("cluster_lookup"):
        gathers = []
        for oi, option in enumerate(source_options):
            rids, etas, rows = flat.window(
                option.cluster_id, window_start, request.window_end_s
            )
            if len(rids):
                gathers.append((oi, rids, etas, rows))

    with span.stage("candidate_scan"):
        n_src = 0
        if gathers:
            all_rids = np.concatenate([g[1] for g in gathers])
            all_etas = np.concatenate([g[2] for g in gathers])
            all_rows = np.concatenate([g[3] for g in gathers])
            all_opts = np.concatenate(
                [np.full(g[1].shape, g[0], dtype=np.intp) for g in gathers]
            )
            # First occurrence per ride id in option order == smallest walk
            # (walkable_clusters sorts options ascending by walk_m and the
            # legacy reduction only replaces on strictly smaller walk).
            src_rids, first = np.unique(all_rids, return_index=True)
            src_eta = all_etas[first]
            src_row = all_rows[first]
            src_opt = all_opts[first]
            n_src = len(src_rids)
        if n_src:
            # Destination pass: only R1 rides can survive the intersection,
            # so probe R1 against each destination slab's rid-sorted view.
            found = np.zeros(n_src, dtype=bool)
            dst_eta = np.zeros(n_src, dtype=np.float64)
            dst_row = np.zeros(n_src, dtype=np.intp)
            dst_opt = np.zeros(n_src, dtype=np.intp)
            for oi, option in enumerate(destination_options):
                if found.all():
                    # Later options can't win: first hit == smallest walk.
                    break
                slab = flat.slab(option.cluster_id)
                if slab.n == 0:
                    continue
                pos = np.searchsorted(slab.rid_sorted, src_rids)
                np.minimum(pos, slab.n - 1, out=pos)
                hit_idx = np.nonzero(slab.rid_sorted[pos] == src_rids)[0]
                if not len(hit_idx):
                    continue
                rows = slab.rid_order[pos[hit_idx]]
                etas = slab.fdata[rows, F_ETA]
                ok = etas >= window_start
                cand = hit_idx[ok]
                fresh = ~found[cand]
                upd = cand[fresh]
                if len(upd):
                    found[upd] = True
                    dst_eta[upd] = etas[ok][fresh]
                    dst_row[upd] = rows[ok][fresh]
                    dst_opt[upd] = oi

    if not n_src:
        return []

    with span.stage("feasibility_filter"):
        matches = _flat_filter(
            engine, flat, request, _build_match, _splice_estimate,
            source_options, destination_options,
            src_rids, src_eta, src_row, src_opt,
            found, dst_eta, dst_row, dst_opt, k,
        )

    with span.stage("rank_merge"):
        # _flat_filter already ranked and cut on scalar key arrays (ride_id
        # is unique per match, so the key is a total order and the lexsort
        # agrees with this tuple sort); re-sorting the survivors is a cheap
        # O(k) pass that keeps the stage contract explicit.
        matches.sort(key=lambda m: (m.total_walk_m, m.eta_pickup_s, m.ride_id))
        if k is not None:
            return matches[:k]
        return matches


def _flat_filter(
    engine,
    flat,
    request,
    _build_match,
    _splice_estimate,
    source_options,
    destination_options,
    src_rids,
    src_eta,
    src_row,
    src_opt,
    found,
    dst_eta,
    dst_row,
    dst_opt,
    k,
) -> list:
    """Vectorized R1 ∩ R2 feasibility over the precomputed slab columns.

    Returns the feasible matches already sorted by
    ``(total_walk_m, eta_pickup_s, ride_id)`` and cut to ``k`` — ranking on
    the scalar key arrays means only the surviving ``k`` matches are ever
    constructed.
    """
    region = engine.region
    idx = np.nonzero(found)[0]
    if not len(idx):
        return []
    rids = src_rids[idx]
    e_src = src_eta[idx]
    e_dst = dst_eta[idx]
    so = src_opt[idx]
    do = dst_opt[idx]
    rs = src_row[idx]
    rd = dst_row[idx]

    src_walk = np.array([o.walk_m for o in source_options], dtype=np.float64)
    dst_walk = np.array([o.walk_m for o in destination_options], dtype=np.float64)
    src_cl = np.array([o.cluster_id for o in source_options], dtype=np.int64)
    dst_cl = np.array([o.cluster_id for o in destination_options], dtype=np.int64)

    keep = e_src < e_dst                         # pickup strictly before drop-off
    keep &= src_cl[so] != dst_cl[do]             # an actual ride leg exists
    keep &= (src_walk[so] + dst_walk[do]) <= request.walk_threshold_m

    # Seats and detour budget read *live* from the ride objects, exactly as
    # the legacy filter does — R1 ∩ R2 is small, so this Python loop is off
    # the hot path, and a seat poked to zero between search calls (without
    # going through booking's reindex seam) is honoured immediately.  Rows
    # already dead to the vector checks above skip the dict lookups.
    keep_l = keep.tolist()
    limits_l = [0.0] * len(keep_l)
    rides = engine.rides
    entries = engine.ride_entries
    for t, rid in enumerate(rids.tolist()):
        if not keep_l[t]:
            continue
        ride = rides.get(rid)
        if ride is None or rid not in entries or ride.seats_available < 1:
            keep_l[t] = False
        else:
            limits_l[t] = ride.detour_limit_m
    keep = np.array(keep_l, dtype=bool)
    all_limits = np.array(limits_l, dtype=np.float64)
    if not keep.any():
        return []

    sel = np.nonzero(keep)[0]
    rids, e_src, e_dst = rids[sel], e_src[sel], e_dst[sel]
    so, do, rs, rd = so[sel], do[sel], rs[sel], rd[sel]
    limits = all_limits[sel]

    # Gather the precomputed per-(cluster, ride) feasibility columns,
    # grouped by option so each group is one fancy-indexed slab read.
    n = len(rids)
    d_src = np.zeros(n, dtype=np.float64)
    d_dst = np.zeros(n, dtype=np.float64)
    seg_e = np.full(n, -1, dtype=np.int64)
    seg_l = np.full(n, -1, dtype=np.int64)
    sp_a = np.zeros(n, dtype=np.int64)
    sp_b = np.zeros(n, dtype=np.int64)
    sd_a = np.zeros(n, dtype=np.int64)
    sd_b = np.zeros(n, dtype=np.int64)
    sp_len = np.zeros(n, dtype=np.float64)
    sd_len = np.zeros(n, dtype=np.float64)
    for oi in np.unique(so):
        mask = so == oi
        slab = flat.slab(source_options[oi].cluster_id)
        rows = rs[mask]
        d_src[mask] = slab.fdata[rows, F_DETOUR]
        sp_len[mask] = slab.fdata[rows, F_SP_LEN]
        seg_e[mask] = slab.idata[rows, I_SEG_E]
        sp_a[mask] = slab.idata[rows, I_SP_A]
        sp_b[mask] = slab.idata[rows, I_SP_B]
    for oi in np.unique(do):
        mask = do == oi
        slab = flat.slab(destination_options[oi].cluster_id)
        rows = rd[mask]
        d_dst[mask] = slab.fdata[rows, F_DETOUR]
        sd_len[mask] = slab.fdata[rows, F_SD_LEN]
        seg_l[mask] = slab.idata[rows, I_SEG_L]
        sd_a[mask] = slab.idata[rows, I_SD_A]
        sd_b[mask] = slab.idata[rows, I_SD_B]

    valid = (seg_e >= 0) & (seg_l >= 0)          # segment_for found a segment
    if not valid.any():
        return []
    sel2 = np.nonzero(valid)[0]
    if len(sel2) != n:
        rids, e_src, e_dst, so, do = (
            rids[sel2], e_src[sel2], e_dst[sel2], so[sel2], do[sel2]
        )
        limits, d_src, d_dst = limits[sel2], d_src[sel2], d_dst[sel2]
        seg_e, seg_l = seg_e[sel2], seg_l[sel2]
        sp_a, sp_b, sd_a, sd_b = sp_a[sel2], sp_b[sel2], sd_a[sel2], sd_b[sel2]
        sp_len, sd_len = sp_len[sel2], sd_len[sel2]
        n = len(sel2)

    coarse = d_src + d_dst
    # Rare: the latest drop-off segment precedes the earliest pickup
    # segment; those rows retry with at_least through the exact scalar path.
    fallback = seg_l < seg_e

    # Landmark-level splice estimate — same float64 operation order as
    # _splice_estimate, so the values are bit-identical.
    lm_ok = (sp_a >= 0) & (sp_b >= 0) & (sd_a >= 0) & (sd_b >= 0)
    # Mask invalid landmark ids to 0 BEFORE the gather (negative indices
    # would silently wrap); lm_ok discards those rows afterwards.
    ia = np.where(lm_ok, sp_a, 0)
    ib = np.where(lm_ok, sp_b, 0)
    ic = np.where(lm_ok, sd_a, 0)
    ie = np.where(lm_ok, sd_b, 0)
    src_lm = np.array([o.landmark_id for o in source_options], dtype=np.int64)
    dst_lm = np.array([o.landmark_id for o in destination_options], dtype=np.int64)
    p = src_lm[so]
    d = dst_lm[do]
    D = region.landmark_matrix.values
    est = np.where(
        seg_e == seg_l,
        D[ia, p] + D[p, d] + D[d, ib] - sp_len,
        (D[ia, p] + D[p, ib] - sp_len) + (D[ic, d] + D[d, ie] - sd_len),
    )
    bad = np.isinf(est) | np.isnan(est)
    est = np.maximum(0.0, est)
    detour = np.where(lm_ok & ~bad, est, coarse)
    final = (detour <= limits) & ~fallback

    request_id = request.request_id
    # Batch-convert to Python scalars once (C speed) so the build loop
    # touches no numpy scalars; _build_match fills the instance dict
    # directly instead of paying the frozen-dataclass per-field setattr.
    rid_l = rids.tolist()
    es_l = e_src.tolist()
    ed_l = e_dst.tolist()
    so_l = so.tolist()
    do_l = do.tolist()
    det_l = detour.tolist()
    walk_tot = src_walk[so] + dst_walk[do]
    walk_l = walk_tot.tolist()

    # Segment-order retries go through the exact legacy scalar path; they
    # are rare, so building them eagerly is fine.
    fb_matches: list = []
    fb_keys: list = []
    if fallback.any():
        for j in np.nonzero(fallback)[0].tolist():
            ride_id = rid_l[j]
            ride = engine.rides.get(ride_id)
            entry = engine.ride_entries.get(ride_id)
            if ride is None or entry is None:
                continue
            o_s = source_options[so_l[j]]
            o_d = destination_options[do_l[j]]
            segment_pickup = int(seg_e[j])
            segment_dropoff = entry.segment_for(
                o_d.cluster_id, earliest=False, at_least=segment_pickup
            )
            if segment_dropoff is None:
                continue
            det = _splice_estimate(
                region, entry, segment_pickup, segment_dropoff,
                o_s.landmark_id, o_d.landmark_id,
            )
            if det is None:
                det = float(coarse[j])
            if det > ride.detour_limit_m:
                continue
            fb_matches.append(
                _build_match(
                    ride_id,
                    request_id,
                    o_s.cluster_id,
                    o_s.landmark_id,
                    o_s.walk_m,
                    o_d.cluster_id,
                    o_d.landmark_id,
                    o_d.walk_m,
                    es_l[j],
                    ed_l[j],
                    det,
                )
            )
            fb_keys.append((walk_l[j], es_l[j], ride_id))

    # Rank + top-k cut on the scalar key arrays so only the k survivors
    # are ever constructed.  Each ride id appears at most once (R1 is a
    # np.unique over rides), so (walk, eta, ride_id) is a total order and
    # np.lexsort agrees exactly with the legacy tuple sort.
    vec = np.nonzero(final)[0]
    n_vec = len(vec)
    w_keys = walk_tot[vec]
    e_keys = e_src[vec]
    r_keys = rids[vec]
    if fb_keys:
        w_keys = np.concatenate(
            [w_keys, np.array([key[0] for key in fb_keys], dtype=np.float64)]
        )
        e_keys = np.concatenate(
            [e_keys, np.array([key[1] for key in fb_keys], dtype=np.float64)]
        )
        r_keys = np.concatenate(
            [r_keys, np.array([key[2] for key in fb_keys], dtype=np.int64)]
        )
    order = np.lexsort((r_keys, e_keys, w_keys))
    if k is not None:
        order = order[:k]

    matches = []
    vec_l = vec.tolist()
    for t in order.tolist():
        if t >= n_vec:
            matches.append(fb_matches[t - n_vec])
            continue
        j = vec_l[t]
        o_s = source_options[so_l[j]]
        o_d = destination_options[do_l[j]]
        matches.append(
            _build_match(
                rid_l[j],
                request_id,
                o_s.cluster_id,
                o_s.landmark_id,
                o_s.walk_m,
                o_d.cluster_id,
                o_d.landmark_id,
                o_d.walk_m,
                es_l[j],
                ed_l[j],
                det_l[j],
            )
        )
    return matches
