"""Deep in-memory size estimation (the Classmexer substitute).

The paper instruments its Java process with the Classmexer agent to report
the size of the in-memory index (Figure 3c).  CPython has no equivalent
agent, so we recursively sum ``sys.getsizeof`` over the object graph with a
visited set, handling containers, dataclass-style objects (``__dict__`` /
``__slots__``) and numpy arrays (whose buffer ``sys.getsizeof`` already
includes via ``nbytes``).
"""

from __future__ import annotations

import sys
from typing import Any, Iterable, Set

try:  # numpy is a hard dependency of the package, but keep this tolerant
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def deep_size_bytes(obj: Any, _seen: Set[int] = None) -> int:
    """Recursive deep size of ``obj`` in bytes.

    Shared sub-objects are counted once.  Module/class/function objects are
    skipped — they belong to the code, not the data structure.
    """
    seen: Set[int] = set() if _seen is None else _seen
    return _deep_size(obj, seen)


def _deep_size(obj: Any, seen: Set[int]) -> int:
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)

    if isinstance(obj, (type, type(deep_size_bytes), type(sys))):
        return 0

    size = sys.getsizeof(obj, 0)

    if _np is not None and isinstance(obj, _np.ndarray):
        # getsizeof covers the header; add the data buffer if owned.
        if obj.base is None:
            size += int(obj.nbytes)
        return size

    if isinstance(obj, (str, bytes, bytearray, int, float, complex, bool, type(None))):
        return size

    if isinstance(obj, dict):
        for key, value in obj.items():
            size += _deep_size(key, seen)
            size += _deep_size(value, seen)
        return size

    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += _deep_size(item, seen)
        return size

    # Generic object: follow instance attributes.
    obj_dict = getattr(obj, "__dict__", None)
    if obj_dict is not None:
        size += _deep_size(obj_dict, seen)
    slots = getattr(type(obj), "__slots__", None)
    if slots:
        names: Iterable[str] = (slots,) if isinstance(slots, str) else slots
        for name in names:
            if hasattr(obj, name):
                size += _deep_size(getattr(obj, name), seen)
    return size


def megabytes(n_bytes: int) -> float:
    """Bytes → MB (binary)."""
    return n_bytes / (1024.0 * 1024.0)
