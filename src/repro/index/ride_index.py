"""Per-ride spatio-temporal index entries (paper Section VI).

For every ride the system maintains:

* its **pass-through clusters** — clusters of the landmarks of the grids its
  route crosses, each with a segment index and an ETA,
* per pass-through cluster, the **reachable clusters** that pass the detour
  test ``d(C, C') + d(C', via_{i+1}) - d(C, via_{i+1}) <= d``,
* the reverse view reachable-cluster → supporting pass-through clusters,
  which is what tracking's Step 2 needs to decide whether a cluster is
  *obsolete* ("can the cluster still be reached through any valid
  pass-through cluster?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass(frozen=True)
class PassThrough:
    """A ride's visit of a cluster along its route."""

    cluster_id: int
    segment_index: int
    eta_s: float
    route_offset_m: float
    #: Landmark whose grid triggered the visit — refines detour estimates.
    landmark_id: int = -1


@dataclass
class ReachableInfo:
    """How a ride can serve a (reachable) cluster off its route."""

    cluster_id: int
    #: Pass-through clusters from which this cluster stays within detour.
    supports: Set[int] = field(default_factory=set)
    #: Earliest estimated arrival over all supports.
    eta_s: float = float("inf")
    #: Smallest cluster-level detour estimate over all supports (metres).
    detour_estimate_m: float = float("inf")
    #: Landmark of the min-detour supporting visit (-1 if unknown); lets the
    #: search refine the detour estimate to landmark level without touching
    #: the cluster-level index semantics.
    support_landmark: int = -1
    #: Landmark standing in for the next via-point of that support.
    via_landmark: int = -1

    def merge(
        self,
        support: int,
        eta_s: float,
        detour_m: float,
        support_landmark: int = -1,
        via_landmark: int = -1,
    ) -> None:
        self.supports.add(support)
        if eta_s < self.eta_s:
            self.eta_s = eta_s
        if detour_m < self.detour_estimate_m:
            self.detour_estimate_m = detour_m
            self.support_landmark = support_landmark
            self.via_landmark = via_landmark


@dataclass(frozen=True)
class SegmentMeta:
    """Landmark-level view of one route segment, for detour estimation.

    ``length_m`` is the exact on-route length; the landmarks stand in for the
    segment's bounding via-points (-1 when the via node has no landmark).
    """

    start_landmark: int
    end_landmark: int
    length_m: float


@dataclass
class RideIndexEntry:
    """Everything the index knows about one ride's geometry."""

    ride_id: int
    #: Ordered pass-through visits (ascending ETA along the route).
    pass_through: List[PassThrough] = field(default_factory=list)
    #: cluster id -> ReachableInfo (includes the pass-through clusters
    #: themselves with detour estimate 0).
    reachable: Dict[int, ReachableInfo] = field(default_factory=dict)
    #: Per-segment metadata aligned with the ride's segments at index time.
    segments: List[SegmentMeta] = field(default_factory=list)

    def pass_through_ids(self) -> Set[int]:
        return {visit.cluster_id for visit in self.pass_through}

    def reachable_ids(self) -> Set[int]:
        return set(self.reachable)

    def first_visit(self, cluster_id: int) -> Optional[PassThrough]:
        """Earliest pass-through visit of a cluster, or None."""
        for visit in self.pass_through:
            if visit.cluster_id == cluster_id:
                return visit
        return None

    def drop_pass_through(self, cluster_ids: Set[int]) -> None:
        """Tracking Step 3: remove obsolete pass-through visits."""
        self.pass_through = [
            visit for visit in self.pass_through if visit.cluster_id not in cluster_ids
        ]

    def segment_for(
        self,
        cluster_id: int,
        earliest: bool,
        at_least: Optional[int] = None,
    ) -> Optional[int]:
        """Segment on which the ride serves ``cluster_id``.

        Chosen from the supporting pass-through visits: earliest visit for a
        pickup, latest for a drop-off; ``at_least`` constrains the choice when
        pickup-before-drop-off ordering matters.  Used identically by the
        search estimate and the booking splice so they agree.
        """
        info = self.reachable.get(cluster_id)
        if info is None:
            return None
        candidates = [
            visit
            for visit in self.pass_through
            if visit.cluster_id in info.supports
            and (at_least is None or visit.segment_index >= at_least)
        ]
        if not candidates:
            return None
        if earliest:
            chosen = min(candidates, key=lambda visit: visit.eta_s)
        else:
            chosen = max(candidates, key=lambda visit: visit.eta_s)
        return chosen.segment_index

    def remove_supports(self, cluster_ids: Set[int]) -> List[int]:
        """Remove pass-through supports; return reachable clusters that lost
        *all* support (tracking Step 2's removal candidates)."""
        orphaned: List[int] = []
        for cluster_id, info in list(self.reachable.items()):
            info.supports -= cluster_ids
            if not info.supports:
                orphaned.append(cluster_id)
                del self.reachable[cluster_id]
        return orphaned
