"""XAR in-memory indexing (paper Section VI).

Clusters are the main units.  Each cluster keeps its *potential rides* in two
sorted orders — by estimated time of arrival and by ride id — so the search
operation is a walk of sorted lists and binary searches, never a shortest
path.  Each ride keeps its pass-through clusters and, per pass-through
cluster, the reachable clusters within the detour limit.
"""

from .sorted_list import SortedKeyList
from .cluster_index import ClusterRideIndex, PotentialRide
from .flat_index import FlatSearchIndex
from .ride_index import PassThrough, ReachableInfo, RideIndexEntry, SegmentMeta
from .memory import deep_size_bytes

__all__ = [
    "SortedKeyList",
    "ClusterRideIndex",
    "FlatSearchIndex",
    "PotentialRide",
    "PassThrough",
    "ReachableInfo",
    "RideIndexEntry",
    "SegmentMeta",
    "deep_size_bytes",
]
