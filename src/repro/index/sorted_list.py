"""A bisect-backed sorted container with key extraction.

The standard library has no sorted container and external dependencies are
off the table, so this is the building block for the paper's "two different
lists, one sorted in non-decreasing order by the time of arrival, and the
other sorted by the unique ride identification numbers" (Section VI).

``add`` / ``remove`` are O(n) worst case (list shifting) but with C-speed
memmove; ``irange`` window queries are O(log n + answer), which is the
operation the search path cares about.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort_right
from typing import Any, Callable, Generic, Iterable, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class SortedKeyList(Generic[T]):
    """List of items kept sorted by ``key(item)`` (stable for equal keys)."""

    def __init__(self, key: Callable[[T], Any], items: Iterable[T] = ()):
        self._key = key
        self._items: List[T] = sorted(items, key=key)
        self._keys: List[Any] = [key(item) for item in self._items]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __getitem__(self, index: int) -> T:
        return self._items[index]

    def add(self, item: T) -> None:
        """Insert keeping order; equal keys append after existing ones."""
        key = self._key(item)
        index = bisect_right(self._keys, key)
        self._keys.insert(index, key)
        self._items.insert(index, item)

    def remove(self, item: T) -> None:
        """Remove one occurrence of ``item``; raises ValueError if absent."""
        key = self._key(item)
        lo = bisect_left(self._keys, key)
        hi = bisect_right(self._keys, key)
        for index in range(lo, hi):
            if self._items[index] == item:
                del self._items[index]
                del self._keys[index]
                return
        raise ValueError(f"item not in sorted list: {item!r}")

    def discard(self, item: T) -> bool:
        """Remove if present; returns True when something was removed."""
        try:
            self.remove(item)
            return True
        except ValueError:
            return False

    def irange(self, min_key: Any = None, max_key: Any = None) -> Iterator[T]:
        """Iterate items with ``min_key <= key(item) <= max_key`` (inclusive)."""
        lo = 0 if min_key is None else bisect_left(self._keys, min_key)
        hi = len(self._keys) if max_key is None else bisect_right(self._keys, max_key)
        for index in range(lo, hi):
            yield self._items[index]

    def count_in_range(self, min_key: Any = None, max_key: Any = None) -> int:
        lo = 0 if min_key is None else bisect_left(self._keys, min_key)
        hi = len(self._keys) if max_key is None else bisect_right(self._keys, max_key)
        return max(0, hi - lo)

    def contains_key(self, key: Any) -> bool:
        index = bisect_left(self._keys, key)
        return index < len(self._keys) and self._keys[index] == key

    def find_by_key(self, key: Any) -> Optional[T]:
        """First item with exactly this key, or None."""
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return self._items[index]
        return None

    def clear(self) -> None:
        self._items.clear()
        self._keys.clear()
