"""Discretized-region persistence.

Building a region costs one Dijkstra per landmark (the distance matrix) —
seconds to minutes depending on city size.  Saving the built region to a
directory and reloading skips all of it.  Layout::

    <dir>/network.json        road network (repro.roadnet.io format)
    <dir>/region.json         config, landmarks, clusters, node→landmark map
    <dir>/landmark_matrix.npy landmark distance matrix (numpy binary)

Rationale for the split: the matrix dominates the bytes and numpy's own
format is the efficient, safe container for it; everything else is
diff-able JSON.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, Union

import numpy as np

from ..clustering import DistanceMatrix
from ..config import XARConfig
from ..exceptions import DiscretizationError
from ..geo import GeoPoint, GridIndex
from ..landmarks import Landmark
from ..roadnet.io import load_network, save_network
from .model import Cluster, DiscretizedRegion

FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def save_region(region: DiscretizedRegion, directory: PathLike) -> None:
    """Persist a region (and its network) to ``directory``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_network(region.network, directory / "network.json")
    np.save(directory / "landmark_matrix.npy", region.landmark_matrix.values)
    payload = {
        "format": "repro.region",
        "version": FORMAT_VERSION,
        "config": dataclasses.asdict(region.config),
        "epsilon_realised": region.epsilon_realised,
        "landmarks": [
            {
                "id": lm.landmark_id,
                "lat": lm.position.lat,
                "lon": lm.position.lon,
                "node": lm.node,
                "category": lm.category,
                "importance": lm.importance,
            }
            for lm in region.landmarks
        ],
        "clusters": [
            {
                "id": cluster.cluster_id,
                "landmarks": list(cluster.landmark_ids),
                "center": cluster.center_landmark,
            }
            for cluster in region.clusters
        ],
        "node_landmark": [
            [node, landmark_id, distance]
            for node, (landmark_id, distance) in sorted(
                region._node_landmark.items()
            )
        ],
    }
    (directory / "region.json").write_text(json.dumps(payload))


def load_region(directory: PathLike) -> DiscretizedRegion:
    """Load a region persisted by :func:`save_region`."""
    directory = pathlib.Path(directory)
    payload = json.loads((directory / "region.json").read_text())
    if payload.get("format") != "repro.region":
        raise DiscretizationError("not a serialized region directory")
    if payload.get("version") != FORMAT_VERSION:
        raise DiscretizationError(
            f"unsupported region format version {payload.get('version')!r}"
        )
    network = load_network(directory / "network.json")
    matrix = DistanceMatrix(np.load(directory / "landmark_matrix.npy"))
    config = XARConfig(**payload["config"])
    config.validate()
    landmarks = [
        Landmark(
            landmark_id=int(item["id"]),
            position=GeoPoint(float(item["lat"]), float(item["lon"])),
            node=int(item["node"]),
            category=str(item["category"]),
            importance=float(item["importance"]),
        )
        for item in payload["landmarks"]
    ]
    clusters = [
        Cluster(
            cluster_id=int(item["id"]),
            landmark_ids=tuple(int(x) for x in item["landmarks"]),
            center_landmark=int(item["center"]),
        )
        for item in payload["clusters"]
    ]
    node_landmark: Dict[int, tuple] = {
        int(node): (int(landmark_id), float(distance))
        for node, landmark_id, distance in payload["node_landmark"]
    }
    return DiscretizedRegion(
        config=config,
        network=network,
        grid=GridIndex(network.bounding_box(), config.grid_side_m),
        landmarks=landmarks,
        clusters=clusters,
        landmark_matrix=matrix,
        node_landmark=node_landmark,
        epsilon_realised=float(payload["epsilon_realised"]),
    )
