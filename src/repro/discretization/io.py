"""Discretized-region persistence.

Building a region costs one Dijkstra per landmark (the distance matrix) —
seconds to minutes depending on city size.  Saving the built region to a
directory and reloading skips all of it.  Layout::

    <dir>/network.json        road network (repro.roadnet.io format)
    <dir>/region.json         config, landmarks, clusters, node→landmark map
    <dir>/landmark_matrix.npy landmark distance matrix (numpy binary)

Rationale for the split: the matrix dominates the bytes and numpy's own
format is the efficient, safe container for it; everything else is
diff-able JSON.

Format version 2 adds a **content digest**: a SHA-256 over the canonical
JSON payload plus the raw matrix bytes, stored in ``region.json`` and
re-verified on load.  The digest doubles as the discretization build's
identity for the durability layer — checkpoints and write-ahead logs are
stamped with it, so state persisted against one discretization can never be
silently replayed onto another (:func:`region_digest` is the shared
primitive).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from typing import Any, Dict, Union

import numpy as np

from ..clustering import DistanceMatrix
from ..config import XARConfig
from ..exceptions import DiscretizationError
from ..geo import GeoPoint, GridIndex
from ..landmarks import Landmark
from ..roadnet.io import load_network, save_network
from .model import Cluster, DiscretizedRegion

FORMAT_VERSION = 2

PathLike = Union[str, pathlib.Path]


def _region_payload(region: DiscretizedRegion) -> Dict[str, Any]:
    """The JSON-serializable body of a region (everything but the matrix)."""
    return {
        "config": dataclasses.asdict(region.config),
        "epsilon_realised": region.epsilon_realised,
        "landmarks": [
            {
                "id": lm.landmark_id,
                "lat": lm.position.lat,
                "lon": lm.position.lon,
                "node": lm.node,
                "category": lm.category,
                "importance": lm.importance,
            }
            for lm in region.landmarks
        ],
        "clusters": [
            {
                "id": cluster.cluster_id,
                "landmarks": list(cluster.landmark_ids),
                "center": cluster.center_landmark,
            }
            for cluster in region.clusters
        ],
        "node_landmark": [
            [node, landmark_id, distance]
            for node, (landmark_id, distance) in sorted(
                region._node_landmark.items()
            )
        ],
    }


def region_digest(region: DiscretizedRegion) -> str:
    """Content digest of a discretization build (SHA-256 hex).

    Computed from the canonical JSON payload (config, landmarks, clusters,
    node→landmark map, realised ε) plus the raw landmark-matrix bytes — the
    complete inputs the runtime's search/booking answers depend on.  Two
    regions with equal digests are interchangeable for replay; the loader,
    the checkpoint reader and the WAL header all compare against it.
    """
    hasher = hashlib.sha256()
    payload = json.dumps(_region_payload(region), sort_keys=True)
    hasher.update(payload.encode("utf-8"))
    hasher.update(np.ascontiguousarray(region.landmark_matrix.values).tobytes())
    return hasher.hexdigest()


def save_region(region: DiscretizedRegion, directory: PathLike) -> None:
    """Persist a region (and its network) to ``directory``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_network(region.network, directory / "network.json")
    np.save(directory / "landmark_matrix.npy", region.landmark_matrix.values)
    payload = {
        "format": "repro.region",
        "version": FORMAT_VERSION,
        "digest": region_digest(region),
        **_region_payload(region),
    }
    (directory / "region.json").write_text(json.dumps(payload))


def load_region(directory: PathLike) -> DiscretizedRegion:
    """Load a region persisted by :func:`save_region`.

    Raises :class:`~repro.exceptions.DiscretizationError` when the directory
    is not a serialized region, was written by an unsupported format
    version, or when the stored content digest does not match the bytes
    actually loaded (a truncated matrix, a hand-edited ``region.json``, or
    mixed-up files from two different builds).
    """
    directory = pathlib.Path(directory)
    payload = json.loads((directory / "region.json").read_text())
    if payload.get("format") != "repro.region":
        raise DiscretizationError("not a serialized region directory")
    if payload.get("version") != FORMAT_VERSION:
        raise DiscretizationError(
            f"unsupported region format version {payload.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION}; re-run build-region)"
        )
    stored_digest = payload.get("digest")
    if not stored_digest:
        raise DiscretizationError("region.json is missing its content digest")
    network = load_network(directory / "network.json")
    matrix = DistanceMatrix(np.load(directory / "landmark_matrix.npy"))
    config = XARConfig(**payload["config"])
    config.validate()
    landmarks = [
        Landmark(
            landmark_id=int(item["id"]),
            position=GeoPoint(float(item["lat"]), float(item["lon"])),
            node=int(item["node"]),
            category=str(item["category"]),
            importance=float(item["importance"]),
        )
        for item in payload["landmarks"]
    ]
    clusters = [
        Cluster(
            cluster_id=int(item["id"]),
            landmark_ids=tuple(int(x) for x in item["landmarks"]),
            center_landmark=int(item["center"]),
        )
        for item in payload["clusters"]
    ]
    node_landmark: Dict[int, tuple] = {
        int(node): (int(landmark_id), float(distance))
        for node, landmark_id, distance in payload["node_landmark"]
    }
    region = DiscretizedRegion(
        config=config,
        network=network,
        grid=GridIndex(network.bounding_box(), config.grid_side_m),
        landmarks=landmarks,
        clusters=clusters,
        landmark_matrix=matrix,
        node_landmark=node_landmark,
        epsilon_realised=float(payload["epsilon_realised"]),
    )
    actual_digest = region_digest(region)
    if actual_digest != stored_digest:
        raise DiscretizationError(
            f"region content digest mismatch: region.json claims "
            f"{stored_digest[:12]}… but the loaded bytes hash to "
            f"{actual_digest[:12]}… (corrupted or mixed-up region files)"
        )
    return region
