"""Three-tiered hierarchical region discretization (paper Section IV).

The hierarchy is region → clusters → landmarks → grids → point locations,
with the cross relation that every grid is directly associated with a cluster
(through its landmark) and with a sorted list of *walkable clusters*.

:mod:`~repro.discretization.model` holds the data model
(:class:`Cluster`, :class:`WalkOption`, :class:`DiscretizedRegion`);
:mod:`~repro.discretization.builder` runs the offline pre-processing pipeline
(the paper's "XAR pre-processing unit").
"""

from .model import Cluster, DiscretizedRegion, WalkOption
from .builder import build_region
from .io import load_region, region_digest, save_region

__all__ = [
    "Cluster",
    "WalkOption",
    "DiscretizedRegion",
    "build_region",
    "save_region",
    "load_region",
    "region_digest",
]
