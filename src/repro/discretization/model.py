"""Data model of the discretized region.

:class:`DiscretizedRegion` is the read-only product of pre-processing and the
single source of truth for every runtime operation: point→grid→landmark→
cluster resolution, walkable-cluster lists, and the landmark / cluster
distance matrices that let the runtime avoid shortest-path computation
entirely during search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..config import XARConfig
from ..exceptions import DiscretizationError, UncoveredLocationError
from ..geo import GeoPoint, GridCell, GridIndex
from ..landmarks import Landmark
from ..roadnet import RoadNetwork
from ..clustering import DistanceMatrix


@dataclass(frozen=True)
class Cluster:
    """A cluster: a set of landmarks, nothing more (paper emphasises a
    cluster is *not* a bounded region)."""

    cluster_id: int
    landmark_ids: Tuple[int, ...]
    center_landmark: int

    def __post_init__(self):
        if not self.landmark_ids:
            raise ValueError("a cluster must contain at least one landmark")
        if self.center_landmark not in self.landmark_ids:
            raise ValueError("center landmark must belong to the cluster")


class WalkOption(NamedTuple):
    """One entry of a grid's walkable-cluster list: ⟨C, w⟩ plus the landmark
    realising w (the nearest landmark of C to the grid)."""

    cluster_id: int
    walk_m: float
    landmark_id: int


class DiscretizedRegion:
    """The complete three-tier discretization of a city.

    Built once by :func:`~repro.discretization.builder.build_region`; all
    methods are read-only and cheap (dictionary lookups / cached lists), as
    required for the search-optimized runtime.
    """

    def __init__(
        self,
        config: XARConfig,
        network: RoadNetwork,
        grid: GridIndex,
        landmarks: Sequence[Landmark],
        clusters: Sequence[Cluster],
        landmark_matrix: DistanceMatrix,
        node_landmark: Dict[int, Tuple[int, float]],
        epsilon_realised: float,
    ):
        self.config = config
        self.network = network
        self.grid = grid
        self.landmarks = list(landmarks)
        self.clusters = list(clusters)
        self.landmark_matrix = landmark_matrix
        #: node -> (nearest landmark id, driving distance), only for nodes
        #: within Δ of some landmark.
        self._node_landmark = node_landmark
        #: Realised worst intra-cluster distance (≤ 4δ by Theorem 6).
        self.epsilon_realised = epsilon_realised

        self._landmark_cluster: Dict[int, int] = {}
        for cluster in self.clusters:
            for lid in cluster.landmark_ids:
                if lid in self._landmark_cluster:
                    raise DiscretizationError(
                        f"landmark {lid} assigned to two clusters"
                    )
                self._landmark_cluster[lid] = cluster.cluster_id
        missing = set(range(len(self.landmarks))) - set(self._landmark_cluster)
        if missing:
            raise DiscretizationError(
                f"landmarks without a cluster: {sorted(missing)[:5]}..."
            )

        self._cluster_matrix = self._build_cluster_matrix()
        self._walkable_cache: Dict[GridCell, List[WalkOption]] = {}
        self._pruned_walkable_cache: Dict[Tuple[GridCell, float], List[WalkOption]] = {}
        self._landmark_buckets = self._bucket_landmarks()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_cluster_matrix(self) -> np.ndarray:
        """k x k matrix of cluster distances = min landmark cross distance."""
        k = len(self.clusters)
        matrix = np.zeros((k, k), dtype=np.float64)
        index_arrays = [
            np.asarray(cluster.landmark_ids, dtype=np.intp) for cluster in self.clusters
        ]
        values = self.landmark_matrix.values
        for i in range(k):
            for j in range(i + 1, k):
                d = float(values[np.ix_(index_arrays[i], index_arrays[j])].min())
                matrix[i, j] = d
                matrix[j, i] = d
        return matrix

    def _bucket_landmarks(self) -> Dict[GridCell, List[int]]:
        """Spatial hash of landmarks at W resolution for walk queries."""
        side = max(self.config.max_walk_m, self.config.grid_side_m)
        self._walk_grid = GridIndex(self.grid.bbox, side)
        buckets: Dict[GridCell, List[int]] = {}
        for landmark in self.landmarks:
            cell = self._walk_grid.cell_of(landmark.position)
            buckets.setdefault(cell, []).append(landmark.landmark_id)
        return buckets

    # ------------------------------------------------------------------
    # Hierarchy resolution
    # ------------------------------------------------------------------
    @property
    def n_landmarks(self) -> int:
        return len(self.landmarks)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def cell_of(self, point: GeoPoint) -> GridCell:
        """Point → unique grid (Definition 1)."""
        return self.grid.cell_of(point)

    def cluster_of_landmark(self, landmark_id: int) -> int:
        return self._landmark_cluster[landmark_id]

    def landmark_of_node(self, node: int) -> Optional[Tuple[int, float]]:
        """Nearest landmark (id, driving distance) of a road node, if within Δ."""
        return self._node_landmark.get(node)

    def nearest_landmark(self, point: GeoPoint) -> Optional[Tuple[int, float]]:
        """Grid → landmark association via the grid's nearest road node.

        Returns ``None`` for grids farther than Δ driving distance from every
        landmark (remote locations — the paper leaves these unassociated).
        """
        cell = self.cell_of(point)
        centroid = self.grid.centroid_of(cell)
        node = self.network.snap(centroid)
        hit = self._node_landmark.get(node)
        if hit is None:
            return None
        # The grid's driving distance includes getting from the grid to the
        # road network; a centroid far off-network (remote location) exceeds
        # Δ and stays unassociated, as Section IV prescribes.
        landmark_id, node_distance = hit
        gap = centroid.distance_to(self.network.position(node))
        total = node_distance + gap
        if total > self.config.grid_landmark_max_m:
            return None
        return (landmark_id, total)

    def cluster_of_point(self, point: GeoPoint) -> Optional[int]:
        """Point → grid → landmark → cluster, or ``None`` when unassociated."""
        hit = self.nearest_landmark(point)
        if hit is None:
            return None
        landmark_id, _distance = hit
        return self._landmark_cluster[landmark_id]

    # ------------------------------------------------------------------
    # Walkable clusters (Section IV)
    # ------------------------------------------------------------------
    def walk_distance(self, point: GeoPoint, landmark_id: int) -> float:
        """Estimated walking distance point → landmark (haversine x circuity)."""
        landmark = self.landmarks[landmark_id]
        return point.distance_to(landmark.position) * self.config.walk_circuity

    def walkable_clusters(
        self,
        point: GeoPoint,
        max_walk_m: Optional[float] = None,
    ) -> List[WalkOption]:
        """The grid's walkable-cluster list, optionally pruned to a request's
        threshold.

        The full list (threshold = system W) is cached per grid cell, exactly
        as the paper precomputes it.  Pruned lists are cached per
        (cell, threshold) too: request thresholds come from a handful of
        workload-level settings, and a sharded service prunes the same cell
        once per consulted shard on its search hot path.
        """
        cell = self.cell_of(point)
        options = self._walkable_cache.get(cell)
        if options is None:
            options = self._compute_walkable(self.grid.centroid_of(cell))
            self._walkable_cache[cell] = options
        if max_walk_m is None or max_walk_m >= self.config.max_walk_m:
            return list(options)
        key = (cell, max_walk_m)
        pruned = self._pruned_walkable_cache.get(key)
        if pruned is None:
            pruned = []
            for option in options:  # sorted ascending: stop at first exceedance
                if option.walk_m > max_walk_m:
                    break
                pruned.append(option)
            self._pruned_walkable_cache[key] = pruned
        return list(pruned)

    def _compute_walkable(self, centroid: GeoPoint) -> List[WalkOption]:
        best: Dict[int, Tuple[float, int]] = {}
        cx, cy = self._walk_grid.cell_of(centroid)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for landmark_id in self._landmark_buckets.get((cx + dx, cy + dy), ()):
                    walk = self.walk_distance(centroid, landmark_id)
                    if walk > self.config.max_walk_m:
                        continue
                    cluster_id = self._landmark_cluster[landmark_id]
                    current = best.get(cluster_id)
                    # Tie-break equal walk distances by landmark id so the
                    # chosen representative is independent of bucket
                    # iteration order — any exhaustive rescan (the
                    # verification oracle) lands on the same landmark.
                    if current is None or (walk, landmark_id) < current:
                        best[cluster_id] = (walk, landmark_id)
        options = [
            WalkOption(cluster_id=cid, walk_m=walk, landmark_id=lid)
            for cid, (walk, lid) in best.items()
        ]
        options.sort(key=lambda option: (option.walk_m, option.cluster_id))
        return options

    # ------------------------------------------------------------------
    # Cluster-level distances (what makes search shortest-path free)
    # ------------------------------------------------------------------
    def cluster_distance(self, a: int, b: int) -> float:
        """Distance between clusters: closest landmark pair (Section VI)."""
        return float(self._cluster_matrix[a, b])

    def clusters_within(self, cluster_id: int, radius_m: float) -> List[Tuple[int, float]]:
        """All clusters within ``radius_m`` of ``cluster_id`` (incl. itself),
        as (cluster id, distance) sorted by distance."""
        row = self._cluster_matrix[cluster_id]
        within = np.nonzero(row <= radius_m)[0]
        out = [(int(c), float(row[c])) for c in within]
        out.sort(key=lambda pair: (pair[1], pair[0]))
        return out

    @property
    def cluster_matrix(self) -> np.ndarray:
        """The k x k cluster distance matrix (read-only view)."""
        return self._cluster_matrix

    def require_covered(self, point: GeoPoint) -> None:
        """Raise :class:`UncoveredLocationError` if the point can neither be
        associated with a landmark nor walk to any cluster (Section IV: such
        requests "will not be served")."""
        if self.cluster_of_point(point) is not None:
            return
        if self.walkable_clusters(point):
            return
        raise UncoveredLocationError(
            f"location {point} is outside driving range Δ of all landmarks "
            f"and walking range W of all clusters"
        )
