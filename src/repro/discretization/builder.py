"""Offline pre-processing pipeline (the paper's "XAR pre-processing unit").

Steps, mirroring Section III / IV:

1. grid the region (implicit 100 m squares over the network bounding box),
2. extract landmarks (POI synthesis → significance pruning → f-separation),
3. associate every road node — hence every grid — with its nearest landmark
   within driving distance Δ, using one multi-source Dijkstra over the
   reversed graph (distance measured *from* the grid *to* the landmark),
4. fill the landmark driving-distance matrix (one Dijkstra per landmark),
5. run GREEDYSEARCH for the target δ to form clusters (Theorem 6 guarantees
   k_ALG ≤ k_OPT and intra-cluster ≤ 4δ = ε).

The result is a ready-to-serve :class:`~repro.discretization.model.DiscretizedRegion`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import XARConfig
from ..exceptions import DiscretizationError
from ..geo import GridIndex
from ..landmarks import Landmark, extract_landmarks, synthesize_pois
from ..roadnet import RoadNetwork
from ..roadnet.shortest_path import multi_source_nearest_reverse
from ..clustering import (
    greedy_search,
    landmark_distance_matrix,
)
from .model import Cluster, DiscretizedRegion


def build_region(
    network: RoadNetwork,
    config: Optional[XARConfig] = None,
    landmarks: Optional[Sequence[Landmark]] = None,
    poi_seed: int = 11,
    poi_rate: float = 0.8,
) -> DiscretizedRegion:
    """Build the full three-tier discretization of a city.

    If ``landmarks`` is not supplied, POIs are synthesised from the network
    and run through the extraction pipeline with the config's ``f``.
    """
    config = config or XARConfig.validated()
    config.validate()

    if landmarks is None:
        pois = synthesize_pois(network, per_node_rate=poi_rate, seed=poi_seed)
        landmarks = extract_landmarks(
            pois, network, min_separation_m=config.landmark_separation_m
        )
    landmarks = list(landmarks)
    if not landmarks:
        raise DiscretizationError("cannot build a region with zero landmarks")
    _validate_landmark_ids(landmarks)

    grid = GridIndex(network.bounding_box(), config.grid_side_m)

    # Grid -> landmark association within Δ: one multi-source pass on the
    # reversed graph labels each node with the landmark it can *reach* most
    # cheaply, which is the driving distance "of the grid from the landmark".
    # Ties between equidistant landmarks resolve to the lowest landmark id
    # (the paper's ordering rule) because sources are pushed in id order and
    # heap pops are stable on (distance, node, origin).
    landmark_nodes = [lm.node for lm in landmarks]
    node_label = multi_source_nearest_reverse(
        network, landmark_nodes, cutoff=config.grid_landmark_max_m
    )
    node_to_landmark_id = {}
    node_owner = {}
    for lm in landmarks:
        # Several landmarks can snap to one node; keep the lowest id, which
        # is the paper's tie-break.
        if lm.node not in node_owner:
            node_owner[lm.node] = lm.landmark_id
    for node, (origin_node, distance) in node_label.items():
        node_to_landmark_id[node] = (node_owner[origin_node], distance)

    matrix = landmark_distance_matrix(network, landmarks)
    clustering = greedy_search(matrix, config.delta_m)

    clusters: List[Cluster] = []
    for cluster_index, (members, center) in enumerate(
        zip(clustering.clusters, clustering.centers)
    ):
        clusters.append(
            Cluster(
                cluster_id=cluster_index,
                landmark_ids=tuple(sorted(members)),
                center_landmark=center,
            )
        )

    return DiscretizedRegion(
        config=config,
        network=network,
        grid=grid,
        landmarks=landmarks,
        clusters=clusters,
        landmark_matrix=matrix,
        node_landmark=node_to_landmark_id,
        epsilon_realised=clustering.max_intra_distance,
    )


def _validate_landmark_ids(landmarks: Sequence[Landmark]) -> None:
    """Landmark ids must be exactly 0..n-1 (they index the matrices)."""
    ids = sorted(lm.landmark_id for lm in landmarks)
    if ids != list(range(len(landmarks))):
        raise DiscretizationError(
            "landmark ids must be contiguous 0..n-1; re-run extraction"
        )
