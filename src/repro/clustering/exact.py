"""Exact CLUSTERMINIMIZATION solver (small instances only).

This is the reproduction of the paper's integer linear program (Section V) as
an exact combinatorial solver: it finds the true minimum number of clusters
such that every landmark is in exactly one cluster and all intra-cluster
pairwise distances are <= δ.  The problem is NP-complete (Theorem 4), so this
solver is exponential and intended for instances of a few dozen landmarks —
its role in this repository is to *verify* GREEDYSEARCH's bicriteria
guarantee (k_ALG <= k_OPT) in the test suite and the ablation benches.

Algorithm: iterative deepening on the number of cliques m = lower_bound..n,
with backtracking that always branches on the lowest-indexed unplaced vertex
(a canonical-form cut that removes clique-order symmetry).  The lower bound
is a greedy independent set in the threshold graph: mutually far vertices can
never share a cluster.
"""

from __future__ import annotations

from typing import List, Optional, Set

from .clique_partition import threshold_graph
from .metrics import DistanceMatrix


def exact_cluster_minimization(
    matrix: DistanceMatrix,
    delta: float,
    max_n: int = 40,
) -> List[List[int]]:
    """Optimal partition into minimum cliques of the δ-threshold graph.

    Raises ``ValueError`` for instances larger than ``max_n`` — a guard rail
    against accidentally exponential runs.
    """
    n = matrix.n
    if n > max_n:
        raise ValueError(
            f"exact solver limited to n <= {max_n} (got {n}); "
            "use greedy_search for real instances"
        )
    if n == 0:
        return []
    adjacency = threshold_graph(matrix, delta)

    lower = _independent_set_lower_bound(adjacency)
    for m in range(lower, n + 1):
        solution = _search(adjacency, n, m)
        if solution is not None:
            return [sorted(c) for c in solution]
    # Unreachable: m = n (all singletons) always succeeds.
    raise AssertionError("exact solver failed to find the trivial partition")


def _independent_set_lower_bound(adjacency: List[Set[int]]) -> int:
    """Greedy independent set size — a valid lower bound on clique count."""
    n = len(adjacency)
    picked: List[int] = []
    forbidden: Set[int] = set()
    for vertex in sorted(range(n), key=lambda v: len(adjacency[v])):
        if vertex in forbidden:
            continue
        picked.append(vertex)
        forbidden.add(vertex)
        forbidden |= adjacency[vertex]
    return max(1, len(picked))


def _search(
    adjacency: List[Set[int]],
    n: int,
    m: int,
) -> Optional[List[List[int]]]:
    """Backtracking: can vertices 0..n-1 be partitioned into <= m cliques?"""
    cliques: List[List[int]] = []

    def place(vertex: int) -> bool:
        if vertex == n:
            return True
        # Try existing cliques first.
        for clique in cliques:
            if all(other in adjacency[vertex] for other in clique):
                clique.append(vertex)
                if place(vertex + 1):
                    return True
                clique.pop()
        # Open a new clique (canonical: vertex is its lowest member since we
        # branch in vertex order).
        if len(cliques) < m:
            cliques.append([vertex])
            if place(vertex + 1):
                return True
            cliques.pop()
        return False

    if place(0):
        return [list(c) for c in cliques]
    return None
