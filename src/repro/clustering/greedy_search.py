"""GREEDYSEARCH: bicriteria approximation for CLUSTERMINIMIZATION (Thm 6).

The algorithm, as specified in the paper:

1. binary search k over [1, n] for log2(n) iterations;
2. at each k, run the greedy k-center subroutine and record the covering
   radius δ_k (max distance of any landmark to its centre);
3. if δ_k > 2δ, recurse into the upper half (more clusters needed), else the
   lower half;
4. return all (k, δ_k) tuples; pick k_ALG = min k with δ_k <= 2δ.

Guarantee: k_ALG <= k_OPT(δ) and, by the triangle inequality, no two
landmarks in a cluster are more than 4δ apart.  The worst-case intra-cluster
bound ε = 4δ is what the rest of the system treats as its error tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import DiscretizationError
from .kcenter import KCenterResult, gonzalez_kcenter
from .metrics import DistanceMatrix


@dataclass(frozen=True)
class GreedySearchTrace:
    """One probed (k, δ_k) pair from the binary search."""

    k: int
    radius: float
    accepted: bool


@dataclass(frozen=True)
class Clustering:
    """A landmark partition with its realised quality numbers."""

    clusters: List[List[int]]
    centers: List[int]
    radius: float
    max_intra_distance: float
    delta_target: float
    trace: List[GreedySearchTrace] = field(default_factory=list)

    @property
    def k(self) -> int:
        return len(self.clusters)

    def cluster_of(self) -> Dict[int, int]:
        """Map each landmark index to its cluster index."""
        mapping: Dict[int, int] = {}
        for cluster_index, members in enumerate(self.clusters):
            for landmark in members:
                mapping[landmark] = cluster_index
        return mapping


def greedy_search(
    matrix: DistanceMatrix,
    delta: float,
    first_center: int = 0,
) -> Clustering:
    """Run GREEDYSEARCH for target inter-landmark distance ``delta``.

    Returns the clustering for the smallest probed k whose greedy radius is
    at most ``2 * delta``.  Raises
    :class:`~repro.exceptions.DiscretizationError` if even k = n fails (only
    possible with infinite distances between distinct landmarks, i.e. a
    disconnected metric — but k = n always yields radius 0, so this means the
    instance itself was degenerate).
    """
    if delta <= 0:
        raise ValueError(f"delta must be > 0, got {delta!r}")
    n = matrix.n
    if n == 0:
        raise DiscretizationError("cannot cluster zero landmarks")
    iterations = max(1, math.ceil(math.log2(n))) if n > 1 else 1

    trace: List[GreedySearchTrace] = []
    results: Dict[int, KCenterResult] = {}

    def probe(k: int) -> KCenterResult:
        if k not in results:
            results[k] = gonzalez_kcenter(matrix, k, first_center)
        return results[k]

    lo, hi = 1, n
    for _iteration in range(iterations):
        if lo > hi:
            break
        k = (lo + hi) // 2
        result = probe(k)
        accepted = result.radius <= 2.0 * delta
        trace.append(GreedySearchTrace(k=k, radius=result.radius, accepted=accepted))
        if accepted:
            hi = k - 1
        else:
            lo = k + 1

    accepted_ks = [t.k for t in trace if t.accepted]
    if not accepted_ks:
        # The binary search can exhaust its iterations without probing an
        # accepting k on adversarial metrics; k = n (radius 0) always works.
        result = probe(n)
        trace.append(GreedySearchTrace(k=n, radius=result.radius, accepted=True))
        accepted_ks = [n]
    k_alg = min(accepted_ks)
    chosen = probe(k_alg)

    # Every Gonzalez centre is assigned to itself, so groups are non-empty in
    # practice; the pairing keeps centres aligned with clusters regardless.
    paired = [
        (center, members)
        for center, members in zip(chosen.centers, chosen.clusters())
        if members
    ]
    clusters = [members for _center, members in paired]
    centers = [center for center, _members in paired]
    max_intra = max(
        (matrix.max_pairwise(members) for members in clusters), default=0.0
    )
    if max_intra > 4.0 * delta + 1e-9:
        raise DiscretizationError(
            f"bicriteria guarantee violated: intra-cluster {max_intra} > 4δ "
            f"({4.0 * delta}); this indicates a non-metric distance matrix"
        )
    return Clustering(
        clusters=clusters,
        centers=centers,
        radius=chosen.radius,
        max_intra_distance=max_intra,
        delta_target=delta,
        trace=trace,
    )
