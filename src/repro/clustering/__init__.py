"""CLUSTERMINIMIZATION: algorithms and guarantees (paper Section V).

Given the filtered landmarks, the problem is to partition them into the
minimum number of clusters such that no two landmarks in a cluster are more
than δ driving distance apart.  The paper proves NP-completeness and set-cover
hardness, then gives GREEDYSEARCH — a binary search over k around the
Gonzalez greedy 2-approximation for METRIC K-CENTER — with the bicriteria
guarantee (k_ALG ≤ k_OPT, intra-cluster ≤ 4δ) of Theorem 6.

This package implements:

* :mod:`~repro.clustering.metrics` — landmark driving-distance matrices,
* :mod:`~repro.clustering.kcenter` — the Gonzalez greedy subroutine,
* :mod:`~repro.clustering.greedy_search` — GREEDYSEARCH itself,
* :mod:`~repro.clustering.clique_partition` — the threshold-graph view with
  validation and a greedy heuristic,
* :mod:`~repro.clustering.exact` — an exact branch-and-bound solver used to
  *verify* the bicriteria guarantee on small instances.
"""

from .metrics import DistanceMatrix, landmark_distance_matrix
from .kcenter import KCenterResult, gonzalez_kcenter
from .greedy_search import Clustering, GreedySearchTrace, greedy_search
from .clique_partition import (
    greedy_clique_cover,
    is_valid_partition,
    max_intra_cluster_distance,
    threshold_graph,
)
from .exact import exact_cluster_minimization

__all__ = [
    "DistanceMatrix",
    "landmark_distance_matrix",
    "KCenterResult",
    "gonzalez_kcenter",
    "Clustering",
    "GreedySearchTrace",
    "greedy_search",
    "threshold_graph",
    "is_valid_partition",
    "max_intra_cluster_distance",
    "greedy_clique_cover",
    "exact_cluster_minimization",
]
