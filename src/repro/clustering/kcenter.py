"""Gonzalez's greedy 2-approximation for METRIC K-CENTER.

GREEDYSEARCH (Theorem 6) uses this as its subroutine ("GREEDY"): pick an
arbitrary first centre, then repeatedly pick the point farthest from its
nearest chosen centre.  For any k, the resulting covering radius is at most
twice optimal (Gonzalez 1985), which is exactly the property the bicriteria
proof leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .metrics import DistanceMatrix


@dataclass(frozen=True)
class KCenterResult:
    """Output of the greedy k-center subroutine.

    ``assignment[i]`` is the index (into ``centers``) of point i's centre;
    ``radius`` is the maximum distance of any point to its centre.
    """

    centers: List[int]
    assignment: List[int]
    radius: float

    @property
    def k(self) -> int:
        return len(self.centers)

    def clusters(self) -> List[List[int]]:
        """Materialise the partition as lists of point indices."""
        groups: List[List[int]] = [[] for _center in self.centers]
        for point, center_index in enumerate(self.assignment):
            groups[center_index].append(point)
        return groups


def gonzalez_kcenter(
    matrix: DistanceMatrix,
    k: int,
    first_center: int = 0,
) -> KCenterResult:
    """Greedy farthest-point k-center on a distance matrix.

    Deterministic given ``first_center``.  ``k`` is clamped to ``n``.
    """
    n = matrix.n
    if n == 0:
        raise ValueError("k-center on an empty instance")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k!r}")
    if not (0 <= first_center < n):
        raise ValueError(f"first_center out of range: {first_center!r}")
    k = min(k, n)
    values = matrix.values
    centers = [first_center]
    # nearest[i] = distance of i to its nearest chosen centre
    nearest = values[first_center].copy()
    assignment = np.zeros(n, dtype=np.intp)
    while len(centers) < k:
        farthest = int(np.argmax(nearest))
        if nearest[farthest] == 0.0:
            break  # every point coincides with a centre already
        centers.append(farthest)
        dist_new = values[farthest]
        closer = dist_new < nearest
        nearest = np.where(closer, dist_new, nearest)
        assignment = np.where(closer, len(centers) - 1, assignment)
    radius = float(nearest.max()) if n else 0.0
    return KCenterResult(centers=centers, assignment=list(map(int, assignment)), radius=radius)
