"""The threshold-graph / clique-partition view of CLUSTERMINIMIZATION.

The paper (Section V) observes that with vertices = landmarks and an edge iff
distance <= δ, CLUSTERMINIMIZATION is exactly minimum clique partition on the
threshold graph.  This module provides that graph view, partition validation,
quality measurement, and a simple greedy clique-cover heuristic used as an
ablation baseline for GREEDYSEARCH.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from .metrics import DistanceMatrix


def threshold_graph(matrix: DistanceMatrix, delta: float) -> List[Set[int]]:
    """Adjacency sets of the δ-threshold graph (no self loops)."""
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta!r}")
    values = matrix.values
    n = matrix.n
    adjacency: List[Set[int]] = [set() for _vertex in range(n)]
    close = values <= delta
    np.fill_diagonal(close, False)
    rows, cols = np.nonzero(close)
    for i, j in zip(rows.tolist(), cols.tolist()):
        adjacency[i].add(j)
    return adjacency


def is_valid_partition(
    clusters: Sequence[Sequence[int]],
    n: int,
    matrix: DistanceMatrix,
    delta: float,
) -> bool:
    """Check the ILP constraints: exact cover + pairwise distance <= δ."""
    seen: Set[int] = set()
    for members in clusters:
        for landmark in members:
            if landmark in seen:
                return False  # assigned twice
            seen.add(landmark)
        if matrix.max_pairwise(members) > delta:
            return False
    return seen == set(range(n))


def max_intra_cluster_distance(
    clusters: Sequence[Sequence[int]],
    matrix: DistanceMatrix,
) -> float:
    """Worst pairwise distance across all clusters (0.0 if all singletons)."""
    return max((matrix.max_pairwise(members) for members in clusters), default=0.0)


def greedy_clique_cover(matrix: DistanceMatrix, delta: float) -> List[List[int]]:
    """Heuristic minimum clique partition: grow cliques from unplaced vertices.

    Respects δ *exactly* (unlike GREEDYSEARCH's 4δ stretch) but offers no
    bound on the number of cliques.  Used as an ablation baseline.
    """
    n = matrix.n
    adjacency = threshold_graph(matrix, delta)
    unplaced = set(range(n))
    clusters: List[List[int]] = []
    # Process lowest-degree vertices first: they are the hardest to place.
    order = sorted(range(n), key=lambda v: len(adjacency[v]))
    for seed in order:
        if seed not in unplaced:
            continue
        clique = [seed]
        candidates = adjacency[seed] & unplaced
        while candidates:
            # Choose the candidate with the most connections into the
            # remaining candidate pool, to keep the clique growable.
            best = max(candidates, key=lambda v: (len(adjacency[v] & candidates), -v))
            clique.append(best)
            candidates &= adjacency[best]
            candidates.discard(best)
        for member in clique:
            unplaced.discard(member)
        clusters.append(sorted(clique))
    return clusters
