"""Distance matrices over landmarks.

The clustering algorithms and the in-memory index both consume an n x n
matrix of landmark-to-landmark *driving* distances.  Preprocessing fills it
with one Dijkstra per landmark, restricted to the landmark node set as
targets (Section VI stores exactly this: "distances between landmarks").

Road graphs are directed, so raw distances are asymmetric; the theory
(Theorem 6) needs a metric.  We symmetrise with ``max(d_ij, d_ji)``, the
conservative choice: any guarantee stated on the symmetrised metric holds for
both directions of real driving.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..landmarks import Landmark
from ..roadnet import RoadNetwork, dijkstra_all


class DistanceMatrix:
    """A dense, symmetric distance matrix with validation.

    Wraps a float64 numpy array; unreachable pairs are ``inf``.
    """

    def __init__(self, values: np.ndarray):
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise ValueError(f"distance matrix must be square, got {array.shape}")
        if (np.diag(array) != 0.0).any():
            raise ValueError("distance matrix diagonal must be zero")
        finite = array[np.isfinite(array)]
        if (finite < 0).any():
            raise ValueError("distances must be non-negative")
        if not np.array_equal(array, array.T):
            raise ValueError("distance matrix must be symmetric")
        self._values = array

    @property
    def n(self) -> int:
        return self._values.shape[0]

    @property
    def values(self) -> np.ndarray:
        """The underlying (read-only) array."""
        return self._values

    def __getitem__(self, key):
        return self._values[key]

    def distance(self, i: int, j: int) -> float:
        return float(self._values[i, j])

    def max_pairwise(self, indices: Sequence[int]) -> float:
        """Maximum distance among a subset of points (0.0 for size <= 1)."""
        idx = np.asarray(list(indices), dtype=np.intp)
        if idx.size <= 1:
            return 0.0
        sub = self._values[np.ix_(idx, idx)]
        return float(sub.max())

    def min_cross(self, a: Sequence[int], b: Sequence[int]) -> float:
        """Minimum distance between two subsets (the paper's cluster distance)."""
        ia = np.asarray(list(a), dtype=np.intp)
        ib = np.asarray(list(b), dtype=np.intp)
        if ia.size == 0 or ib.size == 0:
            raise ValueError("min_cross of an empty subset")
        return float(self._values[np.ix_(ia, ib)].min())


def landmark_distance_matrix(
    network: RoadNetwork,
    landmarks: Sequence[Landmark],
    symmetrise: str = "max",
) -> DistanceMatrix:
    """Driving-distance matrix between landmark road nodes.

    ``symmetrise`` is ``"max"`` (conservative, default) or ``"mean"``.
    Unreachable pairs become ``inf`` (they can never share a cluster).
    """
    if symmetrise not in ("max", "mean"):
        raise ValueError(f"symmetrise must be 'max' or 'mean', got {symmetrise!r}")
    n = len(landmarks)
    nodes = [lm.node for lm in landmarks]
    node_set = set(nodes)
    raw = np.full((n, n), np.inf, dtype=np.float64)
    for i, source in enumerate(nodes):
        dist = dijkstra_all(network, source, targets=set(node_set))
        for j, target in enumerate(nodes):
            if target in dist:
                raw[i, j] = dist[target]
    np.fill_diagonal(raw, 0.0)
    if symmetrise == "max":
        sym = np.maximum(raw, raw.T)
    else:
        sym = (raw + raw.T) / 2.0
    np.fill_diagonal(sym, 0.0)
    return DistanceMatrix(sym)
