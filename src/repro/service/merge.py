"""K-way merge of per-shard search results.

Each shard's :func:`~repro.core.search.search_rides` returns its matches
already sorted by the engine's ranking key — least total walking, then
pickup ETA, then ride id.  Merging the shard batches with the same key via
:func:`heapq.merge` therefore reproduces *exactly* the ordering a single
engine holding every ride would have produced, which is what makes sharded
search results deterministic regardless of which shard answered first.

**The rank order is total.**  ``rank_key`` ends with the ride id, ride ids
are globally unique (each shard allocates from a disjoint arithmetic lane),
and every ride lives on exactly one shard — so no two matches anywhere in a
fan-out can compare equal, and the merged list is *strictly* increasing.
That strictness is what lets the differential harness
(:mod:`repro.verify.differential`) assert exact result-list equality across
single-engine and sharded façades instead of settling for set equality.
``merge_matches`` enforces it: a tie or inversion in the merged output means
a shard broke its lane (duplicate ride id) or returned an unsorted batch,
and is reported as :class:`~repro.exceptions.ServiceError` rather than
silently producing nondeterministic tie orders.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from ..core.search import MatchOption
from ..exceptions import ServiceError


def rank_key(match: MatchOption) -> Tuple[float, float, int]:
    """The engine's match ordering (see ``search_rides``).

    The trailing ride id makes the order **total**: globally unique ids mean
    no two distinct matches ever compare equal.
    """
    return (match.total_walk_m, match.eta_pickup_s, match.ride_id)


def assert_rank_order(matches: Sequence[MatchOption]) -> None:
    """Verify a merged result list is strictly increasing in ``rank_key``.

    A violation is a service bug (ride-id lane collision across shards or an
    unsorted shard batch), surfaced as :class:`ServiceError`.
    """
    previous: Optional[Tuple[float, float, int]] = None
    for match in matches:
        key = rank_key(match)
        if previous is not None and key <= previous:
            raise ServiceError(
                f"merged search results violate the total rank order: "
                f"{key} follows {previous} (duplicate ride id lane or "
                f"unsorted shard batch)"
            )
        previous = key


def merge_matches(
    batches: Sequence[List[MatchOption]],
    k: Optional[int] = None,
) -> List[MatchOption]:
    """Merge sorted per-shard batches into one globally ranked list.

    The output is checked to be strictly rank-ordered (cheap O(n) sweep);
    see :func:`assert_rank_order`.
    """
    if len(batches) == 1:
        # Width-1 fan-out (shard-local traffic): already globally ranked.
        batch = batches[0]
        out = list(batch) if k is None else batch[:k]
        assert_rank_order(out)
        return out
    merged = heapq.merge(*batches, key=rank_key)
    if k is None:
        out = list(merged)
    else:
        out = []
        for match in merged:
            out.append(match)
            if len(out) >= k:
                break
    assert_rank_order(out)
    return out
