"""K-way merge of per-shard search results.

Each shard's :func:`~repro.core.search.search_rides` returns its matches
already sorted by the engine's ranking key — least total walking, then
pickup ETA, then ride id.  Merging the shard batches with the same key via
:func:`heapq.merge` therefore reproduces *exactly* the ordering a single
engine holding every ride would have produced, which is what makes sharded
search results deterministic regardless of which shard answered first.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from ..core.search import MatchOption


def rank_key(match: MatchOption) -> Tuple[float, float, int]:
    """The engine's match ordering (see ``search_rides``)."""
    return (match.total_walk_m, match.eta_pickup_s, match.ride_id)


def merge_matches(
    batches: Sequence[List[MatchOption]],
    k: Optional[int] = None,
) -> List[MatchOption]:
    """Merge sorted per-shard batches into one globally ranked list."""
    if len(batches) == 1:
        # Width-1 fan-out (shard-local traffic): already globally ranked.
        batch = batches[0]
        return list(batch) if k is None else batch[:k]
    merged = heapq.merge(*batches, key=rank_key)
    if k is None:
        return list(merged)
    out: List[MatchOption] = []
    for match in merged:
        out.append(match)
        if len(out) >= k:
            break
    return out
