"""Sharded concurrent ride-matching service.

The serving layer in front of the engines: a :class:`ShardRouter` partitions
the region's cluster space into N shards (in the spirit of *When Hashing Met
Matching*'s spatio-temporal partitioning), each owning an independent
:class:`~repro.core.XAREngine` behind a worker thread with a bounded request
queue.  Cross-shard searches fan out and k-way-merge by the engine's ranking
key; full queues shed load explicitly; tracking ticks are batched and
amortized per shard.  :class:`LoadGenerator` drives the whole thing closed-
loop at a target QPS and reports throughput plus p50/p95/p99 latency per
operation against :class:`ServiceSLO` objectives.

The router implements the simulator's ``EngineAdapter`` protocol, so every
existing harness (replay simulator, fault injector, resilient runtime) can
drive a sharded fleet unchanged.

Process mode (:mod:`~repro.service.proc`) promotes each shard worker to a
supervised *subprocess* — real fault domains, no shared GIL — behind the
same adapter surface (:class:`ProcRouter`), with an async HTTP gateway
(:class:`Gateway`) and client (:class:`HttpServiceClient`) on top.
"""

from .loadgen import LoadGenConfig, LoadGenerator, LoadReport, skew_hotspot
from .merge import merge_matches, rank_key
from .proc import (
    Gateway,
    GatewayConfig,
    HttpServiceClient,
    ProcRouter,
    ShardSupervisor,
    SupervisorConfig,
)
from .reshard import ReshardAction, ReshardConfig, ReshardController
from .router import ShardRouter
from .shard import ShardStats, ShardWorker
from .sharding import ShardMap, derive_seed, shard_local_requests
from .slo import ServiceSLO

__all__ = [
    "Gateway",
    "GatewayConfig",
    "HttpServiceClient",
    "LoadGenConfig",
    "LoadGenerator",
    "LoadReport",
    "merge_matches",
    "rank_key",
    "ProcRouter",
    "ReshardAction",
    "ReshardConfig",
    "ReshardController",
    "ShardRouter",
    "ShardStats",
    "ShardWorker",
    "ShardMap",
    "ShardSupervisor",
    "SupervisorConfig",
    "derive_seed",
    "shard_local_requests",
    "skew_hotspot",
    "ServiceSLO",
]
