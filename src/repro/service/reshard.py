"""Elastic resharding: load-watching controller over a sharded router.

The routers own the *mechanism* — ``split_shard`` / ``merge_shards`` carve
WALs, hand off ride-id lanes and swap the epoch-versioned routing table —
while :class:`ReshardController` owns the *policy*: watch per-shard load
(op rate, queue depth, p95 service time, all from the service's own
:class:`~repro.obs.MetricsRegistry` series) and decide when a shard is hot
enough to split or a pair of strip-adjacent shards cold enough to merge.

Pressure model: a slot's load score is ``(ops since the last decision +
current queue depth) × p95 service time`` — an estimate of wall-clock the
slot spent (and is about to spend) serving, so a shard that is slow *per
op* counts as hot even at a modest rate.  Scores are normalized by the
active-slot mean into per-shard load **ratios** (exported as
``xar_shard_load_ratio``); a ratio at or above ``split_pressure`` triggers
a split of the hottest slot, and two adjacent slots both at or below
``merge_pressure`` trigger a merge.  Decisions are rate-limited by op
volume (``min_interval_ops``), not wall-clock, so the cadence is
reproducible under a paced load generator.

The controller is deliberately duck-typed over the router surface
(``shard_loads`` / ``active_slot_ids`` / ``split_shard`` /
``merge_shards``): the thread-shard :class:`~repro.service.router.ShardRouter`
and the process-shard :class:`~repro.service.proc.router.ProcRouter` both
satisfy it (the latter without merges — process-mode merge is an open
item, see docs/resharding.md).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..exceptions import ReshardError, XARError


@dataclass
class ReshardConfig:
    """Policy knobs for elastic resharding.

    Passing one to a router *enables* reshard mode: the router fixes its
    ride-id lane modulus at ``max_shards`` up front (so children allocate
    from disjoint lanes without renumbering) and maintains the dynamic
    lane/redirect tables.  A router without one is byte-identical to the
    pre-reshard static service.
    """

    #: Ride-id lane budget = hard ceiling on slots ever created.  Splits
    #: consume one fresh lane each; merges park lanes without recycling
    #: them, so ``max_shards`` bounds the number of splits over the
    #: service's lifetime, not just the concurrent shard count.
    max_shards: int = 8
    #: Split the hottest slot when its load ratio (share of the active-slot
    #: mean) reaches this.
    split_pressure: float = 1.75
    #: Merge two strip-adjacent slots when *both* ratios are at or below
    #: this (thread mode only).
    merge_pressure: float = 0.4
    #: Completed ops across the fleet between controller decisions
    #: (volume-based, so paced runs reshard reproducibly).
    min_interval_ops: int = 400
    #: A slot must own at least this many clusters to be split.
    min_split_clusters: int = 2
    #: Ceiling on actions per controller lifetime (0 = unbounded).
    max_actions: int = 0
    #: Allow merge decisions at all (splits are always allowed).
    merge_enabled: bool = True


@dataclass
class ReshardAction:
    """One decision the controller took (or refused)."""

    action: str  # "split" | "merge" | "refused"
    slot: int
    peer: Optional[int] = None  # new slot for splits, src slot for merges
    epoch: Optional[int] = None
    ratio: float = 0.0
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "action": self.action,
            "slot": self.slot,
            "peer": self.peer,
            "epoch": self.epoch,
            "ratio": round(self.ratio, 3),
            "detail": self.detail,
        }


class ReshardController:
    """Watches per-shard load and drives split/merge on a router."""

    def __init__(self, router: Any, config: Optional[ReshardConfig] = None):
        self.router = router
        self.config = (
            config
            or getattr(router, "reshard_config", None)
            or ReshardConfig()
        )
        self.metrics = router.metrics
        self._g_ratio = self.metrics.gauge(
            "xar_shard_load_ratio",
            "Per-shard load score over the active-slot mean "
            "(1.0 = perfectly balanced)",
            labels=("shard",),
        )
        self._lock = threading.Lock()
        self._ops_at_last_decision: Dict[int, float] = {}
        self._total_at_last_decision = 0.0
        self.actions: List[ReshardAction] = []
        self._last_ratios: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Load observation
    # ------------------------------------------------------------------
    def observe(self) -> Dict[int, float]:
        """Current per-slot load ratios (score over active-slot mean)."""
        loads = self.router.shard_loads()
        scores: Dict[int, float] = {}
        for slot, load in loads.items():
            delta = load["ops"] - self._ops_at_last_decision.get(slot, 0.0)
            # Utilization estimate: (served + queued) ops × p95 per-op cost.
            # The 1e-6 floor keeps a slot with no latency samples yet from
            # scoring zero while its queue is already backing up.
            scores[slot] = (max(0.0, delta) + load.get("queue", 0.0)) * max(
                load.get("p95_s", 0.0), 1e-6
            )
        mean = sum(scores.values()) / len(scores) if scores else 0.0
        ratios = {
            slot: (score / mean if mean > 0 else 1.0)
            for slot, score in scores.items()
        }
        for slot, ratio in ratios.items():
            self._g_ratio.labels(shard=str(slot)).set(ratio)
        self._last_ratios = ratios
        return ratios

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def tick(self) -> Optional[ReshardAction]:
        """Observe, and reshard when pressure thresholds demand it.

        Cheap when the op-volume interval has not elapsed.  Returns the
        action taken, or ``None``.  Safe to call from load-generator driver
        threads (the chaos seam): decisions are serialized by the
        controller's lock, and the router's own failover lock serializes
        execution against failovers and concurrent submitters.
        """
        config = self.config
        with self._lock:
            if config.max_actions and len(
                [a for a in self.actions if a.action != "refused"]
            ) >= config.max_actions:
                return None
            loads = self.router.shard_loads()
            total = sum(load["ops"] for load in loads.values())
            if total - self._total_at_last_decision < config.min_interval_ops:
                return None
            ratios = self.observe()
            self._total_at_last_decision = total
            self._ops_at_last_decision = {
                slot: load["ops"] for slot, load in loads.items()
            }
            action = self._decide(ratios, loads)
            if action is not None:
                self.actions.append(action)
            return action

    def _decide(
        self,
        ratios: Dict[int, float],
        loads: Dict[int, Dict[str, float]],
    ) -> Optional[ReshardAction]:
        config = self.config
        if not ratios:
            return None
        hottest = max(sorted(ratios), key=lambda slot: ratios[slot])
        if ratios[hottest] >= config.split_pressure:
            if loads[hottest].get("clusters", 0) < config.min_split_clusters:
                return None
            try:
                new_slot = self.router.split_shard(hottest)
            except ReshardError as exc:
                return ReshardAction(
                    action="refused", slot=hottest, ratio=ratios[hottest],
                    detail=str(exc),
                )
            return ReshardAction(
                action="split", slot=hottest, peer=new_slot,
                epoch=self.router.shard_map.epoch, ratio=ratios[hottest],
            )
        if config.merge_enabled and len(ratios) > 1:
            merge = getattr(self.router, "merge_shards", None)
            if merge is None:
                return None
            for a, b in self.router.shard_map.adjacent_pairs():
                if (
                    ratios.get(a, 1.0) <= config.merge_pressure
                    and ratios.get(b, 1.0) <= config.merge_pressure
                ):
                    try:
                        merge(a, b)
                    except (ReshardError, XARError) as exc:
                        return ReshardAction(
                            action="refused", slot=a, peer=b,
                            ratio=ratios.get(b, 0.0), detail=str(exc),
                        )
                    return ReshardAction(
                        action="merge", slot=a, peer=b,
                        epoch=self.router.shard_map.epoch,
                        ratio=ratios.get(b, 0.0),
                    )
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """Controller + topology snapshot (the ``xar reshard status`` view)."""
        return {
            "epoch": self.router.shard_map.epoch,
            "active_slots": list(self.router.active_slot_ids()),
            "ratios": {
                str(slot): round(ratio, 3)
                for slot, ratio in sorted(self._last_ratios.items())
            },
            "actions": [action.as_dict() for action in self.actions],
            "config": {
                "max_shards": self.config.max_shards,
                "split_pressure": self.config.split_pressure,
                "merge_pressure": self.config.merge_pressure,
                "min_interval_ops": self.config.min_interval_ops,
            },
        }
