"""Spatial partitioning of the cluster space into shards.

In the spirit of *When Hashing Met Matching* (Dutta, PAPERS.md), the city's
cluster space is partitioned so each shard owns a contiguous slice of it:
clusters are ordered by the position of their center landmark (longitude
strips, latitude-then-id tie-broken) and cut into ``n_shards`` slices of
equal cluster count.  The partition is a pure function of the region and the
shard count — every process that builds a :class:`ShardMap` over the same
region agrees on cluster ownership, which is what makes sharded runs
reproducible.

Routing rules derived from the partition:

* a **ride** is homed on the shard owning its source's cluster (fallback: a
  deterministic hash of the source's grid cell);
* a **search** fans out to every shard owning a walkable cluster of the
  request's source or destination, optionally expanded to *neighboring*
  shards whose clusters lie within ``fanout_radius_m`` of those walkable
  clusters (rides originating farther away but passing through are the
  recall cost of local fan-out; ``fanout="all"`` restores full recall).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.request import RideRequest
from ..discretization import DiscretizedRegion
from ..geo import GeoPoint


class ShardMap:
    """Deterministic cluster → shard assignment over one region."""

    def __init__(self, region: DiscretizedRegion, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        self.region = region
        self.n_shards = min(n_shards, max(1, region.n_clusters))
        self._cluster_shard = self._partition()
        #: (cluster_id, radius) -> shards owning any cluster within radius.
        #: Routers use one fixed radius, so this fills once per cluster and
        #: turns the expansion into a dict hit on the search hot path.
        self._neighbor_cache: dict = {}

    def _partition(self) -> List[int]:
        """Contiguous longitude strips balanced by cluster count.

        Strips beat 2-D tiles empirically: tile-local requests cluster near
        the city center where through-traffic from every tile converges, so
        quadrant engines keep most of the pass-through candidates that
        strips exclude.
        """
        region = self.region

        def strip_key(cluster) -> Tuple[float, float, int]:
            center = region.landmarks[cluster.center_landmark].position
            return (center.lon, center.lat, cluster.cluster_id)

        ordered = sorted(region.clusters, key=strip_key)
        assignment = [0] * region.n_clusters
        n = len(ordered)
        for rank, cluster in enumerate(ordered):
            # Equal-count slices: shard = floor(rank * n_shards / n).
            assignment[cluster.cluster_id] = min(
                self.n_shards - 1, rank * self.n_shards // max(1, n)
            )
        return assignment

    # ------------------------------------------------------------------
    # Ownership lookups
    # ------------------------------------------------------------------
    def shard_of_cluster(self, cluster_id: int) -> int:
        return self._cluster_shard[cluster_id]

    def clusters_of_shard(self, shard_id: int) -> Tuple[int, ...]:
        return tuple(
            cluster_id
            for cluster_id, shard in enumerate(self._cluster_shard)
            if shard == shard_id
        )

    def shard_of_point(self, point: GeoPoint) -> int:
        """Home shard of a point: its cluster's owner.

        Uncovered points (no associated landmark, no walkable cluster) fall
        back to a deterministic hash of their grid cell so routing never
        fails — the shard engine itself decides whether to serve them.
        """
        cluster_id = self.region.cluster_of_point(point)
        if cluster_id is None:
            options = self.region.walkable_clusters(point)
            if options:
                cluster_id = options[0].cluster_id
        if cluster_id is not None:
            return self._cluster_shard[cluster_id]
        cx, cy = self.region.cell_of(point)
        return (cx * 31 + cy * 17) % self.n_shards

    # ------------------------------------------------------------------
    # Search fan-out
    # ------------------------------------------------------------------
    def shards_for_request(
        self,
        request: RideRequest,
        fanout_radius_m: float = 0.0,
    ) -> List[int]:
        """Shards a search must consult, ascending (deterministic order).

        The walkable clusters of the request's source and destination name
        the clusters where a matching ride must be indexed; their owners are
        the *home* shards.  ``fanout_radius_m`` expands the set with
        neighboring shards owning any cluster within that driving distance
        of the walkable clusters (cheap: reads the precomputed cluster
        distance matrix).  Falls back to the point's home shard when the
        request is entirely uncovered.
        """
        region = self.region
        clusters = set()
        for point in (request.source, request.destination):
            for option in region.walkable_clusters(point, request.walk_threshold_m):
                clusters.add(option.cluster_id)
        if not clusters:
            return [self.shard_of_point(request.source)]
        shards = {self._cluster_shard[cluster_id] for cluster_id in clusters}
        if fanout_radius_m > 0:
            for cluster_id in clusters:
                shards.update(self._neighbor_shards(cluster_id, fanout_radius_m))
        return sorted(shards)

    def _neighbor_shards(self, cluster_id: int, radius_m: float) -> frozenset:
        """Owners of all clusters within ``radius_m`` of one cluster, memoised."""
        key = (cluster_id, radius_m)
        cached = self._neighbor_cache.get(key)
        if cached is None:
            cached = frozenset(
                self._cluster_shard[neighbor]
                for neighbor, _distance in self.region.clusters_within(
                    cluster_id, radius_m
                )
            )
            self._neighbor_cache[key] = cached
        return cached

    def shard_sizes(self) -> List[int]:
        """Cluster count per shard (partition-balance diagnostic)."""
        sizes = [0] * self.n_shards
        for shard in self._cluster_shard:
            sizes[shard] += 1
        return sizes


def derive_seed(root_seed: int, shard_id: int) -> int:
    """Per-shard seed from a root seed: stable arithmetic, no str hashing."""
    return root_seed * 1_000_003 + shard_id + 1


def shard_local_requests(
    shard_map: ShardMap, requests: Sequence[RideRequest]
) -> List[RideRequest]:
    """Requests whose entire walkable footprint lives on a single shard.

    The shard-local slice of a workload is the regime where local fan-out
    loses no recall; the determinism tests replay it across shard counts.
    """
    local: List[RideRequest] = []
    for request in requests:
        shards = shard_map.shards_for_request(request)
        if len(shards) == 1:
            local.append(request)
    return local
