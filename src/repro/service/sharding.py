"""Spatial partitioning of the cluster space into shards.

In the spirit of *When Hashing Met Matching* (Dutta, PAPERS.md), the city's
cluster space is partitioned so each shard owns a contiguous slice of it:
clusters are ordered by the position of their center landmark (longitude
strips, latitude-then-id tie-broken) and cut into ``n_shards`` slices of
equal cluster count.  The partition is a pure function of the region and the
shard count — every process that builds a :class:`ShardMap` over the same
region agrees on cluster ownership, which is what makes sharded runs
reproducible.

The map is no longer frozen at construction: elastic resharding
(:mod:`repro.service.reshard`) evolves it through **epoch-versioned swaps**.
Every installed assignment carries an epoch counter; :meth:`ShardMap.swap`
atomically replaces the cluster → shard table and bumps the epoch, so an
in-flight operation that resolved routing under an older epoch can detect
the race (compare epochs, or simply re-resolve) instead of landing on a
worker that no longer owns the cluster.  :meth:`split_assignment` and
:meth:`merge_assignment` derive candidate tables — a load-weighted cut of
one shard's strip-ordered cluster range, or the union of two shards — but
*install nothing*: the router owns the commit point because the swap must
be coordinated with WAL carving and worker hand-off.

Routing rules derived from the partition:

* a **ride** is homed on the shard owning its source's cluster (fallback: a
  deterministic hash of the source's grid cell);
* a **search** fans out to every shard owning a walkable cluster of the
  request's source or destination, optionally expanded to *neighboring*
  shards whose clusters lie within ``fanout_radius_m`` of those walkable
  clusters (rides originating farther away but passing through are the
  recall cost of local fan-out; ``fanout="all"`` restores full recall).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.request import RideRequest
from ..discretization import DiscretizedRegion
from ..exceptions import ReshardError
from ..geo import GeoPoint


class ShardMap:
    """Deterministic cluster → shard assignment over one region."""

    def __init__(self, region: DiscretizedRegion, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        self.region = region
        self.n_shards = min(n_shards, max(1, region.n_clusters))
        #: Routing-table version.  Bumped by every :meth:`swap`; readers that
        #: captured routing decisions under an older epoch must re-resolve.
        self.epoch = 0
        self._cluster_shard = self._partition()
        #: (cluster_id, radius) -> shards owning any cluster within radius.
        #: Routers use one fixed radius, so this fills once per cluster and
        #: turns the expansion into a dict hit on the search hot path.
        self._neighbor_cache: dict = {}

    def _strip_key(self, cluster) -> Tuple[float, float, int]:
        center = self.region.landmarks[cluster.center_landmark].position
        return (center.lon, center.lat, cluster.cluster_id)

    def _partition(self) -> List[int]:
        """Contiguous longitude strips balanced by cluster count.

        Strips beat 2-D tiles empirically: tile-local requests cluster near
        the city center where through-traffic from every tile converges, so
        quadrant engines keep most of the pass-through candidates that
        strips exclude.

        Clusters whose center landmarks share an *identical* (lon, lat)
        position are kept on one shard even when the equal-count cut falls
        between them.  Their strip order is decided only by the cluster-id
        tiebreak — an artifact of construction order, not geometry — so a
        cut inside such a run would make ownership depend on float-compare
        order and could flip across an epoch swap.  The whole run goes to
        the shard of its first member (near-always a no-op: real regions
        have distinct landmark positions).
        """
        region = self.region
        ordered = sorted(region.clusters, key=self._strip_key)
        assignment = [0] * region.n_clusters
        n = len(ordered)
        for rank, cluster in enumerate(ordered):
            # Equal-count slices: shard = floor(rank * n_shards / n).
            assignment[cluster.cluster_id] = min(
                self.n_shards - 1, rank * self.n_shards // max(1, n)
            )
        i = 0
        while i < n:
            j = i + 1
            first = self._strip_key(ordered[i])[:2]
            while j < n and self._strip_key(ordered[j])[:2] == first:
                j += 1
            if j - i > 1:
                owner = assignment[ordered[i].cluster_id]
                for cluster in ordered[i + 1:j]:
                    assignment[cluster.cluster_id] = owner
            i = j
        return assignment

    # ------------------------------------------------------------------
    # Ownership lookups
    # ------------------------------------------------------------------
    def shard_of_cluster(self, cluster_id: int) -> int:
        return self._cluster_shard[cluster_id]

    def clusters_of_shard(self, shard_id: int) -> Tuple[int, ...]:
        return tuple(
            cluster_id
            for cluster_id, shard in enumerate(self._cluster_shard)
            if shard == shard_id
        )

    def shard_of_point(self, point: GeoPoint) -> int:
        """Home shard of a point: its cluster's owner.

        Uncovered points (no associated landmark, no walkable cluster) fall
        back to a deterministic hash of their grid cell so routing never
        fails — the shard engine itself decides whether to serve them.
        """
        cluster_id = self.region.cluster_of_point(point)
        if cluster_id is None:
            options = self.region.walkable_clusters(point)
            if options:
                cluster_id = options[0].cluster_id
        if cluster_id is not None:
            return self._cluster_shard[cluster_id]
        cx, cy = self.region.cell_of(point)
        return (cx * 31 + cy * 17) % self.n_shards

    # ------------------------------------------------------------------
    # Epoch-versioned swaps (elastic resharding)
    # ------------------------------------------------------------------
    def assignment(self) -> List[int]:
        """A copy of the live cluster → shard table."""
        return list(self._cluster_shard)

    def swap(self, assignment: Sequence[int], n_shards: int) -> int:
        """Atomically install a new routing table; returns the new epoch.

        The caller (the router's reshard path, under its failover lock) has
        already prepared the target topology — carved WALs, spawned
        workers — so the swap itself is just the table flip plus the epoch
        bump.  Derived caches (neighbor expansion) are invalidated.
        """
        if len(assignment) != self.region.n_clusters:
            raise ReshardError(
                f"assignment covers {len(assignment)} clusters, region has "
                f"{self.region.n_clusters}"
            )
        if n_shards < 1:
            raise ReshardError(f"n_shards must be >= 1, got {n_shards!r}")
        for cluster_id, shard in enumerate(assignment):
            if not 0 <= shard < n_shards:
                raise ReshardError(
                    f"cluster {cluster_id} assigned to shard {shard}, "
                    f"valid range is [0, {n_shards})"
                )
        self._cluster_shard = list(assignment)
        self.n_shards = n_shards
        self._neighbor_cache.clear()
        self.epoch += 1
        return self.epoch

    def restore(self, assignment: Sequence[int], n_shards: int,
                epoch: int) -> None:
        """Install a recovered topology (restart from a manifest)."""
        self.swap(assignment, n_shards)
        self.epoch = epoch

    def split_assignment(
        self,
        shard_id: int,
        new_shard_id: int,
        weights: Optional[Dict[int, float]] = None,
    ) -> Tuple[List[int], List[int]]:
        """Carve ``shard_id``'s cluster range at a load-weighted boundary.

        The shard's clusters are walked in strip order and cut at the
        position that best balances the two halves' total weight (default
        weight 1 per cluster → an equal-count cut; the router passes live
        ride counts so the cut tracks *load*, not geometry).  The cut never
        falls inside a run of identically-positioned centers — the same
        stability rule :meth:`_partition` enforces.  The left half keeps
        ``shard_id``; the right half moves to ``new_shard_id``.

        Returns ``(new_assignment, moved_cluster_ids)`` without installing
        anything.
        """
        owned = [
            cluster
            for cluster in self.region.clusters
            if self._cluster_shard[cluster.cluster_id] == shard_id
        ]
        owned.sort(key=self._strip_key)
        if len(owned) < 2:
            raise ReshardError(
                f"shard {shard_id} owns {len(owned)} cluster(s); "
                "a split needs at least 2"
            )
        weight = weights or {}
        totals = [1.0 + float(weight.get(c.cluster_id, 0.0)) for c in owned]
        total = sum(totals)
        best_cut, best_skew = None, None
        left = 0.0
        for cut in range(1, len(owned)):
            left += totals[cut - 1]
            if (self._strip_key(owned[cut - 1])[:2]
                    == self._strip_key(owned[cut])[:2]):
                continue  # never cut inside a tied-position run
            skew = abs(left - (total - left))
            if best_skew is None or skew < best_skew:
                best_cut, best_skew = cut, skew
        if best_cut is None:
            raise ReshardError(
                f"shard {shard_id}: every cut falls inside a run of "
                "identically-positioned cluster centers; cannot split"
            )
        assignment = list(self._cluster_shard)
        moved = [c.cluster_id for c in owned[best_cut:]]
        for cluster_id in moved:
            assignment[cluster_id] = new_shard_id
        return assignment, moved

    def merge_assignment(self, dst: int, src: int) -> List[int]:
        """Fold ``src``'s clusters into ``dst`` (returns, does not install)."""
        if dst == src:
            raise ReshardError(f"cannot merge shard {src} into itself")
        assignment = list(self._cluster_shard)
        moved = 0
        for cluster_id, shard in enumerate(assignment):
            if shard == src:
                assignment[cluster_id] = dst
                moved += 1
        if moved == 0:
            raise ReshardError(f"shard {src} owns no clusters; nothing to merge")
        return assignment

    def adjacent_pairs(self) -> List[Tuple[int, int]]:
        """Shard pairs adjacent in strip order (merge candidates).

        Walking the global strip order, every boundary between consecutive
        clusters with different owners names an adjacent pair.  Deduplicated,
        in first-encountered order.
        """
        ordered = sorted(self.region.clusters, key=self._strip_key)
        pairs: List[Tuple[int, int]] = []
        seen = set()
        for previous, current in zip(ordered, ordered[1:]):
            a = self._cluster_shard[previous.cluster_id]
            b = self._cluster_shard[current.cluster_id]
            if a != b and (a, b) not in seen:
                seen.add((a, b))
                pairs.append((a, b))
        return pairs

    # ------------------------------------------------------------------
    # Search fan-out
    # ------------------------------------------------------------------
    def shards_for_request(
        self,
        request: RideRequest,
        fanout_radius_m: float = 0.0,
    ) -> List[int]:
        """Shards a search must consult, ascending (deterministic order).

        The walkable clusters of the request's source and destination name
        the clusters where a matching ride must be indexed; their owners are
        the *home* shards.  ``fanout_radius_m`` expands the set with
        neighboring shards owning any cluster within that driving distance
        of the walkable clusters (cheap: reads the precomputed cluster
        distance matrix).  Falls back to the point's home shard when the
        request is entirely uncovered.
        """
        region = self.region
        clusters = set()
        for point in (request.source, request.destination):
            for option in region.walkable_clusters(point, request.walk_threshold_m):
                clusters.add(option.cluster_id)
        if not clusters:
            return [self.shard_of_point(request.source)]
        shards = {self._cluster_shard[cluster_id] for cluster_id in clusters}
        if fanout_radius_m > 0:
            for cluster_id in clusters:
                shards.update(self._neighbor_shards(cluster_id, fanout_radius_m))
        return sorted(shards)

    def _neighbor_shards(self, cluster_id: int, radius_m: float) -> frozenset:
        """Owners of all clusters within ``radius_m`` of one cluster, memoised."""
        key = (cluster_id, radius_m)
        cached = self._neighbor_cache.get(key)
        if cached is None:
            cached = frozenset(
                self._cluster_shard[neighbor]
                for neighbor, _distance in self.region.clusters_within(
                    cluster_id, radius_m
                )
            )
            self._neighbor_cache[key] = cached
        return cached

    def shard_sizes(self) -> List[int]:
        """Cluster count per shard (partition-balance diagnostic)."""
        sizes = [0] * self.n_shards
        for shard in self._cluster_shard:
            sizes[shard] += 1
        return sizes


def derive_seed(root_seed: int, shard_id: int) -> int:
    """Per-shard seed from a root seed: stable arithmetic, no str hashing."""
    return root_seed * 1_000_003 + shard_id + 1


def shard_local_requests(
    shard_map: ShardMap, requests: Sequence[RideRequest]
) -> List[RideRequest]:
    """Requests whose entire walkable footprint lives on a single shard.

    The shard-local slice of a workload is the regime where local fan-out
    loses no recall; the determinism tests replay it across shard counts.
    """
    local: List[RideRequest] = []
    for request in requests:
        shards = shard_map.shards_for_request(request)
        if len(shards) == 1:
            local.append(request)
    return local
