"""The sharded ride-matching service: N engines behind one façade.

:class:`ShardRouter` partitions the region's cluster space with a
:class:`~repro.service.sharding.ShardMap` and gives every shard its own
:class:`~repro.core.XAREngine` behind a :class:`~repro.service.shard.ShardWorker`
(worker thread + bounded queue).  The router speaks the simulator's
``EngineAdapter`` protocol, so everything that can drive one engine — the
replay simulator, the load generator, the fault injector — can drive the
whole fleet unchanged.

Routing rules (see docs/service.md):

* **create** goes to the shard owning the ride source's cluster; each shard
  allocates ride ids from a disjoint arithmetic lane
  (``shard_id + 1 + k * n_shards``) so ids stay globally unique and encode
  their home shard — ``book``/``cancel`` route by ``ride_id % n_shards``
  without any lookup table;
* **search** fans out to the shards owning walkable clusters of the
  request's source/destination (expanded by ``fanout_radius_m``; or every
  shard with ``fanout="all"``) and k-way-merges the per-shard batches by the
  engine's ranking key, reproducing the single-engine ordering exactly;
* **track** broadcasts to all shards, each sweeping only its own rides —
  the tick's cost is amortized 1/N per shard;
* a full queue sheds the operation with
  :class:`~repro.exceptions.ShardOverloadError` (admission control); a
  partially shed fan-out search still serves from the shards that accepted.

**Elastic resharding** (pass ``reshard=ReshardConfig(...)``, requires
durability): the router can split a hot shard in two or merge two cold
adjacent shards at runtime.  The routing table becomes epoch-versioned:
every split/merge atomically swaps the cluster → slot assignment and bumps
the epoch, and an in-flight op that resolved routing under the old epoch
detects the race on the worker thread (its captured slot no longer matches
a fresh resolve) and bounces back to the caller to re-resolve — no lost
ops, no double-apply.  Ride ids move to fixed **lanes** modulo
``ReshardConfig.max_shards``: slot *k* allocates from lane
``_slot_lane[k]``, a split hands the new slot the next unused lane (so the
lane budget bounds lifetime splits), and a merge parks the source's lane on
the destination via the lane-owner table.  Durability of a reshard is a
single atomic commit: child checkpoints + WAL headers are written under
generation-suffixed names first, then the topology manifest
(``topology.json``) is atomically replaced — crash before the manifest
recovers the old topology, crash after recovers the new one (see
docs/resharding.md).

Reproducibility: per-shard RNGs (retry jitter, any stochastic policy) are
derived from one root seed via :func:`~repro.service.sharding.derive_seed`.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import XAREngine
from ..core.booking import BookingRecord
from ..core.request import RideRequest
from ..core.search import MatchOption
from ..discretization import DiscretizedRegion, region_digest
from ..durability import (
    DurabilityConfig,
    DurableAdapter,
    RecoveryResult,
    WriteAheadLog,
    engine_state,
    merge_engine_states,
    read_topology,
    recover_engine,
    split_engine_state,
    state_ride_ids,
    topology_path,
    write_checkpoint_state,
    write_topology,
)
from ..exceptions import (
    ConfigurationError,
    RecoveryError,
    ReshardError,
    ServiceClosedError,
    ShardOverloadError,
    UnknownRideError,
    WorkerCrashError,
    XARError,
)
from ..geo import GeoPoint
from ..obs import DEFAULT_LATENCY_BUCKETS_S, FANOUT_BUCKETS, MetricsRegistry
from ..resilience import InvariantAuditor, ResilienceConfig, ResilientEngine
from ..sim.adapters import XARAdapter
from .merge import merge_matches
from .reshard import ReshardConfig
from .shard import ShardWorker
from .sharding import ShardMap, derive_seed

#: Sentinel a worker-side closure returns when it detects that routing moved
#: its target between submission and execution (epoch race).  Returned, not
#: raised: an exception would be miscounted as an op failure — and a
#: :class:`WorkerCrashError` would kill the worker — when the op merely needs
#: to be resubmitted under the new routing table.
_REROUTED = object()

#: Operations routed through :meth:`ShardRouter._routed_call`, whose job
#: closures carry the epoch-race check and are therefore safe to requeue on
#: a *different* slot's worker during a reshard (they bounce, never touch
#: the wrong adapter).
_ROUTED_OPS = ("create", "book", "cancel", "cancel_booking")


def _durable_of(adapter: Any) -> Optional[DurableAdapter]:
    """The DurableAdapter in an adapter stack, if any (walks ``.inner``)."""
    node = adapter
    while node is not None:
        if isinstance(node, DurableAdapter):
            return node
        node = getattr(node, "inner", None)
    return None


class _Shard:
    """One shard's engine + adapter stack + worker thread.

    A slot merged away keeps its position in ``ShardRouter.shards`` (slot
    ids are append-only so manifests, metrics labels and ride homes stay
    stable) as an ``active=False`` placeholder with no stack.
    """

    __slots__ = ("shard_id", "engine", "adapter", "worker", "active")

    def __init__(self, shard_id: int, engine: Optional[XAREngine],
                 adapter: Any, worker: Optional[ShardWorker],
                 active: bool = True):
        self.shard_id = shard_id
        self.engine = engine
        self.adapter = adapter
        self.worker = worker
        self.active = active


class ShardRouter:
    """Sharded, concurrent ride-matching service (EngineAdapter-shaped)."""

    def __init__(
        self,
        region: DiscretizedRegion,
        n_shards: int,
        *,
        queue_depth: int = 128,
        fanout: str = "local",
        fanout_radius_m: Optional[float] = None,
        resilient: bool = False,
        optimize_insertion: bool = False,
        use_flat_index: bool = True,
        seed: int = 0,
        engine_factory: Optional[Callable[[int, int], XAREngine]] = None,
        metrics: Optional[MetricsRegistry] = None,
        durability: Optional[DurabilityConfig] = None,
        reshard: Optional[ReshardConfig] = None,
    ):
        if fanout not in ("local", "all"):
            raise ValueError(f"fanout must be 'local' or 'all', got {fanout!r}")
        self.region = region
        self.shard_map = ShardMap(region, n_shards)
        self.n_shards = self.shard_map.n_shards
        self.fanout = fanout
        #: Neighbor expansion radius for local fan-out; defaults to the
        #: region's approximation radius ε (clusters within one guarantee
        #: band of the request are consulted too).
        self.fanout_radius_m = (
            fanout_radius_m
            if fanout_radius_m is not None
            else region.config.epsilon_m
        )
        self.seed = seed
        self.name = f"Sharded(XAR x{self.n_shards})"
        self._closed = False
        #: The service's metric registry: every shard engine, worker and
        #: router-level counter reports here (pass a shared registry to
        #: co-locate load-generator series in the same exposition).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Registry counters replacing the racy unlocked ints the router
        #: used to keep — see the ``partial_searches`` / ``search_failures``
        #: read-through properties.
        self._c_partial = self.metrics.counter(
            "xar_router_partial_searches_total",
            "Fan-out searches that lost >= 1 shard to shedding but were "
            "still served from the rest (degraded recall, not failure)",
        )
        self._c_search_failures = self.metrics.counter(
            "xar_router_search_failures_total",
            "Per-shard search calls that raised and contributed an empty "
            "batch instead of failing the whole fan-out",
        )
        self._c_shed_searches = self.metrics.counter(
            "xar_router_shed_searches_total",
            "Searches refused outright: every consulted shard shed",
        )
        self._c_ticks = self.metrics.counter(
            "xar_router_track_ticks_total",
            "Tracking ticks by outcome: applied (>= 1 shard swept), "
            "coalesced (not later than the committed watermark), dropped "
            "(every shard shed; the watermark did NOT advance, so a retry "
            "at the same timestamp will sweep)",
            labels=("outcome",),
        )
        self._h_fanout = self.metrics.histogram(
            "xar_router_fanout_width",
            "Shards consulted per fan-out search",
            buckets=FANOUT_BUCKETS,
        )
        # Pre-create every child so the exposition always carries the full
        # router series set, zeros included (scrape-friendly and lets CI
        # assert on names without first forcing traffic through each path).
        for family in (self._c_partial, self._c_search_failures,
                       self._c_shed_searches, self._h_fanout):
            family.labels()
        for outcome in ("applied", "coalesced", "dropped"):
            self._c_ticks.labels(outcome=outcome)
        self._last_track_s: Optional[float] = None
        self._track_lock = threading.Lock()

        #: Failover bookkeeping: one lock serialises all recoveries AND all
        #: reshard actions (re-entrant: a split may heal a crashed shard
        #: first), and the config + digest let a dead shard's stack be
        #: rebuilt from its WAL.
        self.durability = durability
        self._queue_depth = queue_depth
        self._resilient = resilient
        self._optimize_insertion = optimize_insertion
        self._use_flat_index = use_flat_index
        self._engine_factory = engine_factory
        self._digest = region_digest(region) if durability is not None else ""
        self._failover_lock = threading.RLock()
        self.last_recoveries: Dict[int, RecoveryResult] = {}
        self._c_failovers = self.metrics.counter(
            "xar_failovers_total",
            "Shard worker crashes recovered by the failover supervisor",
            labels=("shard",),
        )
        if durability is not None:
            for shard_id in range(self.n_shards):
                self._c_failovers.labels(shard=str(shard_id))

        # --- elastic resharding state -------------------------------------
        self._reshard = reshard
        self.reshard_config = reshard
        #: Merged-away slot -> its absorbing slot; chains are followed, so a
        #: slot id stays a valid routing handle forever.
        self._redirect: Dict[int, int] = {}
        #: Ride ids whose home moved off their lane's original slot (split
        #: migration); merges repoint entries at the absorbing slot.
        self._ride_homes: Dict[int, int] = {}
        manifest = None
        if durability is not None:
            # The config object may be shared across simulated restarts:
            # always rebuild the name table from the manifest (or defaults).
            durability.names.clear()
            manifest = read_topology(
                topology_path(durability.directory),
                expected_digest=self._digest,
            )
        if manifest is not None and reshard is None:
            raise ConfigurationError(
                "durability directory holds a reshard topology manifest; "
                "reopen the service with reshard=ReshardConfig(...) so the "
                "lane tables and per-slot file names can be restored"
            )
        if reshard is not None:
            if durability is None:
                raise ConfigurationError(
                    "elastic resharding requires durability: splits carve "
                    "the shard's checkpoint + WAL (pass "
                    "durability=DurabilityConfig(...))"
                )
            if engine_factory is not None:
                raise ConfigurationError(
                    "reshard mode owns ride-id lane assignment and is "
                    "incompatible with a custom engine_factory"
                )
            if reshard.max_shards < self.n_shards:
                raise ConfigurationError(
                    f"ReshardConfig.max_shards={reshard.max_shards} is below "
                    f"the initial shard count {self.n_shards}"
                )
            self._lane_modulus: Optional[int] = reshard.max_shards
            self._c_reshard = self.metrics.counter(
                "xar_reshard_total",
                "Elastic reshard actions executed",
                labels=("action",),
            )
            self._h_reshard_s = self.metrics.histogram(
                "xar_reshard_duration_seconds",
                "Wall-clock of one reshard action, drain through swap",
                labels=("action",),
                buckets=DEFAULT_LATENCY_BUCKETS_S,
            )
            for action in ("split", "merge"):
                self._c_reshard.labels(action=action)
                self._h_reshard_s.labels(action=action)
            self._c_migrated = self.metrics.counter(
                "xar_reshard_migrated_rides_total",
                "Rides whose home slot changed in a reshard action",
            )
            self._c_migrated.labels()
            self._g_epoch = self.metrics.gauge(
                "xar_routing_epoch",
                "Routing-table epoch (bumped by every reshard swap)",
            )
        else:
            self._lane_modulus = None

        self.shards: List[_Shard] = []
        if manifest is not None:
            self._install_manifest(manifest)
        else:
            self._slot_lane: List[int] = list(range(self.n_shards))
            if reshard is not None:
                # Lanes >= n_shards are unissued: no ride id can live there
                # yet, so their owner entry is a don't-care placeholder.
                self._lane_owner: List[int] = [
                    lane if lane < self.n_shards else 0
                    for lane in range(self._lane_modulus)
                ]
            else:
                self._lane_owner = []
            self._next_lane = self.n_shards
            for shard_id in range(self.n_shards):
                engine = self._recover_or_make_engine(shard_id)
                adapter, worker = self._wrap_stack(shard_id, engine)
                self.shards.append(_Shard(shard_id, engine, adapter, worker))
        self.n_shards = len(self.shards)
        self.name = f"Sharded(XAR x{len(self._active_shards())})"
        if reshard is not None:
            self._g_epoch.set(self.shard_map.epoch)

    def _install_manifest(self, manifest: Dict[str, Any]) -> None:
        """Restart from a committed topology: rebuild exactly the slots the
        manifest names, from exactly the files it names."""
        config = self.durability
        if manifest["lane_modulus"] != self._lane_modulus:
            raise ConfigurationError(
                f"topology manifest was committed with lane modulus "
                f"{manifest['lane_modulus']}; this service was configured "
                f"with ReshardConfig.max_shards={self._lane_modulus}"
            )
        entries = sorted(manifest["slots"], key=lambda entry: entry["slot"])
        for index, entry in enumerate(entries):
            if entry["slot"] != index:
                raise ConfigurationError(
                    f"topology manifest slot table has a gap at slot {index}"
                )
        self._slot_lane = [int(entry.get("lane", 0)) for entry in entries]
        self._lane_owner = [int(slot) for slot in manifest["lane_owner"]]
        self._redirect = {
            int(src): int(dst)
            for src, dst in manifest.get("redirect", {}).items()
        }
        self._ride_homes = {
            int(ride_id): int(slot)
            for ride_id, slot in manifest.get("ride_homes", {}).items()
        }
        self._next_lane = int(manifest["next_lane"])
        config.names.clear()
        for entry in entries:
            if entry.get("active") and "wal" in entry:
                config.names[entry["slot"]] = (entry["wal"], entry["ckpt"])
        self.shard_map.restore(
            [int(slot) for slot in manifest["assignment"]],
            len(entries),
            int(manifest["epoch"]),
        )
        for entry in entries:
            slot = entry["slot"]
            if entry.get("active"):
                engine = self._recover_or_make_engine(slot)
                adapter, worker = self._wrap_stack(slot, engine)
                self.shards.append(_Shard(slot, engine, adapter, worker))
                self._c_failovers.labels(shard=str(slot))
            else:
                self.shards.append(_Shard(slot, None, None, None, active=False))

    # ------------------------------------------------------------------
    # Shard stack construction (initial build + failover rebuild)
    # ------------------------------------------------------------------
    def _lane_params(self, shard_id: int) -> Tuple[int, int]:
        """A slot's ride-id allocator lane: ``(ride_id_start, ride_id_step)``.

        Static services use the classic ``(shard_id + 1, n_shards)``
        arithmetic; reshard mode fixes the step at the lane modulus
        (``max_shards``) up front so a child slot created years into the
        service's life still allocates from a lane disjoint with every
        other slot's, past and future.
        """
        if self._reshard is None:
            return shard_id + 1, self.n_shards
        return self._slot_lane[shard_id] + 1, self._lane_modulus

    def _recover_or_make_engine(self, shard_id: int) -> XAREngine:
        """Fresh engine, or — when the shard's WAL already exists — the
        engine recovered from checkpoint + WAL replay (service restart)."""
        if self.durability is not None and os.path.exists(
            self.durability.wal_path(shard_id)
        ):
            result = recover_engine(
                self.region,
                self.durability.wal_path(shard_id),
                self.durability.checkpoint_path(shard_id),
                engine_factory=lambda: self._make_engine(shard_id),
                metrics=self.metrics,
            )
            self.last_recoveries[shard_id] = result
            return result.engine
        return self._make_engine(shard_id)

    def _make_engine(self, shard_id: int) -> XAREngine:
        if self._engine_factory is not None:
            return self._engine_factory(shard_id, self.n_shards)
        ride_id_start, ride_id_step = self._lane_params(shard_id)
        return XAREngine(
            self.region,
            optimize_insertion=self._optimize_insertion,
            use_flat_index=self._use_flat_index,
            ride_id_start=ride_id_start,
            ride_id_step=ride_id_step,
            metrics=self.metrics,
            metrics_labels={"shard": str(shard_id)},
        )

    def _wrap_stack(self, shard_id: int, engine: XAREngine):
        """Adapter stack + worker around an engine: XARAdapter, then the
        WAL decorator (innermost, so resilient retries are logged too),
        then the resilient runtime, then the worker thread."""
        adapter: Any = XARAdapter(engine)
        if self.durability is not None:
            config = self.durability
            ride_id_start, ride_id_step = self._lane_params(shard_id)
            wal = WriteAheadLog.open(
                config.wal_path(shard_id),
                shard_id=shard_id,
                ride_id_start=ride_id_start,
                ride_id_step=ride_id_step,
                region_digest=self._digest,
                fsync_every=config.fsync_every,
                metrics=self.metrics,
                metrics_labels={"shard": str(shard_id)},
            )
            adapter = DurableAdapter(
                adapter,
                wal,
                checkpoint_path=config.checkpoint_path(shard_id),
                checkpoint_every=config.checkpoint_every,
                shard_id=shard_id,
                digest=self._digest,
                metrics=self.metrics,
            )
        if self._resilient:
            adapter = ResilientEngine(
                adapter,
                ResilienceConfig(seed=derive_seed(self.seed, shard_id)),
                metrics=self.metrics,
                metrics_labels={"shard": str(shard_id)},
            )
        worker = ShardWorker(
            shard_id,
            adapter,
            queue_depth=self._queue_depth,
            seed=derive_seed(self.seed, shard_id),
            metrics=self.metrics,
        )
        return adapter, worker

    # ------------------------------------------------------------------
    # Legacy counter surface (now registry-backed, hence race-free)
    # ------------------------------------------------------------------
    @property
    def partial_searches(self) -> int:
        """Fan-out searches that lost at least one shard to shedding but
        were still served from the rest (degraded recall, not failure)."""
        return int(self._c_partial.value)

    @property
    def search_failures(self) -> int:
        """Per-shard search calls that raised an XARError and contributed
        an empty batch instead of failing the whole fan-out."""
        return int(self._c_search_failures.value)

    @property
    def dropped_ticks(self) -> int:
        """Tracking ticks every shard shed (watermark rolled back)."""
        return int(self._c_ticks.labels(outcome="dropped").value)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _active_shards(self) -> List[_Shard]:
        return [shard for shard in self.shards if shard.active]

    def active_slot_ids(self) -> List[int]:
        return [shard.shard_id for shard in self.shards if shard.active]

    def _resolve_slot(self, slot: int) -> int:
        """Follow merge redirects to the slot that serves this id today."""
        while slot in self._redirect:
            slot = self._redirect[slot]
        return slot

    def shard_of_ride(self, ride_id: int) -> int:
        """Home shard encoded in the ride id's arithmetic lane.

        Reshard mode resolves in three steps: the migration table (rides a
        split moved off their lane's slot), then the lane-owner table
        (``lane = (ride_id - 1) % max_shards``), then merge redirects.
        """
        if self._reshard is None:
            return (ride_id - 1) % self.n_shards
        home = self._ride_homes.get(ride_id)
        if home is None:
            home = self._lane_owner[(ride_id - 1) % self._lane_modulus]
        return self._resolve_slot(home)

    def shards_for_request(self, request: RideRequest) -> List[int]:
        if self.fanout == "all":
            return self.active_slot_ids()
        raw = self.shard_map.shards_for_request(request, self.fanout_radius_m)
        # The map's hash fallback (uncovered points) can name a merged-away
        # slot; follow redirects and dedupe, preserving ascending order.
        resolved: List[int] = []
        seen = set()
        for slot in raw:
            slot = self._resolve_slot(slot)
            if slot not in seen and self.shards[slot].active:
                seen.add(slot)
                resolved.append(slot)
        return resolved

    # ------------------------------------------------------------------
    # Failover supervision
    # ------------------------------------------------------------------
    def _ensure_live(self, shard: _Shard) -> None:
        if shard.worker.crashed:
            self._failover(shard)

    def _with_failover(self, shard: _Shard, attempt: Callable[[], Any]) -> Any:
        """Run ``attempt`` on a live shard, recovering it first if needed.

        ``attempt`` must late-bind through the ``shard`` object
        (``shard.worker`` / ``shard.adapter``), because failover swaps the
        stack in place.  A crash *detected at submission* (``mid_op=False``:
        the op never started) is retried once on the recovered shard; a
        crash *mid-operation* re-raises after failover — the op may already
        be in the WAL, and recovery has replayed it, so a blind retry would
        double-apply.
        """
        self._ensure_live(shard)
        try:
            return attempt()
        except WorkerCrashError as exc:
            self._failover(shard)
            if exc.mid_op:
                raise
            return attempt()

    def _routed_call(
        self,
        operation: str,
        resolve: Callable[[], int],
        apply: Callable[[Any], Any],
    ) -> Any:
        """Run one single-shard mutation wherever routing points *now*.

        The epoch-race loop: capture the slot, submit, and have the job
        itself re-resolve on the worker thread — if a reshard swapped the
        routing table while the job was queued, the job returns the
        ``_REROUTED`` sentinel without touching the (wrong) engine and the
        loop resubmits under the new table.  Static services resolve to a
        constant slot, so the loop collapses to the classic
        submit-with-failover path.
        """
        reshard_mode = self._reshard is not None
        while True:
            slot = resolve()
            shard = self.shards[slot]
            self._ensure_live(shard)

            def attempt(slot=slot, shard=shard):
                if reshard_mode and resolve() != slot:
                    return _REROUTED
                return apply(shard.adapter)

            try:
                result = shard.worker.call(operation, attempt)
            except WorkerCrashError as exc:
                self._failover(shard)
                if exc.mid_op:
                    raise
                continue
            if result is _REROUTED:
                continue
            return result

    def _drop_job(self, slot: int, job: Any) -> None:
        """Shed a drained job the successor queue cannot hold."""
        self.metrics.counter(
            "xar_shard_ops_total",
            labels=("shard", "op", "outcome"),
        ).labels(
            shard=str(slot), op=job.operation, outcome="dropped"
        ).inc()
        job.future.set_exception(ShardOverloadError(slot, job.operation))

    def _failover(self, shard: _Shard) -> None:
        """Recover a crashed shard in place: drain its queue, replay its
        WAL (checkpoint + suffix), swap in a fresh stack, requeue the
        drained jobs (original futures intact).  Jobs the rebuilt queue
        cannot hold are shed with ``outcome="dropped"``."""
        with self._failover_lock:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            if self.shards[shard.shard_id] is not shard or not shard.active:
                # The slot was resharded while we waited on the lock: the
                # "crash" we saw was its worker being retired.  Nothing to
                # recover — the caller re-resolves routing.
                return
            if not shard.worker.crashed:
                return  # another caller already recovered it
            if self.durability is None:
                raise RecoveryError(
                    f"shard {shard.shard_id} crashed but the service has no "
                    "durability configured: its state is unrecoverable"
                )
            old_worker = shard.worker
            pending = old_worker.drain_pending()
            old_worker.join(timeout_s=5.0)
            # Disarm any one-shot crash hook and release the dead stack's
            # WAL handle so the rebuilt stack can reopen the file.
            shard.engine.fault_hook = None
            durable = _durable_of(shard.adapter)
            if durable is not None and not durable.wal.closed:
                durable.abandon()
            result = recover_engine(
                self.region,
                self.durability.wal_path(shard.shard_id),
                self.durability.checkpoint_path(shard.shard_id),
                engine_factory=lambda: self._make_engine(shard.shard_id),
                metrics=self.metrics,
            )
            self.last_recoveries[shard.shard_id] = result
            engine = result.engine
            adapter, worker = self._wrap_stack(shard.shard_id, engine)
            # Publish engine + adapter first (requeued jobs late-bind
            # ``shard.adapter`` and may start executing immediately), but
            # hold back ``shard.worker`` until every drained job is
            # requeued: submitters route through the worker, so while it is
            # unpublished none of them can race the survivors for queue
            # slots — the drained jobs keep their FIFO positions ahead of
            # all post-failover traffic.
            shard.engine, shard.adapter = engine, adapter
            for job in pending:
                if not worker.resubmit(job):
                    self._drop_job(shard.shard_id, job)
            shard.worker = worker
            self._c_failovers.labels(shard=str(shard.shard_id)).inc()

    def supervise(self) -> int:
        """Sweep every shard and recover any whose worker died; returns the
        number of failovers performed."""
        recovered = 0
        for shard in self._active_shards():
            if shard.worker.crashed:
                self._failover(shard)
                recovered += 1
        return recovered

    def crash_shard(self, shard_id: int, *, mid_book: bool = False,
                    kill: bool = False) -> None:
        """Chaos hook: kill one shard's worker as a process death would.

        Plain crashes enqueue a job that dies on the worker thread;
        ``mid_book=True`` instead arms a one-shot engine hook that kills
        the *next booking* between its transactional snapshot and the route
        splice — the op is in the WAL but never applied, the exact window
        recovery must close.  ``kill`` is accepted for signature parity with
        the process-mode supervisor (where it means SIGKILL); a thread
        worker's death is always the in-process flavour.
        """
        del kill  # thread mode has no process to signal
        if self.durability is None:
            raise ConfigurationError(
                "crash injection requires a durable service "
                "(pass durability=DurabilityConfig(...))"
            )
        shard = self.shards[self._resolve_slot(shard_id)]
        if mid_book:
            engine = shard.engine

            def hook(point: str) -> None:
                if point == "book:post-snapshot":
                    engine.fault_hook = None
                    raise WorkerCrashError(
                        f"injected crash in shard {shard.shard_id} at {point}"
                    )

            engine.fault_hook = hook
            return

        def die() -> None:
            raise WorkerCrashError(f"injected crash in shard {shard.shard_id}")

        try:
            future = shard.worker.submit("crash", die)
        except (WorkerCrashError, ShardOverloadError, ServiceClosedError):
            return  # already dead, saturated, or shutting down: nothing to kill
        try:
            future.result(timeout=5.0)
        except WorkerCrashError:
            pass

    # ------------------------------------------------------------------
    # EngineAdapter protocol
    # ------------------------------------------------------------------
    def create(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
        shift_end_s: Optional[float] = None,
    ) -> Any:
        return self._routed_call(
            "create",
            lambda: self._resolve_slot(self.shard_map.shard_of_point(source)),
            lambda adapter: adapter.create(
                source, destination, depart_s,
                seats=seats, detour_limit_m=detour_limit_m,
                shift_end_s=shift_end_s,
            ),
        )

    def search(self, request: RideRequest, k: Optional[int] = None) -> List[MatchOption]:
        """Fan out to the request's shards and k-way-merge their answers.

        Searches take each shard's inline read path — the engine's own lock
        provides the synchronisation, so a fan-out of three shards costs
        three small searches, not six thread hand-offs.  A shard that sheds
        (concurrency budget exhausted) degrades the search to partial
        results; only when *every* consulted shard refuses is the search
        itself shed.  A shard retired out from under the fan-out by a
        concurrent reshard counts as shed too: its rides are served from
        the successor slots on the next search.
        """
        shed = 0
        batches: List[List[MatchOption]] = []
        errors: List[XARError] = []
        shard_ids = self.shards_for_request(request)
        self._h_fanout.observe(len(shard_ids))
        for shard_id in shard_ids:
            shard = self.shards[shard_id]
            try:
                batches.append(
                    self._with_failover(
                        shard,
                        lambda shard=shard: shard.worker.execute_inline(
                            "search",
                            lambda: shard.adapter.search(request, k),
                        ),
                    )
                )
            except (ShardOverloadError, WorkerCrashError):
                shed += 1
            except XARError as exc:
                self._c_search_failures.inc()
                errors.append(exc)
        if shed and (batches or errors):
            self._c_partial.inc()
        if not batches:
            if shed or not errors:
                # Every consulted shard refused: the search itself is shed.
                self._c_shed_searches.inc()
                raise ShardOverloadError(-1, "search")
            raise errors[0]
        return merge_matches(batches, k)

    def book(self, request: RideRequest, match: MatchOption) -> BookingRecord:
        return self._routed_call(
            "book",
            lambda: self.shard_of_ride(match.ride_id),
            lambda adapter: adapter.book(request, match),
        )

    def track_all(self, now_s: float) -> int:
        """Broadcast a tracking tick; each shard sweeps only its rides.

        Ticks are batched: a tick at a simulated time no later than the last
        one already *accepted somewhere* is skipped entirely (the
        obsolescence sweep is monotone in time), so redundant ticks from
        concurrent drivers cost nothing.  A shard whose queue is full drops
        its tick — tracking is best-effort per shard.

        The watermark commits **only after at least one shard accepts the
        tick**.  Committing it up front (the old behaviour) permanently lost
        any tick every shard shed: a retry at the same simulated time
        compared equal to the watermark and was coalesced away, so the sweep
        never ran even once the queues drained.  Outcomes are counted in
        ``xar_router_track_ticks_total{outcome=applied|coalesced|dropped}``.
        """
        futures = []
        with self._track_lock:
            if self._last_track_s is not None and now_s <= self._last_track_s:
                self._c_ticks.labels(outcome="coalesced").inc()
                return 0
            for shard in self._active_shards():
                try:
                    self._ensure_live(shard)
                    futures.append(
                        (
                            shard,
                            shard.worker.submit(
                                "track",
                                # Late-bound through the shard object: a job
                                # requeued after failover must sweep the
                                # *recovered* engine, not the dead one.
                                lambda shard=shard: shard.adapter.track_all(
                                    now_s
                                ),
                            ),
                        )
                    )
                except (ShardOverloadError, WorkerCrashError):
                    continue
            if futures:
                # >= 1 shard holds the tick: the sweep up to now_s will
                # happen, so the watermark may advance.
                self._last_track_s = now_s
                self._c_ticks.labels(outcome="applied").inc()
            else:
                # Every shard shed.  Leave the watermark where it was so a
                # retry at the same timestamp is NOT coalesced away.
                self._c_ticks.labels(outcome="dropped").inc()
                return 0
        total = 0
        for shard, future in futures:
            try:
                total += future.result()
            except WorkerCrashError:
                # The tick crashed this shard mid-sweep.  Its WAL holds the
                # track record, so recovery replays the sweep; the tick is
                # not lost, just accounted to the recovered engine.
                self._failover(shard)
        return total

    def cancel(self, ride: Any) -> None:
        self._routed_call(
            "cancel",
            lambda: self.shard_of_ride(ride.ride_id),
            lambda adapter: adapter.cancel(ride),
        )

    def cancel_booking(self, request_id: int, ride_id: int) -> Any:
        """Cancel one passenger's booking on the ride's home shard."""
        return self._routed_call(
            "cancel_booking",
            lambda: self.shard_of_ride(ride_id),
            lambda adapter: adapter.cancel_booking(request_id, ride_id),
        )

    def active_rides(self) -> List[Any]:
        rides: List[Any] = []
        for shard in self._active_shards():
            rides.extend(
                self._with_failover(
                    shard,
                    lambda shard=shard: shard.worker.call(
                        "admin", lambda: shard.adapter.active_rides()
                    ),
                )
            )
        return rides

    # ------------------------------------------------------------------
    # Adapter parity (protocol introspection surface)
    # ------------------------------------------------------------------
    def rollback_count(self) -> int:
        return sum(
            len(shard.engine.rollbacks) for shard in self._active_shards()
        )

    def index_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for shard in self._active_shards():
            stats = self._with_failover(
                shard,
                lambda shard=shard: shard.worker.call(
                    "admin", lambda: shard.engine.index_stats()
                ),
            )
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    # Service introspection
    # ------------------------------------------------------------------
    def bookings(self) -> List[BookingRecord]:
        """All shards' booking ledgers, concatenated shard-by-shard."""
        records: List[BookingRecord] = []
        for shard in self._active_shards():
            records.extend(
                self._with_failover(
                    shard,
                    lambda shard=shard: shard.worker.call(
                        "admin", lambda: list(shard.engine.bookings)
                    ),
                )
            )
        return records

    def find_ride(self, ride_id: int) -> Any:
        """Resolve a ride (live or completed) on its home shard.

        The lookup takes the engine's lock: without it a concurrent cancel
        or completion sweep on the shard's worker thread could be observed
        mid-removal (popped from ``rides`` but not yet in
        ``completed_rides``), spuriously raising ``UnknownRideError`` for a
        ride that exists.  In reshard mode the home is re-resolved under
        the lock — a swap between resolve and read sends the lookup to the
        ride's new slot instead of reporting a false miss.
        """
        while True:
            slot = self.shard_of_ride(ride_id)
            shard = self.shards[slot]
            self._ensure_live(shard)
            engine = shard.engine
            with engine.lock:
                moved = self.shard_of_ride(ride_id) != slot
                ride = (
                    None
                    if moved
                    else (
                        engine.rides.get(ride_id)
                        or engine.completed_rides.get(ride_id)
                    )
                )
            if moved:
                continue
            if ride is None:
                raise UnknownRideError(ride_id)
            return ride

    def audit(self, heal: bool = False) -> Dict[str, Any]:
        """Run the invariant auditor on every shard, inside its worker.

        Returns total violations plus the per-shard breakdown; with
        ``heal=True`` index damage is repaired and a second sweep verifies.
        """
        per_shard: Dict[int, int] = {}
        healed = 0
        for shard in self._active_shards():
            def sweep(shard=shard):
                # Late-bound: after a failover this must audit the shard's
                # *recovered* engine, not the stack that died.
                auditor = InvariantAuditor(shard.engine)
                report = auditor.audit()
                actions = 0
                if heal and not report.ok:
                    actions = auditor.heal(report)
                    report = auditor.audit()
                return len(report.violations), actions

            violations, actions = self._with_failover(
                shard,
                lambda shard=shard, sweep=sweep: shard.worker.call(
                    "audit", sweep
                ),
            )
            per_shard[shard.shard_id] = violations
            healed += actions
        return {
            "violations": sum(per_shard.values()),
            "per_shard": per_shard,
            "healed": healed,
        }

    def stats(self) -> Dict[str, Any]:
        """Service-level counters: queue/shed stats, rides, bookings.

        All reads are race-free: worker counters are copied under the
        worker's stats lock (``stats_snapshot``) and engine state is read
        under the engine's lock, so a concurrent booking can never be seen
        mid-increment.
        """
        shard_stats = []
        total_shed = 0
        for shard in self._active_shards():
            snapshot = shard.worker.stats_snapshot()
            total_shed += sum(snapshot["shed"].values())
            with shard.engine.lock:
                rides = shard.engine.n_active_rides
                bookings = shard.engine.n_bookings
            shard_stats.append(
                {
                    "shard_id": shard.shard_id,
                    "clusters": len(self.shard_map.clusters_of_shard(shard.shard_id)),
                    "rides": rides,
                    "bookings": bookings,
                    **snapshot,
                }
            )
        return {
            "name": self.name,
            "n_shards": len(shard_stats),
            "epoch": self.shard_map.epoch,
            "fanout": self.fanout,
            "fanout_radius_m": self.fanout_radius_m,
            "total_shed": total_shed,
            "partial_searches": self.partial_searches,
            "search_failures": self.search_failures,
            "dropped_ticks": self.dropped_ticks,
            "shards": shard_stats,
        }

    def shard_loads(self) -> Dict[int, Dict[str, float]]:
        """Per-active-slot load signals for the reshard controller.

        ``ops`` (lifetime completed jobs), ``queue`` (current depth),
        ``p95_s`` (worst per-op p95 service time from the worker's
        ``xar_shard_service_seconds`` series), ``rides`` (live rides) and
        ``clusters`` (owned cluster count — split eligibility).
        """
        p95: Dict[int, float] = {}
        family = self.metrics.get("xar_shard_service_seconds")
        if family is not None:
            for labels, child in family.collect():
                if child.count == 0:
                    continue
                try:
                    slot = int(labels.get("shard", "-1"))
                except ValueError:
                    continue
                quantile = child.quantile(0.95)
                if quantile == quantile:  # NaN-guard
                    p95[slot] = max(p95.get(slot, 0.0), quantile)
        loads: Dict[int, Dict[str, float]] = {}
        for shard in self._active_shards():
            snapshot = shard.worker.stats_snapshot()
            loads[shard.shard_id] = {
                "ops": float(sum(snapshot["completed"].values())),
                "queue": float(shard.worker.depth),
                "p95_s": p95.get(shard.shard_id, 0.0),
                "rides": float(shard.engine.n_active_rides),
                "clusters": float(
                    len(self.shard_map.clusters_of_shard(shard.shard_id))
                ),
            }
        return loads

    # ------------------------------------------------------------------
    # Elastic resharding
    # ------------------------------------------------------------------
    def _require_reshard_mode(self) -> None:
        if self._reshard is None:
            raise ReshardError(
                "service is not in reshard mode: construct the router with "
                "reshard=ReshardConfig(...) (and durability) to enable "
                "split/merge"
            )

    def _slot_names(self, slot: int) -> Tuple[str, str]:
        named = self.durability.names.get(slot)
        if named is not None:
            return named
        return f"shard{slot}.wal", f"shard{slot}.ckpt"

    def _slot_meta(self, shard: _Shard,
                   names: Optional[Tuple[str, str]]) -> Dict[str, Any]:
        meta: Dict[str, Any] = {
            "slot": shard.shard_id,
            "active": shard.active,
            "lane": self._slot_lane[shard.shard_id],
        }
        if shard.active and names is not None:
            meta["wal"], meta["ckpt"] = names
        return meta

    def _manifest_payload(
        self,
        *,
        epoch: int,
        assignment: List[int],
        slots: List[Dict[str, Any]],
        lane_owner: List[int],
        next_lane: int,
        redirect: Dict[int, int],
        ride_homes: Dict[int, int],
    ) -> Dict[str, Any]:
        return {
            "epoch": epoch,
            "lane_modulus": self._lane_modulus,
            "region_digest": self._digest,
            "slots": slots,
            "assignment": list(assignment),
            "lane_owner": list(lane_owner),
            "next_lane": next_lane,
            "redirect": {str(src): dst for src, dst in redirect.items()},
            "ride_homes": {
                str(ride_id): slot for ride_id, slot in ride_homes.items()
            },
        }

    def _restore_slot(self, shard: _Shard, pending: List[Any]) -> None:
        """Pre-commit unwind of a reshard: the old engine, adapter and WAL
        handle are untouched (carving only *read* state), so a fresh worker
        around the existing stack restores service — no replay needed."""
        shard.engine.fault_hook = None
        worker = ShardWorker(
            shard.shard_id,
            shard.adapter,
            queue_depth=self._queue_depth,
            seed=derive_seed(self.seed, shard.shard_id),
            metrics=self.metrics,
        )
        for job in pending:
            if not worker.resubmit(job):
                self._drop_job(shard.shard_id, job)
        shard.worker = worker

    def split_shard(self, shard_id: int, *,
                    fault_hook: Optional[Callable[[str], None]] = None) -> int:
        """Split one hot slot into two at a load-weighted cluster boundary.

        Phases (``fault_hook``, when given, is invoked with each phase name
        after it completes — the crash-differential fuzzer raises from it to
        prove every window recovers cleanly):

        1. **drained** — the slot's worker is retired (no new job can ever
           reach its queue; pending jobs are held for requeue) and joined;
        2. **synced** — the slot's WAL is fsynced, so the serialized engine
           snapshot about to be carved is covered by durable log;
        3. **carved** — the cluster range is cut at the boundary that best
           balances live-ride weight, the engine snapshot is partitioned by
           ride source ownership, and both children's checkpoints + WAL
           headers are written under new generation-suffixed names;
        4. **committed** — ``topology.json`` is atomically replaced: THE
           commit point.  Before it, a crash recovers the old topology from
           the old files; after it, the new topology from the new files;
        5. **swapped** — the in-process routing table swap (epoch bump),
           stack rebuild and pending-job requeue are done.

        A failure before the commit point unwinds to the old topology in
        process (the old stack was never touched); a failure after it rolls
        *forward* — the manifest is already the new truth, and re-installing
        the old topology in memory would append new ops to a superseded WAL
        that a restart ignores.

        Returns the new slot id.
        """
        self._require_reshard_mode()
        started = time.perf_counter()
        with self._failover_lock:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            slot = self._resolve_slot(shard_id)
            shard = self.shards[slot]
            if not shard.active:
                raise ReshardError(f"slot {slot} is not active")
            if self._next_lane >= self._lane_modulus:
                raise ReshardError(
                    f"ride-id lane budget exhausted: all {self._lane_modulus} "
                    "lanes (= ReshardConfig.max_shards) have been issued; "
                    "further splits need a fresh directory with a larger "
                    "max_shards"
                )
            if shard.worker.crashed:
                self._failover(shard)
            new_slot = len(self.shards)
            right_lane = self._next_lane
            generation = self.shard_map.epoch + 1
            config = self.durability

            def fire(phase: str) -> None:
                if fault_hook is not None:
                    fault_hook(phase)

            committed = False
            pending: List[Any] = []
            try:
                pending = shard.worker.retire()
                shard.worker.join(timeout_s=5.0)
                shard.engine.fault_hook = None
                fire("drained")
                durable = _durable_of(shard.adapter)
                durable.wal.sync()
                fire("synced")
                # Load-weighted cut: weight = live rides homed per cluster.
                weights: Dict[int, float] = {}
                with shard.engine.lock:
                    ride_sources = [
                        ride.source_point
                        for ride in shard.engine.rides.values()
                    ]
                for source in ride_sources:
                    cluster_id = self.region.cluster_of_point(source)
                    if cluster_id is not None:
                        weights[cluster_id] = weights.get(cluster_id, 0.0) + 1.0
                new_assignment, moved_clusters = self.shard_map.split_assignment(
                    slot, new_slot, weights=weights
                )
                moved_set = set(moved_clusters)
                with shard.engine.lock:
                    state = engine_state(shard.engine)

                def goes_right(ride_state: Dict[str, Any]) -> bool:
                    lat, lon = ride_state["source"]
                    cluster_id = self.region.cluster_of_point(
                        GeoPoint(lat, lon)
                    )
                    return cluster_id in moved_set

                parent_counters = state["counters"]
                carved = split_engine_state(
                    state,
                    goes_right,
                    left_counters=dict(parent_counters),
                    right_counters={
                        "ride_next": right_lane + 1,
                        "ride_step": self._lane_modulus,
                        "request_next": parent_counters["request_next"],
                    },
                )
                left_names = (
                    f"shard{slot}.g{generation}.wal",
                    f"shard{slot}.g{generation}.ckpt",
                )
                right_names = (
                    f"shard{new_slot}.g{generation}.wal",
                    f"shard{new_slot}.g{generation}.ckpt",
                )
                for child_slot, names, child_state, lane in (
                    (slot, left_names, carved["left"], self._slot_lane[slot]),
                    (new_slot, right_names, carved["right"], right_lane),
                ):
                    write_checkpoint_state(
                        os.path.join(config.directory, names[1]),
                        child_state,
                        region_digest=self._digest,
                        shard_id=child_slot,
                        wal_seq=-1,
                    )
                    WriteAheadLog.open(
                        os.path.join(config.directory, names[0]),
                        shard_id=child_slot,
                        ride_id_start=lane + 1,
                        ride_id_step=self._lane_modulus,
                        region_digest=self._digest,
                        fsync_every=config.fsync_every,
                    ).close()
                fire("carved")
                slots_meta = [
                    self._slot_meta(
                        entry,
                        left_names if entry.shard_id == slot
                        else self._slot_names(entry.shard_id),
                    )
                    for entry in self.shards
                ]
                slots_meta.append({
                    "slot": new_slot,
                    "active": True,
                    "lane": right_lane,
                    "wal": right_names[0],
                    "ckpt": right_names[1],
                })
                lane_owner = list(self._lane_owner)
                lane_owner[right_lane] = new_slot
                ride_homes = dict(self._ride_homes)
                for ride_id in carved["moved_rides"]:
                    ride_homes[ride_id] = new_slot
                write_topology(
                    topology_path(config.directory),
                    self._manifest_payload(
                        epoch=generation,
                        assignment=new_assignment,
                        slots=slots_meta,
                        lane_owner=lane_owner,
                        next_lane=right_lane + 1,
                        redirect=self._redirect,
                        ride_homes=ride_homes,
                    ),
                )
                committed = True
            except BaseException:
                self._restore_slot(shard, pending)
                raise
            # --- committed: the manifest IS the new truth; roll forward ---
            hook_error: Optional[BaseException] = None
            try:
                fire("committed")
            except BaseException as exc:  # noqa: BLE001 - crash injection
                hook_error = exc
            self._install_split(
                shard, new_slot, right_lane, left_names, right_names,
                new_assignment, carved, pending,
            )
            try:
                fire("swapped")
            except BaseException as exc:  # noqa: BLE001 - crash injection
                if hook_error is None:
                    hook_error = exc
            self._c_reshard.labels(action="split").inc()
            self._h_reshard_s.labels(action="split").observe(
                time.perf_counter() - started
            )
            if hook_error is not None:
                raise hook_error
            return new_slot

    def _install_split(
        self,
        shard: _Shard,
        new_slot: int,
        right_lane: int,
        left_names: Tuple[str, str],
        right_names: Tuple[str, str],
        new_assignment: List[int],
        carved: Dict[str, Any],
        pending: List[Any],
    ) -> None:
        """In-process half of a committed split: swap the routing tables,
        rebuild both child stacks from the carved files, requeue survivors."""
        config = self.durability
        slot = shard.shard_id
        config.names[slot] = left_names
        config.names[new_slot] = right_names
        self._lane_owner[right_lane] = new_slot
        self._next_lane = right_lane + 1
        for ride_id in carved["moved_rides"]:
            self._ride_homes[ride_id] = new_slot
        # Release the superseded WAL handle before children reopen files.
        durable = _durable_of(shard.adapter)
        if durable is not None and not durable.wal.closed:
            durable.wal.close()
        epoch = self.shard_map.swap(new_assignment, len(self.shards) + 1)
        self._g_epoch.set(epoch)
        # Right child first: a requeued job that bounces off the left child
        # re-resolves immediately, so its target slot must already exist.
        self._slot_lane.append(right_lane)
        right_engine = self._recover_or_make_engine(new_slot)
        right_adapter, right_worker = self._wrap_stack(new_slot, right_engine)
        self.shards.append(
            _Shard(new_slot, right_engine, right_adapter, right_worker)
        )
        self.n_shards = len(self.shards)
        self._c_failovers.labels(shard=str(new_slot))
        # Left child: same slot, new generation (recovery round-trips the
        # carved checkpoint + empty WAL — the same replay path a restart
        # takes, so the swap validates what a crash would depend on).
        engine = self._recover_or_make_engine(slot)
        adapter, worker = self._wrap_stack(slot, engine)
        shard.engine, shard.adapter = engine, adapter
        for job in pending:
            if not worker.resubmit(job):
                self._drop_job(slot, job)
        shard.worker = worker
        self._c_migrated.inc(len(carved["moved_rides"]))
        self.name = f"Sharded(XAR x{len(self._active_shards())})"

    def merge_shards(self, dst_id: int, src_id: int, *,
                     fault_hook: Optional[Callable[[str], None]] = None) -> int:
        """Fold one cold slot into another (strip-adjacent preferred).

        Same phase structure and commit discipline as :meth:`split_shard`:
        both slots drain, both WALs sync, the union state is checkpointed
        under the destination's next generation, and the manifest commit
        atomically retires the source slot (``active=False`` + a redirect
        entry).  The source's ride-id lane is parked on the destination via
        the lane-owner table — lanes are never recycled, so its rides keep
        resolving correctly forever.

        Returns the destination slot id.
        """
        self._require_reshard_mode()
        started = time.perf_counter()
        with self._failover_lock:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            dst_slot = self._resolve_slot(dst_id)
            src_slot = self._resolve_slot(src_id)
            if dst_slot == src_slot:
                raise ReshardError(
                    f"merge of slot {src_id} into {dst_id} resolves to the "
                    f"same live slot {dst_slot}"
                )
            dst = self.shards[dst_slot]
            src = self.shards[src_slot]
            if not (dst.active and src.active):
                raise ReshardError("both merge operands must be active slots")
            for operand in (dst, src):
                if operand.worker.crashed:
                    self._failover(operand)
            generation = self.shard_map.epoch + 1
            config = self.durability

            def fire(phase: str) -> None:
                if fault_hook is not None:
                    fault_hook(phase)

            committed = False
            dst_pending: List[Any] = []
            src_pending: List[Any] = []
            try:
                dst_pending = dst.worker.retire()
                dst.worker.join(timeout_s=5.0)
                dst.engine.fault_hook = None
                src_pending = src.worker.retire()
                src.worker.join(timeout_s=5.0)
                src.engine.fault_hook = None
                fire("drained")
                for operand in (dst, src):
                    _durable_of(operand.adapter).wal.sync()
                fire("synced")
                new_assignment = self.shard_map.merge_assignment(
                    dst_slot, src_slot
                )
                with dst.engine.lock:
                    dst_state = engine_state(dst.engine)
                with src.engine.lock:
                    src_state = engine_state(src.engine)
                absorbed = state_ride_ids(src_state)
                merged = merge_engine_states(
                    [dst_state, src_state], dst_state["counters"]
                )
                dst_names = (
                    f"shard{dst_slot}.g{generation}.wal",
                    f"shard{dst_slot}.g{generation}.ckpt",
                )
                write_checkpoint_state(
                    os.path.join(config.directory, dst_names[1]),
                    merged,
                    region_digest=self._digest,
                    shard_id=dst_slot,
                    wal_seq=-1,
                )
                WriteAheadLog.open(
                    os.path.join(config.directory, dst_names[0]),
                    shard_id=dst_slot,
                    ride_id_start=self._slot_lane[dst_slot] + 1,
                    ride_id_step=self._lane_modulus,
                    region_digest=self._digest,
                    fsync_every=config.fsync_every,
                ).close()
                fire("carved")
                slots_meta = []
                for entry in self.shards:
                    if entry.shard_id == src_slot:
                        meta = self._slot_meta(entry, None)
                        meta["active"] = False
                        slots_meta.append(meta)
                    else:
                        slots_meta.append(
                            self._slot_meta(
                                entry,
                                dst_names if entry.shard_id == dst_slot
                                else self._slot_names(entry.shard_id),
                            )
                        )
                lane_owner = list(self._lane_owner)
                lane_owner[self._slot_lane[src_slot]] = dst_slot
                redirect = dict(self._redirect)
                redirect[src_slot] = dst_slot
                ride_homes = {
                    ride_id: (dst_slot if home == src_slot else home)
                    for ride_id, home in self._ride_homes.items()
                }
                write_topology(
                    topology_path(config.directory),
                    self._manifest_payload(
                        epoch=generation,
                        assignment=new_assignment,
                        slots=slots_meta,
                        lane_owner=lane_owner,
                        next_lane=self._next_lane,
                        redirect=redirect,
                        ride_homes=ride_homes,
                    ),
                )
                committed = True
            except BaseException:
                self._restore_slot(dst, dst_pending)
                self._restore_slot(src, src_pending)
                raise
            hook_error: Optional[BaseException] = None
            try:
                fire("committed")
            except BaseException as exc:  # noqa: BLE001 - crash injection
                hook_error = exc
            self._install_merge(
                dst, src, dst_names, new_assignment, len(absorbed),
                dst_pending, src_pending,
            )
            try:
                fire("swapped")
            except BaseException as exc:  # noqa: BLE001 - crash injection
                if hook_error is None:
                    hook_error = exc
            self._c_reshard.labels(action="merge").inc()
            self._h_reshard_s.labels(action="merge").observe(
                time.perf_counter() - started
            )
            if hook_error is not None:
                raise hook_error
            return dst_slot

    def _install_merge(
        self,
        dst: _Shard,
        src: _Shard,
        dst_names: Tuple[str, str],
        new_assignment: List[int],
        absorbed_rides: int,
        dst_pending: List[Any],
        src_pending: List[Any],
    ) -> None:
        """In-process half of a committed merge: retire the source slot to a
        placeholder, rebuild the destination from the merged checkpoint."""
        config = self.durability
        dst_slot, src_slot = dst.shard_id, src.shard_id
        config.names[dst_slot] = dst_names
        config.names.pop(src_slot, None)
        self._lane_owner[self._slot_lane[src_slot]] = dst_slot
        self._redirect[src_slot] = dst_slot
        for ride_id, home in list(self._ride_homes.items()):
            if home == src_slot:
                self._ride_homes[ride_id] = dst_slot
        for operand in (dst, src):
            durable = _durable_of(operand.adapter)
            if durable is not None and not durable.wal.closed:
                durable.wal.close()
        epoch = self.shard_map.swap(new_assignment, len(self.shards))
        self._g_epoch.set(epoch)
        # Retire the source slot BEFORE requeueing: a bounced job re-resolves
        # through the redirect the moment it runs.
        self.shards[src_slot] = _Shard(src_slot, None, None, None, active=False)
        engine = self._recover_or_make_engine(dst_slot)
        adapter, worker = self._wrap_stack(dst_slot, engine)
        dst.engine, dst.adapter = engine, adapter
        requeue = list(dst_pending)
        for job in src_pending:
            if job.operation == "track":
                # Best-effort tick: the merged engine is swept by the next
                # tick; resolving the future keeps the broadcaster moving.
                job.future.set_result(0)
            elif job.operation in _ROUTED_OPS:
                # Safe on the destination worker: the closure's epoch-race
                # check bounces it back to re-resolve before it can touch
                # the wrong adapter.
                requeue.append(job)
            else:
                self._drop_job(src_slot, job)
        requeue.sort(key=lambda job: job.enqueued_at)
        for job in requeue:
            if not worker.resubmit(job):
                self._drop_job(dst_slot, job)
        dst.worker = worker
        self._c_migrated.inc(absorbed_rides)
        self.name = f"Sharded(XAR x{len(self._active_shards())})"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self._active_shards():
            shard.worker.close()
            durable = _durable_of(shard.adapter)
            if durable is not None and not durable.wal.closed:
                # Final fsync barrier: everything the service acknowledged
                # is on disk before the handles go away.
                durable.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
