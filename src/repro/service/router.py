"""The sharded ride-matching service: N engines behind one façade.

:class:`ShardRouter` partitions the region's cluster space with a
:class:`~repro.service.sharding.ShardMap` and gives every shard its own
:class:`~repro.core.XAREngine` behind a :class:`~repro.service.shard.ShardWorker`
(worker thread + bounded queue).  The router speaks the simulator's
``EngineAdapter`` protocol, so everything that can drive one engine — the
replay simulator, the load generator, the fault injector — can drive the
whole fleet unchanged.

Routing rules (see docs/service.md):

* **create** goes to the shard owning the ride source's cluster; each shard
  allocates ride ids from a disjoint arithmetic lane
  (``shard_id + 1 + k * n_shards``) so ids stay globally unique and encode
  their home shard — ``book``/``cancel`` route by ``ride_id % n_shards``
  without any lookup table;
* **search** fans out to the shards owning walkable clusters of the
  request's source/destination (expanded by ``fanout_radius_m``; or every
  shard with ``fanout="all"``) and k-way-merges the per-shard batches by the
  engine's ranking key, reproducing the single-engine ordering exactly;
* **track** broadcasts to all shards, each sweeping only its own rides —
  the tick's cost is amortized 1/N per shard;
* a full queue sheds the operation with
  :class:`~repro.exceptions.ShardOverloadError` (admission control); a
  partially shed fan-out search still serves from the shards that accepted.

Reproducibility: per-shard RNGs (retry jitter, any stochastic policy) are
derived from one root seed via :func:`~repro.service.sharding.derive_seed`.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Dict, List, Optional

from ..core import XAREngine
from ..core.booking import BookingRecord
from ..core.request import RideRequest
from ..core.search import MatchOption
from ..discretization import DiscretizedRegion, region_digest
from ..durability import (
    DurabilityConfig,
    DurableAdapter,
    RecoveryResult,
    WriteAheadLog,
    recover_engine,
)
from ..exceptions import (
    ConfigurationError,
    RecoveryError,
    ServiceClosedError,
    ShardOverloadError,
    UnknownRideError,
    WorkerCrashError,
    XARError,
)
from ..geo import GeoPoint
from ..obs import FANOUT_BUCKETS, MetricsRegistry
from ..resilience import InvariantAuditor, ResilienceConfig, ResilientEngine
from ..sim.adapters import XARAdapter
from .merge import merge_matches
from .shard import ShardWorker
from .sharding import ShardMap, derive_seed


def _durable_of(adapter: Any) -> Optional[DurableAdapter]:
    """The DurableAdapter in an adapter stack, if any (walks ``.inner``)."""
    node = adapter
    while node is not None:
        if isinstance(node, DurableAdapter):
            return node
        node = getattr(node, "inner", None)
    return None


class _Shard:
    """One shard's engine + adapter stack + worker thread."""

    __slots__ = ("shard_id", "engine", "adapter", "worker")

    def __init__(self, shard_id: int, engine: XAREngine, adapter: Any, worker: ShardWorker):
        self.shard_id = shard_id
        self.engine = engine
        self.adapter = adapter
        self.worker = worker


class ShardRouter:
    """Sharded, concurrent ride-matching service (EngineAdapter-shaped)."""

    def __init__(
        self,
        region: DiscretizedRegion,
        n_shards: int,
        *,
        queue_depth: int = 128,
        fanout: str = "local",
        fanout_radius_m: Optional[float] = None,
        resilient: bool = False,
        optimize_insertion: bool = False,
        use_flat_index: bool = True,
        seed: int = 0,
        engine_factory: Optional[Callable[[int, int], XAREngine]] = None,
        metrics: Optional[MetricsRegistry] = None,
        durability: Optional[DurabilityConfig] = None,
    ):
        if fanout not in ("local", "all"):
            raise ValueError(f"fanout must be 'local' or 'all', got {fanout!r}")
        self.region = region
        self.shard_map = ShardMap(region, n_shards)
        self.n_shards = self.shard_map.n_shards
        self.fanout = fanout
        #: Neighbor expansion radius for local fan-out; defaults to the
        #: region's approximation radius ε (clusters within one guarantee
        #: band of the request are consulted too).
        self.fanout_radius_m = (
            fanout_radius_m
            if fanout_radius_m is not None
            else region.config.epsilon_m
        )
        self.seed = seed
        self.name = f"Sharded(XAR x{self.n_shards})"
        self._closed = False
        #: The service's metric registry: every shard engine, worker and
        #: router-level counter reports here (pass a shared registry to
        #: co-locate load-generator series in the same exposition).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Registry counters replacing the racy unlocked ints the router
        #: used to keep — see the ``partial_searches`` / ``search_failures``
        #: read-through properties.
        self._c_partial = self.metrics.counter(
            "xar_router_partial_searches_total",
            "Fan-out searches that lost >= 1 shard to shedding but were "
            "still served from the rest (degraded recall, not failure)",
        )
        self._c_search_failures = self.metrics.counter(
            "xar_router_search_failures_total",
            "Per-shard search calls that raised and contributed an empty "
            "batch instead of failing the whole fan-out",
        )
        self._c_shed_searches = self.metrics.counter(
            "xar_router_shed_searches_total",
            "Searches refused outright: every consulted shard shed",
        )
        self._c_ticks = self.metrics.counter(
            "xar_router_track_ticks_total",
            "Tracking ticks by outcome: applied (>= 1 shard swept), "
            "coalesced (not later than the committed watermark), dropped "
            "(every shard shed; the watermark did NOT advance, so a retry "
            "at the same timestamp will sweep)",
            labels=("outcome",),
        )
        self._h_fanout = self.metrics.histogram(
            "xar_router_fanout_width",
            "Shards consulted per fan-out search",
            buckets=FANOUT_BUCKETS,
        )
        # Pre-create every child so the exposition always carries the full
        # router series set, zeros included (scrape-friendly and lets CI
        # assert on names without first forcing traffic through each path).
        for family in (self._c_partial, self._c_search_failures,
                       self._c_shed_searches, self._h_fanout):
            family.labels()
        for outcome in ("applied", "coalesced", "dropped"):
            self._c_ticks.labels(outcome=outcome)
        self._last_track_s: Optional[float] = None
        self._track_lock = threading.Lock()

        #: Failover bookkeeping: one lock serialises all recoveries, and the
        #: config + digest let a dead shard's stack be rebuilt from its WAL.
        self.durability = durability
        self._queue_depth = queue_depth
        self._resilient = resilient
        self._optimize_insertion = optimize_insertion
        self._use_flat_index = use_flat_index
        self._engine_factory = engine_factory
        self._digest = region_digest(region) if durability is not None else ""
        self._failover_lock = threading.Lock()
        self.last_recoveries: Dict[int, RecoveryResult] = {}
        self._c_failovers = self.metrics.counter(
            "xar_failovers_total",
            "Shard worker crashes recovered by the failover supervisor",
            labels=("shard",),
        )
        if durability is not None:
            for shard_id in range(self.n_shards):
                self._c_failovers.labels(shard=str(shard_id))

        self.shards: List[_Shard] = []
        for shard_id in range(self.n_shards):
            engine = self._recover_or_make_engine(shard_id)
            adapter, worker = self._wrap_stack(shard_id, engine)
            self.shards.append(_Shard(shard_id, engine, adapter, worker))

    # ------------------------------------------------------------------
    # Shard stack construction (initial build + failover rebuild)
    # ------------------------------------------------------------------
    def _recover_or_make_engine(self, shard_id: int) -> XAREngine:
        """Fresh engine, or — when the shard's WAL already exists — the
        engine recovered from checkpoint + WAL replay (service restart)."""
        if self.durability is not None and os.path.exists(
            self.durability.wal_path(shard_id)
        ):
            result = recover_engine(
                self.region,
                self.durability.wal_path(shard_id),
                self.durability.checkpoint_path(shard_id),
                engine_factory=lambda: self._make_engine(shard_id),
                metrics=self.metrics,
            )
            self.last_recoveries[shard_id] = result
            return result.engine
        return self._make_engine(shard_id)

    def _make_engine(self, shard_id: int) -> XAREngine:
        if self._engine_factory is not None:
            return self._engine_factory(shard_id, self.n_shards)
        return XAREngine(
            self.region,
            optimize_insertion=self._optimize_insertion,
            use_flat_index=self._use_flat_index,
            ride_id_start=shard_id + 1,
            ride_id_step=self.n_shards,
            metrics=self.metrics,
            metrics_labels={"shard": str(shard_id)},
        )

    def _wrap_stack(self, shard_id: int, engine: XAREngine):
        """Adapter stack + worker around an engine: XARAdapter, then the
        WAL decorator (innermost, so resilient retries are logged too),
        then the resilient runtime, then the worker thread."""
        adapter: Any = XARAdapter(engine)
        if self.durability is not None:
            config = self.durability
            wal = WriteAheadLog.open(
                config.wal_path(shard_id),
                shard_id=shard_id,
                ride_id_start=shard_id + 1,
                ride_id_step=self.n_shards,
                region_digest=self._digest,
                fsync_every=config.fsync_every,
                metrics=self.metrics,
                metrics_labels={"shard": str(shard_id)},
            )
            adapter = DurableAdapter(
                adapter,
                wal,
                checkpoint_path=config.checkpoint_path(shard_id),
                checkpoint_every=config.checkpoint_every,
                shard_id=shard_id,
                digest=self._digest,
                metrics=self.metrics,
            )
        if self._resilient:
            adapter = ResilientEngine(
                adapter,
                ResilienceConfig(seed=derive_seed(self.seed, shard_id)),
                metrics=self.metrics,
                metrics_labels={"shard": str(shard_id)},
            )
        worker = ShardWorker(
            shard_id,
            adapter,
            queue_depth=self._queue_depth,
            seed=derive_seed(self.seed, shard_id),
            metrics=self.metrics,
        )
        return adapter, worker

    # ------------------------------------------------------------------
    # Legacy counter surface (now registry-backed, hence race-free)
    # ------------------------------------------------------------------
    @property
    def partial_searches(self) -> int:
        """Fan-out searches that lost at least one shard to shedding but
        were still served from the rest (degraded recall, not failure)."""
        return int(self._c_partial.value)

    @property
    def search_failures(self) -> int:
        """Per-shard search calls that raised an XARError and contributed
        an empty batch instead of failing the whole fan-out."""
        return int(self._c_search_failures.value)

    @property
    def dropped_ticks(self) -> int:
        """Tracking ticks every shard shed (watermark rolled back)."""
        return int(self._c_ticks.labels(outcome="dropped").value)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of_ride(self, ride_id: int) -> int:
        """Home shard encoded in the ride id's arithmetic lane."""
        return (ride_id - 1) % self.n_shards

    def shards_for_request(self, request: RideRequest) -> List[int]:
        if self.fanout == "all":
            return list(range(self.n_shards))
        return self.shard_map.shards_for_request(request, self.fanout_radius_m)

    # ------------------------------------------------------------------
    # Failover supervision
    # ------------------------------------------------------------------
    def _ensure_live(self, shard: _Shard) -> None:
        if shard.worker.crashed:
            self._failover(shard)

    def _with_failover(self, shard: _Shard, attempt: Callable[[], Any]) -> Any:
        """Run ``attempt`` on a live shard, recovering it first if needed.

        ``attempt`` must late-bind through the ``shard`` object
        (``shard.worker`` / ``shard.adapter``), because failover swaps the
        stack in place.  A crash *detected at submission* (``mid_op=False``:
        the op never started) is retried once on the recovered shard; a
        crash *mid-operation* re-raises after failover — the op may already
        be in the WAL, and recovery has replayed it, so a blind retry would
        double-apply.
        """
        self._ensure_live(shard)
        try:
            return attempt()
        except WorkerCrashError as exc:
            self._failover(shard)
            if exc.mid_op:
                raise
            return attempt()

    def _failover(self, shard: _Shard) -> None:
        """Recover a crashed shard in place: drain its queue, replay its
        WAL (checkpoint + suffix), swap in a fresh stack, requeue the
        drained jobs (original futures intact).  Jobs the rebuilt queue
        cannot hold are shed with ``outcome="dropped"``."""
        with self._failover_lock:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            if not shard.worker.crashed:
                return  # another caller already recovered it
            if self.durability is None:
                raise RecoveryError(
                    f"shard {shard.shard_id} crashed but the service has no "
                    "durability configured: its state is unrecoverable"
                )
            old_worker = shard.worker
            pending = old_worker.drain_pending()
            old_worker.join(timeout_s=5.0)
            # Disarm any one-shot crash hook and release the dead stack's
            # WAL handle so the rebuilt stack can reopen the file.
            shard.engine.fault_hook = None
            durable = _durable_of(shard.adapter)
            if durable is not None and not durable.wal.closed:
                durable.abandon()
            result = recover_engine(
                self.region,
                self.durability.wal_path(shard.shard_id),
                self.durability.checkpoint_path(shard.shard_id),
                engine_factory=lambda: self._make_engine(shard.shard_id),
                metrics=self.metrics,
            )
            self.last_recoveries[shard.shard_id] = result
            engine = result.engine
            adapter, worker = self._wrap_stack(shard.shard_id, engine)
            # Publish engine + adapter first (requeued jobs late-bind
            # ``shard.adapter`` and may start executing immediately), but
            # hold back ``shard.worker`` until every drained job is
            # requeued: submitters route through the worker, so while it is
            # unpublished none of them can race the survivors for queue
            # slots — the drained jobs keep their FIFO positions ahead of
            # all post-failover traffic.
            shard.engine, shard.adapter = engine, adapter
            for job in pending:
                if not worker.resubmit(job):
                    self.metrics.counter(
                        "xar_shard_ops_total",
                        labels=("shard", "op", "outcome"),
                    ).labels(
                        shard=str(shard.shard_id),
                        op=job.operation,
                        outcome="dropped",
                    ).inc()
                    job.future.set_exception(
                        ShardOverloadError(shard.shard_id, job.operation)
                    )
            shard.worker = worker
            self._c_failovers.labels(shard=str(shard.shard_id)).inc()

    def supervise(self) -> int:
        """Sweep every shard and recover any whose worker died; returns the
        number of failovers performed."""
        recovered = 0
        for shard in self.shards:
            if shard.worker.crashed:
                self._failover(shard)
                recovered += 1
        return recovered

    def crash_shard(self, shard_id: int, *, mid_book: bool = False,
                    kill: bool = False) -> None:
        """Chaos hook: kill one shard's worker as a process death would.

        Plain crashes enqueue a job that dies on the worker thread;
        ``mid_book=True`` instead arms a one-shot engine hook that kills
        the *next booking* between its transactional snapshot and the route
        splice — the op is in the WAL but never applied, the exact window
        recovery must close.  ``kill`` is accepted for signature parity with
        the process-mode supervisor (where it means SIGKILL); a thread
        worker's death is always the in-process flavour.
        """
        del kill  # thread mode has no process to signal
        if self.durability is None:
            raise ConfigurationError(
                "crash injection requires a durable service "
                "(pass durability=DurabilityConfig(...))"
            )
        shard = self.shards[shard_id]
        if mid_book:
            engine = shard.engine

            def hook(point: str) -> None:
                if point == "book:post-snapshot":
                    engine.fault_hook = None
                    raise WorkerCrashError(
                        f"injected crash in shard {shard_id} at {point}"
                    )

            engine.fault_hook = hook
            return

        def die() -> None:
            raise WorkerCrashError(f"injected crash in shard {shard_id}")

        try:
            future = shard.worker.submit("crash", die)
        except (WorkerCrashError, ShardOverloadError, ServiceClosedError):
            return  # already dead, saturated, or shutting down: nothing to kill
        try:
            future.result(timeout=5.0)
        except WorkerCrashError:
            pass

    # ------------------------------------------------------------------
    # EngineAdapter protocol
    # ------------------------------------------------------------------
    def create(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
        shift_end_s: Optional[float] = None,
    ) -> Any:
        shard = self.shards[self.shard_map.shard_of_point(source)]
        return self._with_failover(
            shard,
            lambda: shard.worker.call(
                "create",
                lambda: shard.adapter.create(
                    source, destination, depart_s,
                    seats=seats, detour_limit_m=detour_limit_m,
                    shift_end_s=shift_end_s,
                ),
            ),
        )

    def search(self, request: RideRequest, k: Optional[int] = None) -> List[MatchOption]:
        """Fan out to the request's shards and k-way-merge their answers.

        Searches take each shard's inline read path — the engine's own lock
        provides the synchronisation, so a fan-out of three shards costs
        three small searches, not six thread hand-offs.  A shard that sheds
        (concurrency budget exhausted) degrades the search to partial
        results; only when *every* consulted shard refuses is the search
        itself shed.
        """
        shed = 0
        batches: List[List[MatchOption]] = []
        errors: List[XARError] = []
        shard_ids = self.shards_for_request(request)
        self._h_fanout.observe(len(shard_ids))
        for shard_id in shard_ids:
            shard = self.shards[shard_id]
            try:
                batches.append(
                    self._with_failover(
                        shard,
                        lambda shard=shard: shard.worker.execute_inline(
                            "search",
                            lambda: shard.adapter.search(request, k),
                        ),
                    )
                )
            except ShardOverloadError:
                shed += 1
            except XARError as exc:
                self._c_search_failures.inc()
                errors.append(exc)
        if shed and (batches or errors):
            self._c_partial.inc()
        if not batches:
            if shed or not errors:
                # Every consulted shard refused: the search itself is shed.
                self._c_shed_searches.inc()
                raise ShardOverloadError(-1, "search")
            raise errors[0]
        return merge_matches(batches, k)

    def book(self, request: RideRequest, match: MatchOption) -> BookingRecord:
        shard = self.shards[self.shard_of_ride(match.ride_id)]
        return self._with_failover(
            shard,
            lambda: shard.worker.call(
                "book", lambda: shard.adapter.book(request, match)
            ),
        )

    def track_all(self, now_s: float) -> int:
        """Broadcast a tracking tick; each shard sweeps only its rides.

        Ticks are batched: a tick at a simulated time no later than the last
        one already *accepted somewhere* is skipped entirely (the
        obsolescence sweep is monotone in time), so redundant ticks from
        concurrent drivers cost nothing.  A shard whose queue is full drops
        its tick — tracking is best-effort per shard.

        The watermark commits **only after at least one shard accepts the
        tick**.  Committing it up front (the old behaviour) permanently lost
        any tick every shard shed: a retry at the same simulated time
        compared equal to the watermark and was coalesced away, so the sweep
        never ran even once the queues drained.  Outcomes are counted in
        ``xar_router_track_ticks_total{outcome=applied|coalesced|dropped}``.
        """
        futures = []
        with self._track_lock:
            if self._last_track_s is not None and now_s <= self._last_track_s:
                self._c_ticks.labels(outcome="coalesced").inc()
                return 0
            for shard in self.shards:
                try:
                    self._ensure_live(shard)
                    futures.append(
                        (
                            shard,
                            shard.worker.submit(
                                "track",
                                # Late-bound through the shard object: a job
                                # requeued after failover must sweep the
                                # *recovered* engine, not the dead one.
                                lambda shard=shard: shard.adapter.track_all(
                                    now_s
                                ),
                            ),
                        )
                    )
                except (ShardOverloadError, WorkerCrashError):
                    continue
            if futures:
                # >= 1 shard holds the tick: the sweep up to now_s will
                # happen, so the watermark may advance.
                self._last_track_s = now_s
                self._c_ticks.labels(outcome="applied").inc()
            else:
                # Every shard shed.  Leave the watermark where it was so a
                # retry at the same timestamp is NOT coalesced away.
                self._c_ticks.labels(outcome="dropped").inc()
                return 0
        total = 0
        for shard, future in futures:
            try:
                total += future.result()
            except WorkerCrashError:
                # The tick crashed this shard mid-sweep.  Its WAL holds the
                # track record, so recovery replays the sweep; the tick is
                # not lost, just accounted to the recovered engine.
                self._failover(shard)
        return total

    def cancel(self, ride: Any) -> None:
        shard = self.shards[self.shard_of_ride(ride.ride_id)]
        self._with_failover(
            shard,
            lambda: shard.worker.call(
                "cancel", lambda: shard.adapter.cancel(ride)
            ),
        )

    def cancel_booking(self, request_id: int, ride_id: int) -> Any:
        """Cancel one passenger's booking on the ride's home shard."""
        shard = self.shards[self.shard_of_ride(ride_id)]
        return self._with_failover(
            shard,
            lambda: shard.worker.call(
                "cancel_booking",
                lambda: shard.adapter.cancel_booking(request_id, ride_id),
            ),
        )

    def active_rides(self) -> List[Any]:
        rides: List[Any] = []
        for shard in self.shards:
            rides.extend(
                self._with_failover(
                    shard,
                    lambda shard=shard: shard.worker.call(
                        "admin", lambda: shard.adapter.active_rides()
                    ),
                )
            )
        return rides

    # ------------------------------------------------------------------
    # Adapter parity (protocol introspection surface)
    # ------------------------------------------------------------------
    def rollback_count(self) -> int:
        return sum(len(shard.engine.rollbacks) for shard in self.shards)

    def index_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for shard in self.shards:
            stats = self._with_failover(
                shard,
                lambda shard=shard: shard.worker.call(
                    "admin", lambda: shard.engine.index_stats()
                ),
            )
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    # Service introspection
    # ------------------------------------------------------------------
    def bookings(self) -> List[BookingRecord]:
        """All shards' booking ledgers, concatenated shard-by-shard."""
        records: List[BookingRecord] = []
        for shard in self.shards:
            records.extend(
                self._with_failover(
                    shard,
                    lambda shard=shard: shard.worker.call(
                        "admin", lambda: list(shard.engine.bookings)
                    ),
                )
            )
        return records

    def find_ride(self, ride_id: int) -> Any:
        """Resolve a ride (live or completed) on its home shard.

        The lookup takes the engine's lock: without it a concurrent cancel
        or completion sweep on the shard's worker thread could be observed
        mid-removal (popped from ``rides`` but not yet in
        ``completed_rides``), spuriously raising ``UnknownRideError`` for a
        ride that exists.
        """
        shard = self.shards[self.shard_of_ride(ride_id)]
        self._ensure_live(shard)
        engine = shard.engine
        with engine.lock:
            ride = (
                engine.rides.get(ride_id)
                or engine.completed_rides.get(ride_id)
            )
        if ride is None:
            raise UnknownRideError(ride_id)
        return ride

    def audit(self, heal: bool = False) -> Dict[str, Any]:
        """Run the invariant auditor on every shard, inside its worker.

        Returns total violations plus the per-shard breakdown; with
        ``heal=True`` index damage is repaired and a second sweep verifies.
        """
        per_shard: Dict[int, int] = {}
        healed = 0
        for shard in self.shards:
            def sweep(shard=shard):
                # Late-bound: after a failover this must audit the shard's
                # *recovered* engine, not the stack that died.
                auditor = InvariantAuditor(shard.engine)
                report = auditor.audit()
                actions = 0
                if heal and not report.ok:
                    actions = auditor.heal(report)
                    report = auditor.audit()
                return len(report.violations), actions

            violations, actions = self._with_failover(
                shard,
                lambda shard=shard, sweep=sweep: shard.worker.call(
                    "audit", sweep
                ),
            )
            per_shard[shard.shard_id] = violations
            healed += actions
        return {
            "violations": sum(per_shard.values()),
            "per_shard": per_shard,
            "healed": healed,
        }

    def stats(self) -> Dict[str, Any]:
        """Service-level counters: queue/shed stats, rides, bookings.

        All reads are race-free: worker counters are copied under the
        worker's stats lock (``stats_snapshot``) and engine state is read
        under the engine's lock, so a concurrent booking can never be seen
        mid-increment.
        """
        shard_stats = []
        total_shed = 0
        for shard in self.shards:
            snapshot = shard.worker.stats_snapshot()
            total_shed += sum(snapshot["shed"].values())
            with shard.engine.lock:
                rides = shard.engine.n_active_rides
                bookings = shard.engine.n_bookings
            shard_stats.append(
                {
                    "shard_id": shard.shard_id,
                    "clusters": len(self.shard_map.clusters_of_shard(shard.shard_id)),
                    "rides": rides,
                    "bookings": bookings,
                    **snapshot,
                }
            )
        return {
            "name": self.name,
            "n_shards": self.n_shards,
            "fanout": self.fanout,
            "fanout_radius_m": self.fanout_radius_m,
            "total_shed": total_shed,
            "partial_searches": self.partial_searches,
            "search_failures": self.search_failures,
            "dropped_ticks": self.dropped_ticks,
            "shards": shard_stats,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.worker.close()
            durable = _durable_of(shard.adapter)
            if durable is not None and not durable.wal.closed:
                # Final fsync barrier: everything the service acknowledged
                # is on disk before the handles go away.
                durable.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
