"""Process-isolated shards: supervision tree, RPC, async gateway.

This package promotes :class:`~repro.service.shard.ShardWorker` from a
thread to a *subprocess*, giving every shard a real fault domain (a wedged
or corrupted worker can no longer take the service down) and an escape from
the GIL (shard searches run on separate interpreters, so the fleet scales
with cores instead of capping out near the 4-thread ceiling):

* :mod:`~repro.service.proc.rpc` — length-prefixed, CRC-checked binary
  RPC frames over UNIX sockets: request ids, per-op deadlines, retry
  policy with jittered backoff, idempotency keys;
* :mod:`~repro.service.proc.worker` — the child entry point: recovers the
  shard engine from its WAL directory, then serves ops + heartbeats;
* :mod:`~repro.service.proc.supervisor` — :class:`ShardSupervisor` spawns
  each shard with its own WAL dir, watches liveness (heartbeats + exit
  codes), classifies failures (crash / hang / repeated-crash) and restarts
  through crash recovery with exponential backoff, quarantining shards
  that flap;
* :mod:`~repro.service.proc.router` — :class:`ProcRouter`, the
  ``EngineAdapter``-shaped façade over the process fleet (same routing,
  merge and partial-degradation semantics as the thread router);
* :mod:`~repro.service.proc.gateway` — an ``asyncio`` HTTP/JSON gateway
  with admission control and deadline-based load shedding;
* :mod:`~repro.service.proc.client` — the HTTP client adapter that lets
  the load generator drive a remote gateway like a real client fleet.
"""

from .client import HttpServiceClient
from .gateway import Gateway, GatewayConfig
from .router import ProcRouter
from .rpc import RetryPolicy, read_frame, write_frame
from .supervisor import ProcShard, ShardSupervisor, SupervisorConfig

__all__ = [
    "Gateway",
    "GatewayConfig",
    "HttpServiceClient",
    "ProcRouter",
    "ProcShard",
    "RetryPolicy",
    "ShardSupervisor",
    "SupervisorConfig",
    "read_frame",
    "write_frame",
]
