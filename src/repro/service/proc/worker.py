"""The shard subprocess: ``python -m repro.service.proc.worker CONFIG.json``.

One process per shard.  On start the child

1. loads the discretized region from disk (regions are content-digested,
   so parent and child provably serve the same geometry),
2. **recovers** its engine from the shard's own WAL directory when one
   exists — restart *is* crash recovery; there is no separate cold path —
3. rebuilds the familiar adapter stack (``XARAdapter`` →
   ``DurableAdapter`` → optional ``ResilientEngine``) behind a
   :class:`~repro.service.shard.ShardWorker`, so admission control, the
   bounded queue and the inline read path behave exactly as in thread
   mode, and
4. connects back to the supervisor's UNIX socket: ``ops_connections``
   request/response channels plus one dedicated heartbeat channel.

Failure semantics: a :class:`~repro.exceptions.WorkerCrashError` surfacing
from the engine (injected mid-book crashes included) terminates the process
with ``os._exit`` *without answering the in-flight request* — the parent
observes EOF mid-call, exactly like a real process death, and recovery
completes the op from the WAL.  ``SIGTERM`` triggers a graceful drain: stop
admitting, finish the queued mutations, fsync the WAL, exit 0.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import threading
import time
from typing import Any, Dict, Optional

from ...core import XAREngine
from ...discretization import load_region, region_digest
from ...durability import DurabilityConfig, DurableAdapter, WriteAheadLog, recover_engine
from ...exceptions import (
    DeadlineExceededError,
    RpcError,
    ShardOverloadError,
    UnknownRideError,
    WorkerCrashError,
    XARError,
)
from ...obs import MetricsRegistry, to_prometheus_text
from ...resilience import InvariantAuditor, ResilienceConfig, ResilientEngine
from ...sim.adapters import XARAdapter
from ..shard import ShardWorker
from ..sharding import derive_seed
from . import codec
from .rpc import error_response, read_frame, write_frame

#: Exit code for simulated/real worker crashes (parent classifies by it).
CRASH_EXIT_CODE = 13


class ShardProcess:
    """Everything one shard subprocess owns; built from the config dict."""

    def __init__(self, config: Dict[str, Any]):
        self.config = config
        self.shard_id = int(config["shard_id"])
        self.n_shards = int(config["n_shards"])
        self.generation = int(config.get("generation", 0))
        # Ride-id lane: defaults interleave by shard id, but elastic
        # resharding hands children explicit lanes (and a modulus fixed at
        # the service's max_shards) via the spawn config.
        self.ride_id_start = int(
            config.get("ride_id_start", self.shard_id + 1))
        self.ride_id_step = int(config.get("ride_id_step", self.n_shards))
        self.metrics = MetricsRegistry()
        self.region = load_region(config["region_dir"])
        self.digest = region_digest(self.region)
        self.durability = DurabilityConfig(
            directory=config["wal_dir"],
            fsync_every=int(config.get("fsync_every", 64)),
            checkpoint_every=int(config.get("checkpoint_every", 0)),
        )
        self.recovery_info: Optional[Dict[str, Any]] = None
        engine = self._recover_or_make_engine()
        self.engine = engine
        self.adapter = self._wrap_stack(engine)
        self.worker = ShardWorker(
            self.shard_id,
            self.adapter,
            queue_depth=int(config.get("queue_depth", 128)),
            seed=derive_seed(int(config.get("seed", 0)), self.shard_id),
            metrics=self.metrics,
        )
        self._draining = threading.Event()
        self._shutdown = threading.Event()
        self._hang_heartbeats = threading.Event()
        self._hb_seq = 0

    # ------------------------------------------------------------------
    # Engine / stack construction (mirrors ShardRouter's per-shard build)
    # ------------------------------------------------------------------
    def _make_engine(self) -> XAREngine:
        return XAREngine(
            self.region,
            optimize_insertion=bool(self.config.get("optimize_insertion")),
            ride_id_start=self.ride_id_start,
            ride_id_step=self.ride_id_step,
            metrics=self.metrics,
            metrics_labels={"shard": str(self.shard_id)},
        )

    def _recover_or_make_engine(self) -> XAREngine:
        wal_path = self.durability.wal_path(self.shard_id)
        if os.path.exists(wal_path):
            result = recover_engine(
                self.region,
                wal_path,
                self.durability.checkpoint_path(self.shard_id),
                engine_factory=self._make_engine,
                metrics=self.metrics,
            )
            self.recovery_info = {
                "replayed_ops": result.replayed_ops,
                "skipped_ops": result.skipped_ops,
                "failed_ops": result.failed_ops,
                "torn_tail_bytes": result.torn_tail_bytes,
                "checkpoint_seq": result.checkpoint_seq,
                "last_seq": result.last_seq,
            }
            return result.engine
        return self._make_engine()

    def _wrap_stack(self, engine: XAREngine):
        adapter: Any = XARAdapter(engine)
        wal = WriteAheadLog.open(
            self.durability.wal_path(self.shard_id),
            shard_id=self.shard_id,
            ride_id_start=self.ride_id_start,
            ride_id_step=self.ride_id_step,
            region_digest=self.digest,
            fsync_every=self.durability.fsync_every,
            metrics=self.metrics,
            metrics_labels={"shard": str(self.shard_id)},
        )
        self.durable = DurableAdapter(
            adapter,
            wal,
            checkpoint_path=self.durability.checkpoint_path(self.shard_id),
            checkpoint_every=self.durability.checkpoint_every,
            shard_id=self.shard_id,
            digest=self.digest,
            metrics=self.metrics,
        )
        adapter = self.durable
        if self.config.get("resilient"):
            adapter = ResilientEngine(
                adapter,
                ResilienceConfig(
                    seed=derive_seed(int(self.config.get("seed", 0)),
                                     self.shard_id)
                ),
                metrics=self.metrics,
                metrics_labels={"shard": str(self.shard_id)},
            )
        return adapter

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one request; returns the response envelope.

        A ``WorkerCrashError`` escaping from here means the "process" died
        mid-operation: the caller (the connection loop) must ``os._exit``
        without responding, never answer on the worker's behalf.
        """
        request_id = int(request.get("id", -1))
        op = str(request.get("op", ""))
        args = request.get("args") or {}
        deadline_ms = request.get("deadline_ms")
        try:
            if deadline_ms is not None and float(deadline_ms) <= 0.0:
                raise DeadlineExceededError(op, 0.0, 0.0)
            if self._draining.is_set() and op not in (
                    "ping", "shutdown", "stats", "metrics"):
                raise ShardOverloadError(self.shard_id, op)
            result = self._execute(op, args)
        except WorkerCrashError:
            raise
        except XARError as exc:
            return error_response(request_id, exc)
        except Exception as exc:  # noqa: BLE001 - relayed, never fatal here
            return error_response(request_id, RpcError(
                f"unhandled {type(exc).__name__}: {exc}"))
        return {"id": request_id, "ok": True, "result": result}

    def _execute(self, op: str, args: Dict[str, Any]) -> Any:
        engine = self.engine
        worker = self.worker
        if op == "ping":
            return {"pid": os.getpid(), "generation": self.generation}
        if op == "search":
            request = codec.request_from(args["request"])
            k = args.get("k")
            matches = worker.execute_inline(
                "search",
                lambda: self.adapter.search(request,
                                            None if k is None else int(k)),
            )
            return {"matches": codec.matches_record(matches)}
        if op == "create":
            ride = worker.call(
                "create",
                lambda: self.adapter.create(
                    _point(args["source"]),
                    _point(args["destination"]),
                    float(args["depart_s"]),
                    seats=None if args.get("seats") is None
                    else int(args["seats"]),
                    detour_limit_m=codec.optional_float(
                        args.get("detour_limit_m")),
                    shift_end_s=codec.optional_float(
                        args.get("shift_end_s")),
                ),
            )
            return {"ride": codec.ride_record(ride)}
        if op == "book":
            request = codec.request_from(args["request"])
            match = codec.match_from(args["match"])

            def do_book():
                # Idempotent by ledger: a retried book whose first attempt
                # crashed mid-apply finds the booking WAL replay completed
                # and returns it verbatim — recovery, not the client, is
                # the dedupe source of truth.
                with engine.lock:
                    for existing in engine.bookings:
                        if (existing.request_id == request.request_id
                                and existing.ride_id == match.ride_id):
                            return existing, True
                return self.adapter.book(request, match), False

            record, deduped = worker.call("book", do_book)
            return {"booking": codec.booking_record(record),
                    "deduped": deduped}
        if op == "cancel":
            ride_id = int(args["ride_id"])

            def do_cancel():
                with engine.lock:
                    ride = engine.rides.get(ride_id)
                if ride is None:
                    raise UnknownRideError(ride_id)
                return self.adapter.cancel(ride)

            worker.call("cancel", do_cancel)
            return {}
        if op == "cancel_booking":
            req_id = int(args["request_id"])
            ride_id = int(args["ride_id"])

            def do_cancel_booking():
                # Idempotent by ledger, like book: a retried cancellation
                # whose first attempt crashed mid-apply finds the WAL replay
                # already balanced the ledgers and returns the original
                # record instead of un-splicing twice.
                with engine.lock:
                    booked = sum(
                        1 for b in engine.bookings
                        if b.request_id == req_id and b.ride_id == ride_id
                    )
                    cancelled = [
                        c for c in engine.cancellations
                        if c.request_id == req_id and c.ride_id == ride_id
                    ]
                    if cancelled and len(cancelled) >= booked:
                        return cancelled[-1], True
                return self.adapter.cancel_booking(req_id, ride_id), False

            record, deduped = worker.call("cancel_booking", do_cancel_booking)
            return {"cancellation": codec.cancellation_record(record),
                    "deduped": deduped}
        if op == "track":
            affected = worker.call(
                "track", lambda: self.adapter.track_all(float(args["now_s"]))
            )
            return {"affected": affected}
        if op == "active_rides":
            def snapshot():
                with engine.lock:
                    return [codec.ride_record(r)
                            for r in self.adapter.active_rides()]
            return {"rides": worker.call("admin", snapshot)}
        if op == "bookings":
            def ledger():
                with engine.lock:
                    return [codec.booking_record(b) for b in engine.bookings]
            return {"bookings": worker.call("admin", ledger)}
        if op == "find_ride":
            ride_id = int(args["ride_id"])
            with engine.lock:
                ride = (engine.rides.get(ride_id)
                        or engine.completed_rides.get(ride_id))
            if ride is None:
                raise UnknownRideError(ride_id)
            return {"ride": codec.ride_record(ride)}
        if op == "audit":
            heal = bool(args.get("heal"))

            def sweep():
                auditor = InvariantAuditor(engine)
                report = auditor.audit()
                actions = 0
                if heal and not report.ok:
                    actions = auditor.heal(report)
                    report = auditor.audit()
                return {"violations": len(report.violations),
                        "healed": actions}

            return worker.call("audit", sweep)
        if op == "stats":
            snapshot = worker.stats_snapshot()
            snapshot["depth"] = worker.depth
            with engine.lock:
                snapshot["rides"] = engine.n_active_rides
                snapshot["bookings"] = engine.n_bookings
            snapshot["pid"] = os.getpid()
            snapshot["generation"] = self.generation
            return snapshot
        if op == "rollback_count":
            return {"count": self.adapter.rollback_count()}
        if op == "index_stats":
            return {"stats": worker.call(
                "admin", lambda: engine.index_stats())}
        if op == "checkpoint":
            self.durable.checkpoint()
            return {}
        if op == "metrics":
            return {"prometheus": to_prometheus_text(self.metrics)}
        if op == "crash":
            mode = str(args.get("mode", "exit"))
            if mode == "mid_book":
                def hook(point: str) -> None:
                    if point == "book:post-snapshot":
                        engine.fault_hook = None
                        raise WorkerCrashError(
                            f"injected crash in shard {self.shard_id} "
                            f"at {point}"
                        )
                engine.fault_hook = hook
                return {"armed": "mid_book"}
            # Plain crash: die right now, mid-RPC — no response ever leaves.
            raise WorkerCrashError(
                f"injected crash in shard {self.shard_id}")
        if op == "hang":
            # Keep the process alive but stop the heartbeats: the exact
            # failure the supervisor's hang detector must catch.
            self._hang_heartbeats.set()
            return {"hung": True}
        if op == "shutdown":
            self._shutdown.set()
            return {"draining": True}
        raise RpcError(f"unknown rpc op {op!r}")

    # ------------------------------------------------------------------
    # Connection loops
    # ------------------------------------------------------------------
    def serve_connection(self, sock: socket.socket) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    request = read_frame(sock)
                except RpcError:
                    return  # peer gone or stream corrupt: this channel dies
                try:
                    response = self.dispatch(request)
                except WorkerCrashError:
                    # Process-death semantics: no response, no cleanup, no
                    # final fsync — flushed WAL bytes survive, nothing else.
                    os._exit(CRASH_EXIT_CODE)
                try:
                    write_frame(sock, response)
                except RpcError:
                    return
        finally:
            _close_quietly(sock)

    def heartbeat_loop(self, sock: socket.socket, interval_s: float) -> None:
        try:
            while not self._shutdown.is_set():
                if not self._hang_heartbeats.is_set():
                    self._hb_seq += 1
                    try:
                        write_frame(sock, {
                            "kind": "hb",
                            "seq": self._hb_seq,
                            "pid": os.getpid(),
                            "generation": self.generation,
                            "depth": self.worker.stats.queue_peak,
                        })
                    except RpcError:
                        return
                self._shutdown.wait(interval_s)
        finally:
            _close_quietly(sock)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain_and_exit(self) -> None:
        """Graceful shutdown: admit nothing new, finish the queue, sync."""
        self._draining.set()
        self._shutdown.set()
        self.worker.close(timeout_s=30.0)
        if not self.durable.wal.closed:
            self.durable.close()
        # Give connection threads a beat to flush final responses.
        time.sleep(0.05)
        os._exit(0)


def _point(coords) -> Any:
    from ...geo import GeoPoint

    return GeoPoint(float(coords[0]), float(coords[1]))


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


def _connect(path: str, timeout_s: float = 30.0) -> socket.socket:
    deadline = time.monotonic() + timeout_s
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError:
            sock.close()
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.service.proc.worker CONFIG.json",
              file=sys.stderr)
        return 2
    with open(argv[0], "r", encoding="utf-8") as handle:
        config = json.load(handle)

    shard = ShardProcess(config)
    handshake_base = {
        "shard": shard.shard_id,
        "pid": os.getpid(),
        "generation": shard.generation,
    }

    ops_connections = int(config.get("ops_connections", 2))
    socket_path = config["socket_path"]
    ops_socks = []
    for _n in range(ops_connections):
        sock = _connect(socket_path)
        write_frame(sock, {**handshake_base, "role": "ops"})
        ops_socks.append(sock)
    hb_sock = _connect(socket_path)
    write_frame(hb_sock, {
        **handshake_base,
        "role": "hb",
        "recovery": shard.recovery_info,
    })

    def on_sigterm(_signum, _frame):
        # Run the drain off the signal frame so in-flight worker jobs are
        # never interrupted mid-mutation.
        threading.Thread(target=shard.drain_and_exit, daemon=True).start()

    signal.signal(signal.SIGTERM, on_sigterm)

    threads = [
        threading.Thread(target=shard.serve_connection, args=(sock,),
                         name=f"xar-proc-ops-{i}", daemon=True)
        for i, sock in enumerate(ops_socks)
    ]
    threads.append(threading.Thread(
        target=shard.heartbeat_loop,
        args=(hb_sock, float(config.get("heartbeat_interval_s", 0.5))),
        name="xar-proc-hb",
        daemon=True,
    ))
    for thread in threads:
        thread.start()

    # Park the main thread until a shutdown (RPC or SIGTERM) is requested.
    shard._shutdown.wait()
    shard.drain_and_exit()
    return 0


if __name__ == "__main__":
    sys.exit(main())
