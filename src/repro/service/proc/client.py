"""HTTP client adapter: drive a remote gateway like a local engine.

:class:`HttpServiceClient` implements the EngineAdapter surface over the
gateway's HTTP/JSON API, so the load generator (``xar loadtest --remote``),
the differential harness's workloads, or any other adapter consumer can
point at a running ``xar serve`` instance instead of an in-process service.

Connections are **per thread** (``http.client`` connections are not
thread-safe; the load generator calls from many rider threads at once) and
kept alive across requests.  Every request carries the caller's remaining
deadline in ``X-Deadline-Ms`` — the budget the gateway's admission control
sheds against.

Status mapping (the inverse of the gateway's):

* 503 + shed reason or ``ShardOverloadError``   -> ``ShardOverloadError``
  (the load generator's shed accounting just works against a remote fleet);
* 503 + ``WorkerCrashError``                    -> ``WorkerCrashError``;
* 504                                           -> ``DeadlineExceededError``;
* 422                                           -> the named ``XARError``
  subclass, rebuilt like the shard RPC layer rebuilds remote errors.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse
from typing import Any, Dict, List, Optional

from ...core.booking import BookingRecord
from ...core.request import RideRequest
from ...core.search import MatchOption
from ...discretization import DiscretizedRegion
from ...exceptions import (
    DeadlineExceededError,
    RpcTransportError,
    ShardOverloadError,
    WorkerCrashError,
)
from ...geo import GeoPoint
from . import codec
from .rpc import raise_remote_error


class HttpServiceClient:
    """EngineAdapter-shaped HTTP client for the gateway."""

    def __init__(
        self,
        base_url: str,
        region: DiscretizedRegion,
        *,
        deadline_ms: float = 30_000.0,
        timeout_s: Optional[float] = None,
    ):
        parsed = urllib.parse.urlsplit(
            base_url if "//" in base_url else f"//{base_url}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.region = region
        self.deadline_ms = deadline_ms
        self.timeout_s = (deadline_ms / 1000.0 + 5.0
                          if timeout_s is None else timeout_s)
        self.name = f"Http({self.host}:{self.port})"
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s)
            self._local.conn = conn
        return conn

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None,
                 deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        conn = self._connection()
        body = (None if payload is None
                else json.dumps(payload, separators=(",", ":")).encode())
        headers = {
            "Content-Type": "application/json",
            "X-Deadline-Ms": str(self.deadline_ms
                                 if deadline_ms is None else deadline_ms),
        }
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
        except (OSError, http.client.HTTPException) as exc:
            # Drop the (possibly desynchronised) connection; the next call
            # from this thread dials fresh.
            self._local.conn = None
            try:
                conn.close()
            except OSError:
                pass
            raise RpcTransportError(
                f"gateway request failed: {exc}", request_sent=True
            ) from exc
        try:
            parsed = json.loads(data.decode("utf-8")) if data else {}
        except (ValueError, UnicodeDecodeError):
            parsed = {"error": "XARError",
                      "message": f"undecodable gateway response "
                                 f"(status {response.status})"}
        if response.status == 200:
            return parsed
        self._raise_for(response.status, parsed, path)
        raise AssertionError("unreachable")

    def _raise_for(self, status: int, body: Dict[str, Any],
                   path: str) -> None:
        name = str(body.get("error", "XARError"))
        message = str(body.get("message", f"gateway returned {status}"))
        if body.get("shed"):
            # Gateway admission control; indistinguishable from an
            # overloaded shard as far as the caller's accounting goes.
            raise ShardOverloadError(-1, str(body["shed"]))
        if name == "WorkerCrashError":
            raise WorkerCrashError(message)
        if status == 504 or name == "DeadlineExceededError":
            raise DeadlineExceededError(path, 0.0, self.deadline_ms / 1000.0)
        raise_remote_error(body, shard_id=int(body.get("shard_id") or -1),
                           operation=str(body.get("operation") or path))

    # ------------------------------------------------------------------
    # EngineAdapter protocol
    # ------------------------------------------------------------------
    def create(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
    ) -> Any:
        result = self._request("POST", "/v1/create", {
            "source": [source.lat, source.lon],
            "destination": [destination.lat, destination.lon],
            "depart_s": depart_s,
            "seats": seats,
            "detour_limit_m": detour_limit_m,
        })
        return codec.ride_from(self.region, result["ride"])

    def search(self, request: RideRequest,
               k: Optional[int] = None) -> List[MatchOption]:
        result = self._request("POST", "/v1/search", {
            "request": codec.request_record(request),
            "k": k,
        })
        return codec.matches_from(result["matches"])

    def book(self, request: RideRequest, match: MatchOption) -> BookingRecord:
        result = self._request("POST", "/v1/book", {
            "request": codec.request_record(request),
            "match": codec.match_record(match),
        })
        return codec.booking_from(result["booking"])

    def track_all(self, now_s: float) -> int:
        return int(self._request(
            "POST", "/v1/track", {"now_s": now_s})["affected"])

    def cancel(self, ride: Any) -> None:
        self._request("POST", "/v1/cancel", {"ride_id": ride.ride_id})

    def active_rides(self) -> List[Any]:
        result = self._request("GET", "/v1/rides")
        return [codec.ride_from(self.region, state)
                for state in result["rides"]]

    def rollback_count(self) -> int:
        return int(self._request("GET", "/v1/rollbacks")["count"])

    def index_stats(self) -> Dict[str, int]:
        return {k: int(v) for k, v in
                self._request("GET", "/v1/index-stats")["stats"].items()}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
            self._local.conn = None
