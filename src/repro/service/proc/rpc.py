"""Binary RPC framing for process shards: length-prefixed, CRC-checked.

The wire format is the WAL's frame format pointed at a socket instead of a
file (one battle-tested codec for both)::

    +----------------+----------------+-----------------------+
    | length: u32 LE | crc32: u32 LE  | payload (JSON, UTF-8) |
    +----------------+----------------+-----------------------+

Requests carry a monotonically increasing ``id`` (per connection), the
operation name, its arguments, the caller's remaining **deadline** in
milliseconds and — for retriable mutations — an **idempotency key**::

    {"id": 7, "op": "book", "deadline_ms": 450, "idem": "book:12:3",
     "args": {...}}

Responses echo the id: ``{"id": 7, "ok": true, "result": {...}}`` or
``{"id": 7, "ok": false, "error": "BookingError", "message": "..."}``.
Errors round-trip by class name: the client rebuilds the original exception
type for every :class:`~repro.exceptions.XARError` subclass (shard overload
stays shard overload, a stale booking stays a ``BookingError``), so callers
upstack cannot tell a process shard from a thread shard by its failures.

Transport failures are different in kind from remote errors: an EOF,
reset or timeout mid-call raises :class:`~repro.exceptions.RpcTransportError`
with ``request_sent`` recording whether the request bytes reached the
socket.  A sent-but-unanswered mutation may already be in the shard's WAL —
recovery will complete it — so only calls carrying an idempotency key (or
declared read-idempotent) may be retried; the shard's recovered state is
the dedupe source of truth.  :class:`RetryPolicy` bounds those retries and
spaces them with decorrelated jittered backoff.
"""

from __future__ import annotations

import json
import random
import socket
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ... import exceptions as _exceptions
from ...exceptions import (
    RpcProtocolError,
    RpcTransportError,
    ShardOverloadError,
    ShardQuarantinedError,
    XARError,
)

#: Frame prefix: payload length + payload CRC32, both little-endian u32.
_FRAME = struct.Struct("<II")

#: Refuse absurd frames before allocating for them (a corrupt length
#: prefix must not make the peer try to read gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024


def write_frame(sock: socket.socket, record: Dict[str, Any]) -> None:
    """Frame and send one JSON record; raises RpcTransportError on failure."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    framed = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
    try:
        sock.sendall(framed)
    except (OSError, ValueError) as exc:
        raise RpcTransportError(f"send failed: {exc}", request_sent=False) from exc


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout as exc:
            raise RpcTransportError(
                "receive timed out", request_sent=True
            ) from exc
        except (OSError, ValueError) as exc:
            raise RpcTransportError(
                f"receive failed: {exc}", request_sent=True
            ) from exc
        if not chunk:
            raise RpcTransportError("connection closed by peer",
                                    request_sent=True)
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Dict[str, Any]:
    """Receive one frame; CRC and JSON validated.

    Raises :class:`RpcTransportError` on EOF/reset/timeout and
    :class:`RpcProtocolError` on a structurally invalid frame (after which
    the stream cannot be resynchronised and must be closed).
    """
    header = _recv_exact(sock, _FRAME.size)
    length, crc = _FRAME.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RpcProtocolError(
            f"frame length {length} exceeds {MAX_FRAME_BYTES} bytes"
        )
    payload = _recv_exact(sock, length)
    if zlib.crc32(payload) != crc:
        raise RpcProtocolError("frame CRC mismatch")
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RpcProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(record, dict):
        raise RpcProtocolError("frame payload is not a JSON object")
    return record


# ----------------------------------------------------------------------
# Error envelopes
# ----------------------------------------------------------------------
def error_response(request_id: int, exc: BaseException) -> Dict[str, Any]:
    """Serialize an exception into a response envelope."""
    return {
        "id": request_id,
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
        "shard_id": getattr(exc, "shard_id", None),
        "operation": getattr(exc, "operation", None),
    }


def raise_remote_error(response: Dict[str, Any], *, shard_id: int,
                       operation: str) -> None:
    """Rebuild and raise the exception a shard's error envelope names."""
    name = str(response.get("error", "XARError"))
    message = str(response.get("message", ""))
    if name == "ShardQuarantinedError":
        raise ShardQuarantinedError(
            int(response.get("shard_id") or shard_id),
            str(response.get("operation") or operation),
        )
    if name == "ShardOverloadError":
        raise ShardOverloadError(
            int(response.get("shard_id") or shard_id),
            str(response.get("operation") or operation),
        )
    cls = getattr(_exceptions, name, None)
    if isinstance(cls, type) and issubclass(cls, XARError):
        try:
            raise cls(message)
        except TypeError:
            # Class with a structured constructor we cannot rebuild 1:1
            # (e.g. NoPathError(source, target)); degrade to the base class
            # but keep the original name visible in the message.
            raise XARError(f"{name}: {message}") from None
    raise XARError(f"{name}: {message}")


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass
class RetryPolicy:
    """Bounded retry with decorrelated jittered backoff.

    Applies only to transport failures of idempotent calls (reads, or
    mutations carrying an idempotency key).  Remote *errors* are never
    retried here — the shard already decided them deterministically.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry ``attempt`` (1-based), jittered in [1/2, 1]x."""
        ceiling = min(self.backoff_cap_s,
                      self.backoff_base_s * (2.0 ** (attempt - 1)))
        return ceiling * (0.5 + 0.5 * rng.random())


def book_idempotency_key(request_id: int, ride_id: int) -> str:
    """The canonical idempotency key for a booking.

    Keyed on (request, ride): a retried ``book`` after a shard crash finds
    the booking the WAL replay already completed and returns it instead of
    double-applying — the ledger, not a client-side guess, is the dedupe
    source of truth.
    """
    return f"book:{request_id}:{ride_id}"
