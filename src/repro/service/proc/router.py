"""ProcRouter: the EngineAdapter-shaped façade over a process-shard fleet.

Same routing rules as the thread-mode :class:`~repro.service.router.ShardRouter`
— creates go to the shard owning the source cluster, ride ids encode their
home shard in an arithmetic lane, searches fan out to the walkable shards
and k-way-merge, tracking broadcasts behind a monotone watermark — but
every shard call crosses a process boundary through
:meth:`~repro.service.proc.supervisor.ProcShard.rpc`.

Degradation semantics carry over exactly:

* a shard that sheds (queue full) degrades a fan-out search to partial
  results; a *quarantined* shard does the same (``ShardQuarantinedError``
  is a ``ShardOverloadError``), so the router serves around a flapping
  shard without new code;
* a shard that is mid-restart fails searches fast (``wait_live_s=0``) and
  makes mutations wait, bounded by their deadline;
* ``book`` carries an idempotency key, so a booking whose connection died
  mid-call is retried safely: the recovered shard's ledger (rebuilt by WAL
  replay) answers the duplicate with the original record.

Anything that can drive one engine — the load generator, the differential
harness's workloads, the CLI — can drive the process fleet unchanged.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional

from ...core import XAREngine
from ...core.booking import BookingRecord
from ...core.request import RideRequest
from ...core.search import MatchOption
from ...discretization import DiscretizedRegion, region_digest
from ...durability import (
    WriteAheadLog,
    engine_state,
    read_topology,
    recover_engine,
    split_engine_state,
    topology_path,
    write_checkpoint_state,
    write_topology,
)
from ...exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    ReshardError,
    RpcError,
    ShardOverloadError,
    WorkerCrashError,
    XARError,
)
from ...geo import GeoPoint
from ...obs import DEFAULT_LATENCY_BUCKETS_S, FANOUT_BUCKETS, MetricsRegistry
from ..merge import merge_matches
from ..reshard import ReshardConfig
from ..sharding import ShardMap
from . import codec
from .rpc import book_idempotency_key
from .supervisor import ShardSupervisor, SupervisorConfig


class ProcRouter:
    """Sharded ride-matching service over subprocess shards."""

    def __init__(
        self,
        region: DiscretizedRegion,
        config: Optional[SupervisorConfig] = None,
        *,
        supervisor: Optional[ShardSupervisor] = None,
        fanout: str = "local",
        fanout_radius_m: Optional[float] = None,
        search_deadline_s: float = 5.0,
        metrics: Optional[MetricsRegistry] = None,
        reshard: Optional[ReshardConfig] = None,
    ):
        if fanout not in ("local", "all"):
            raise ValueError(f"fanout must be 'local' or 'all', got {fanout!r}")
        self.region = region
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._digest = region_digest(region)
        self._reshard = reshard
        self.reshard_config = reshard
        self._reshard_lock = threading.RLock()
        base_config = (supervisor.config if supervisor is not None
                       else (config or SupervisorConfig()))
        manifest: Optional[Dict[str, Any]] = None
        if supervisor is None:
            run_dir = os.path.abspath(base_config.run_dir)
            manifest = read_topology(
                topology_path(run_dir), expected_digest=self._digest)
            if manifest is not None and reshard is None:
                raise ConfigurationError(
                    f"{run_dir} holds a reshard topology manifest (epoch "
                    f"{manifest.get('epoch')}); reopen the service with "
                    f"reshard=ReshardConfig(max_shards="
                    f"{manifest.get('lane_modulus')})"
                )
            if reshard is not None and reshard.max_shards < base_config.n_shards:
                raise ConfigurationError(
                    f"reshard.max_shards ({reshard.max_shards}) must cover "
                    f"the initial n_shards ({base_config.n_shards})"
                )
            overrides: Dict[int, Dict[str, Any]] = {}
            inactive: List[int] = []
            n_slots: Optional[int] = None
            if manifest is not None:
                overrides, inactive, n_slots = self._manifest_spawn_plan(
                    run_dir, manifest)
            elif reshard is not None:
                overrides = {
                    slot: {"ride_id_start": slot + 1,
                           "ride_id_step": reshard.max_shards}
                    for slot in range(base_config.n_shards)
                }
            supervisor = ShardSupervisor(
                region, base_config, metrics=self.metrics,
                overrides=overrides, inactive=inactive, n_slots=n_slots)
        self.supervisor = supervisor
        self.n_shards = len(supervisor.shards)
        self.shard_map = ShardMap(region, base_config.n_shards)
        self._init_reshard_state(manifest)
        self.fanout = fanout
        self.fanout_radius_m = (
            fanout_radius_m
            if fanout_radius_m is not None
            else region.config.epsilon_m
        )
        self.search_deadline_s = search_deadline_s
        self.name = f"Proc(XAR x{len(self.active_slot_ids())})"
        # Same router-level series as thread mode, so dashboards and CI
        # assertions are mode-agnostic.
        self._c_partial = self.metrics.counter(
            "xar_router_partial_searches_total",
            "Fan-out searches that lost >= 1 shard to shedding but were "
            "still served from the rest (degraded recall, not failure)",
        )
        self._c_search_failures = self.metrics.counter(
            "xar_router_search_failures_total",
            "Per-shard search calls that raised and contributed an empty "
            "batch instead of failing the whole fan-out",
        )
        self._c_shed_searches = self.metrics.counter(
            "xar_router_shed_searches_total",
            "Searches refused outright: every consulted shard shed",
        )
        self._c_ticks = self.metrics.counter(
            "xar_router_track_ticks_total",
            "Tracking ticks by outcome (applied / coalesced / dropped)",
            labels=("outcome",),
        )
        self._h_fanout = self.metrics.histogram(
            "xar_router_fanout_width",
            "Shards consulted per fan-out search",
            buckets=FANOUT_BUCKETS,
        )
        for family in (self._c_partial, self._c_search_failures,
                       self._c_shed_searches, self._h_fanout):
            family.labels()
        for outcome in ("applied", "coalesced", "dropped"):
            self._c_ticks.labels(outcome=outcome)
        self._last_track_s: Optional[float] = None
        self._track_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Reshard state (mirrors the thread-mode ShardRouter's lane tables)
    # ------------------------------------------------------------------
    def _manifest_spawn_plan(self, run_dir: str, manifest: Dict[str, Any]):
        """Spawn-config overrides + inactive slots from a committed topology."""
        reshard = self._reshard
        modulus = int(manifest["lane_modulus"])
        if reshard is not None and reshard.max_shards != modulus:
            raise ConfigurationError(
                f"reshard.max_shards ({reshard.max_shards}) differs from "
                f"the committed lane modulus ({modulus}); lanes are fixed "
                f"for the service's lifetime"
            )
        entries = sorted(manifest["slots"], key=lambda e: int(e["slot"]))
        overrides: Dict[int, Dict[str, Any]] = {}
        inactive: List[int] = []
        for entry in entries:
            slot = int(entry["slot"])
            if not entry.get("active", True):
                inactive.append(slot)
                continue
            spawn: Dict[str, Any] = {
                "ride_id_start": int(entry["lane"]) + 1,
                "ride_id_step": modulus,
            }
            if entry.get("dir"):
                spawn["wal_dir"] = os.path.join(run_dir, entry["dir"])
            overrides[slot] = spawn
        return overrides, inactive, len(entries)

    def _init_reshard_state(self, manifest: Optional[Dict[str, Any]]) -> None:
        reshard = self._reshard
        self._redirect: Dict[int, int] = {}
        self._ride_homes: Dict[int, int] = {}
        if reshard is None:
            self._lane_modulus: Optional[int] = None
            self._slot_lane: List[int] = []
            self._lane_owner: List[int] = []
            self._next_lane = self.n_shards
            self._c_reshard = self._h_reshard = None
            self._c_migrated = self._g_epoch = None
            return
        self._lane_modulus = reshard.max_shards
        if manifest is not None:
            entries = sorted(manifest["slots"], key=lambda e: int(e["slot"]))
            self._slot_lane = [int(e["lane"]) for e in entries]
            self._lane_owner = [int(x) for x in manifest["lane_owner"]]
            self._next_lane = int(manifest["next_lane"])
            self._redirect = {
                int(src): int(dst)
                for src, dst in manifest.get("redirect", {}).items()
            }
            self._ride_homes = {
                int(rid): int(slot)
                for rid, slot in manifest.get("ride_homes", {}).items()
            }
            self.shard_map.restore(
                [int(s) for s in manifest["assignment"]],
                len(entries),
                int(manifest["epoch"]),
            )
        else:
            n = self.supervisor.config.n_shards
            self._slot_lane = list(range(n))
            self._lane_owner = [
                lane if lane < n else 0 for lane in range(self._lane_modulus)
            ]
            self._next_lane = n
        self._c_reshard = self.metrics.counter(
            "xar_reshard_total",
            "Reshard actions executed (topology manifest committed)",
            labels=("action",),
        )
        for action in ("split", "merge"):
            self._c_reshard.labels(action=action)
        self._h_reshard = self.metrics.histogram(
            "xar_reshard_duration_seconds",
            "Wall-clock duration of reshard executions",
            labels=("action",),
            buckets=DEFAULT_LATENCY_BUCKETS_S,
        )
        self._c_migrated = self.metrics.counter(
            "xar_reshard_migrated_rides_total",
            "Rides whose home slot changed in a reshard carve",
        )
        self._c_migrated.labels()
        self._g_epoch = self.metrics.gauge(
            "xar_routing_epoch",
            "Current epoch of the shard routing table",
        )
        self._g_epoch.set(self.shard_map.epoch)

    def _resolve_slot(self, slot: int) -> int:
        while slot in self._redirect:
            slot = self._redirect[slot]
        return slot

    def active_slot_ids(self) -> List[int]:
        if self._reshard is None:
            return list(range(self.n_shards))
        return [
            shard.shard_id
            for shard in self.supervisor.shards
            if shard.shard_id not in self._redirect
        ]

    def _active_shards(self):
        return [self.supervisor.shards[slot]
                for slot in self.active_slot_ids()]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of_ride(self, ride_id: int) -> int:
        if self._reshard is None:
            return (ride_id - 1) % self.n_shards
        home = self._ride_homes.get(ride_id)
        if home is None:
            home = self._lane_owner[(ride_id - 1) % self._lane_modulus]
        return self._resolve_slot(home)

    def shards_for_request(self, request: RideRequest) -> List[int]:
        if self.fanout == "all":
            return self.active_slot_ids()
        raw = self.shard_map.shards_for_request(request, self.fanout_radius_m)
        if self._reshard is None:
            return raw
        seen: List[int] = []
        for slot in raw:
            resolved = self._resolve_slot(slot)
            if resolved not in seen:
                seen.append(resolved)
        return seen

    @property
    def partial_searches(self) -> int:
        return int(self._c_partial.value)

    @property
    def search_failures(self) -> int:
        return int(self._c_search_failures.value)

    @property
    def last_recoveries(self) -> Dict[int, Dict[str, Any]]:
        """Latest per-shard recovery summaries (from respawn handshakes)."""
        return {
            shard.shard_id: shard.last_recovery
            for shard in self._active_shards()
            if shard.last_recovery is not None
        }

    # ------------------------------------------------------------------
    # EngineAdapter protocol
    # ------------------------------------------------------------------
    def create(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
        shift_end_s: Optional[float] = None,
    ) -> Any:
        shard_id = self.shard_map.shard_of_point(source)
        result = self.supervisor.rpc(shard_id, "create", {
            "source": [source.lat, source.lon],
            "destination": [destination.lat, destination.lon],
            "depart_s": depart_s,
            "seats": seats,
            "detour_limit_m": detour_limit_m,
            "shift_end_s": shift_end_s,
        })
        return codec.ride_from(self.region, result["ride"])

    def search(self, request: RideRequest,
               k: Optional[int] = None) -> List[MatchOption]:
        """Fan out and k-way-merge; shed/quarantined/restarting shards
        degrade the search to partial results rather than failing it."""
        shed = 0
        batches: List[List[MatchOption]] = []
        errors: List[BaseException] = []
        shard_ids = self.shards_for_request(request)
        self._h_fanout.observe(len(shard_ids))
        record = codec.request_record(request)
        for shard_id in shard_ids:
            try:
                result = self.supervisor.rpc(
                    shard_id,
                    "search",
                    {"request": record, "k": k},
                    deadline_s=self.search_deadline_s,
                    readonly=True,
                    wait_live_s=0.0,
                )
                batches.append(codec.matches_from(result["matches"]))
            except ShardOverloadError:
                shed += 1
            except (WorkerCrashError, DeadlineExceededError, RpcError,
                    XARError) as exc:
                self._c_search_failures.inc()
                errors.append(exc)
        if shed and (batches or errors):
            self._c_partial.inc()
        if not batches:
            if shed or not errors:
                self._c_shed_searches.inc()
                raise ShardOverloadError(-1, "search")
            raise errors[0]
        return merge_matches(batches, k)

    def book(self, request: RideRequest, match: MatchOption) -> BookingRecord:
        shard_id = self.shard_of_ride(match.ride_id)
        result = self.supervisor.rpc(
            shard_id,
            "book",
            {"request": codec.request_record(request),
             "match": codec.match_record(match)},
            idem=book_idempotency_key(request.request_id, match.ride_id),
        )
        return codec.booking_from(result["booking"])

    def track_all(self, now_s: float) -> int:
        """Broadcast a tracking tick behind the monotone watermark.

        Same commit rule as thread mode: the watermark advances only once
        at least one shard swept, so a tick every shard refused is retried
        (not coalesced away) at the same simulated time.
        """
        with self._track_lock:
            if self._last_track_s is not None and now_s <= self._last_track_s:
                self._c_ticks.labels(outcome="coalesced").inc()
                return 0
            total = 0
            applied = 0
            for shard in self._active_shards():
                try:
                    result = shard.rpc(
                        "track",
                        {"now_s": now_s},
                        idem=f"track:{now_s}",
                        wait_live_s=0.0,
                    )
                except (ShardOverloadError, WorkerCrashError,
                        DeadlineExceededError, RpcError):
                    continue
                total += int(result["affected"])
                applied += 1
            if applied:
                self._last_track_s = now_s
                self._c_ticks.labels(outcome="applied").inc()
            else:
                self._c_ticks.labels(outcome="dropped").inc()
            return total

    def cancel(self, ride: Any) -> None:
        shard_id = self.shard_of_ride(ride.ride_id)
        self.supervisor.rpc(shard_id, "cancel", {"ride_id": ride.ride_id})

    def cancel_booking(self, request_id: int, ride_id: int) -> Any:
        """Cancel one passenger's booking on the ride's home shard.

        Carries an idempotency key like ``book``: a retry whose first
        attempt died mid-call is answered from the recovered shard's
        cancellation ledger instead of un-splicing twice.
        """
        shard_id = self.shard_of_ride(ride_id)
        result = self.supervisor.rpc(
            shard_id,
            "cancel_booking",
            {"request_id": request_id, "ride_id": ride_id},
            idem=f"cancel_booking:{request_id}:{ride_id}",
        )
        return codec.cancellation_from(result["cancellation"])

    def active_rides(self) -> List[Any]:
        rides: List[Any] = []
        for shard in self._active_shards():
            result = shard.rpc("active_rides", readonly=True)
            rides.extend(codec.ride_from(self.region, state)
                         for state in result["rides"])
        return rides

    def rollback_count(self) -> int:
        return sum(
            int(shard.rpc("rollback_count", readonly=True)["count"])
            for shard in self._active_shards()
        )

    def index_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for shard in self._active_shards():
            stats = shard.rpc("index_stats", readonly=True)["stats"]
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    # Service introspection
    # ------------------------------------------------------------------
    def bookings(self) -> List[BookingRecord]:
        records: List[BookingRecord] = []
        for shard in self._active_shards():
            result = shard.rpc("bookings", readonly=True)
            records.extend(codec.booking_from(state)
                           for state in result["bookings"])
        return records

    def find_ride(self, ride_id: int) -> Any:
        shard_id = self.shard_of_ride(ride_id)
        result = self.supervisor.rpc(shard_id, "find_ride",
                                     {"ride_id": ride_id}, readonly=True)
        return codec.ride_from(self.region, result["ride"])

    def audit(self, heal: bool = False) -> Dict[str, Any]:
        per_shard: Dict[int, int] = {}
        healed = 0
        for shard in self._active_shards():
            result = shard.rpc("audit", {"heal": heal})
            per_shard[shard.shard_id] = int(result["violations"])
            healed += int(result["healed"])
        return {
            "violations": sum(per_shard.values()),
            "per_shard": per_shard,
            "healed": healed,
        }

    def checkpoint(self) -> None:
        for shard in self._active_shards():
            shard.rpc("checkpoint")

    def stats(self) -> Dict[str, Any]:
        shard_stats = []
        total_shed = 0
        for shard in self._active_shards():
            try:
                snapshot = shard.rpc("stats", readonly=True, deadline_s=5.0,
                                     wait_live_s=0.0)
            except (ShardOverloadError, WorkerCrashError,
                    DeadlineExceededError, RpcError):
                snapshot = {"unreachable": True}
            snapshot["shard_id"] = shard.shard_id
            snapshot["state"] = shard.state
            snapshot["restarts"] = shard.restarts
            total_shed += sum(snapshot.get("shed", {}).values())
            shard_stats.append(snapshot)
        return {
            "name": self.name,
            "n_shards": len(shard_stats),
            "epoch": self.shard_map.epoch,
            "fanout": self.fanout,
            "fanout_radius_m": self.fanout_radius_m,
            "total_shed": total_shed,
            "partial_searches": self.partial_searches,
            "search_failures": self.search_failures,
            "states": self.supervisor.states(),
            "shards": shard_stats,
        }

    # ------------------------------------------------------------------
    # Elastic resharding (split only; process-mode merge is an open item)
    # ------------------------------------------------------------------
    def shard_loads(self) -> Dict[int, Dict[str, float]]:
        """Per-slot load snapshot for the reshard controller.

        Op counts and queue depth come from each child's ``stats`` RPC;
        p95 service time is approximated by the parent-side RPC round-trip
        histogram (``xar_proc_rpc_latency_seconds``), which includes the
        child's queue wait — exactly the pressure signal we want.
        """
        p95: Dict[int, float] = {}
        family = self.metrics.get("xar_proc_rpc_latency_seconds")
        if family is not None:
            for labels, child in family.collect():
                if getattr(child, "count", 0) > 0:
                    quantile = child.quantile(0.95)
                    if quantile == quantile:  # not NaN
                        slot = int(labels.get("shard", "-1"))
                        p95[slot] = max(p95.get(slot, 0.0), quantile)
        loads: Dict[int, Dict[str, float]] = {}
        for shard in self._active_shards():
            slot = shard.shard_id
            try:
                snapshot = shard.rpc("stats", readonly=True, deadline_s=5.0,
                                     wait_live_s=0.0)
            except (ShardOverloadError, WorkerCrashError,
                    DeadlineExceededError, RpcError):
                snapshot = {}
            loads[slot] = {
                "ops": float(sum(snapshot.get("completed", {}).values())),
                "queue": float(snapshot.get("depth", 0)),
                "p95_s": p95.get(slot, 0.0),
                "rides": float(snapshot.get("rides", 0)),
                "clusters": float(len(self.shard_map.clusters_of_shard(slot))),
            }
        return loads

    def _require_reshard_mode(self) -> None:
        if self._reshard is None:
            raise ReshardError(
                "this service was built without reshard=ReshardConfig(...); "
                "static topologies cannot split"
            )

    def split_shard(self, shard_id: int, *, fault_hook=None,
                    force_stop: bool = False) -> int:
        """Split a hot slot into two processes; returns the new slot id.

        Protocol (same commit point as thread mode — the atomic
        ``topology.json`` replacement):

        1. take the slot down (graceful drain syncs its WAL; ``force_stop``
           SIGKILLs, resharding off the synced prefix like any crash),
        2. recover its engine offline in the parent — restart *is* crash
           recovery, so a split after SIGKILL is just recovery + carve —
        3. carve the state at a load-weighted cluster boundary and write
           both children's checkpoint + WAL header under
           ``shard<k>.g<epoch>/`` directories,
        4. commit the manifest, then swap the routing epoch and respawn the
           left child / spawn the right child from the new directories.

        A crash (or ``fault_hook`` raise) before the commit resumes the old
        generation from its untouched files; after the commit the split
        rolls forward.  Mutations aimed at the slot block in RPC while it
        is down and resume against whichever generation won.
        """
        self._require_reshard_mode()
        with self._reshard_lock:
            slot = self._resolve_slot(shard_id)
            sup = self.supervisor
            if slot >= len(sup.shards) or slot in self._redirect:
                raise ReshardError(f"slot {slot} is not active")
            if self._next_lane >= self._lane_modulus:
                raise ReshardError(
                    f"ride-id lane budget exhausted ({self._lane_modulus} "
                    f"lanes); raise ReshardConfig.max_shards"
                )
            started = time.perf_counter()
            new_slot = len(sup.shards)
            right_lane = self._next_lane
            lane = self._slot_lane[slot]
            generation = self.shard_map.epoch + 1

            def fire(phase: str) -> None:
                if fault_hook is not None:
                    fault_hook(phase)

            old_override = dict(sup.overrides.get(slot, {}))
            old_dir = sup._shard_paths(slot, 0)["wal_dir"]
            committed = False
            try:
                sup.stop_shard_for_reshard(slot, force=force_stop)
                fire("drained")

                def factory() -> XAREngine:
                    return XAREngine(
                        self.region,
                        optimize_insertion=bool(
                            sup.config.optimize_insertion),
                        ride_id_start=lane + 1,
                        ride_id_step=self._lane_modulus,
                    )

                recovered = recover_engine(
                    self.region,
                    os.path.join(old_dir, f"shard{slot}.wal"),
                    os.path.join(old_dir, f"shard{slot}.ckpt"),
                    engine_factory=factory,
                )
                state = engine_state(recovered.engine)
                fire("synced")
                weights: Dict[int, float] = {}
                for ride_state in state["rides"]:
                    lat, lon = ride_state["source"]
                    cluster_id = self.region.cluster_of_point(
                        GeoPoint(lat, lon))
                    if cluster_id is not None:
                        weights[cluster_id] = weights.get(cluster_id, 0.0) + 1.0
                new_assignment, moved_clusters = (
                    self.shard_map.split_assignment(slot, new_slot, weights))
                moved_set = set(moved_clusters)

                def goes_right(ride_state: Dict[str, Any]) -> bool:
                    lat, lon = ride_state["source"]
                    return self.region.cluster_of_point(
                        GeoPoint(lat, lon)) in moved_set

                parent_counters = state["counters"]
                carved = split_engine_state(
                    state,
                    goes_right,
                    left_counters=dict(parent_counters),
                    right_counters={
                        "ride_next": right_lane + 1,
                        "ride_step": self._lane_modulus,
                        "request_next": parent_counters["request_next"],
                    },
                )
                left_dir = os.path.join(
                    sup.run_dir, f"shard{slot}.g{generation}")
                right_dir = os.path.join(
                    sup.run_dir, f"shard{new_slot}.g{generation}")
                for child_slot, child_dir, child_state, child_lane in (
                    (slot, left_dir, carved["left"], lane),
                    (new_slot, right_dir, carved["right"], right_lane),
                ):
                    write_checkpoint_state(
                        os.path.join(child_dir, f"shard{child_slot}.ckpt"),
                        child_state,
                        region_digest=self._digest,
                        shard_id=child_slot,
                        wal_seq=-1,
                    )
                    WriteAheadLog.open(
                        os.path.join(child_dir, f"shard{child_slot}.wal"),
                        shard_id=child_slot,
                        ride_id_start=child_lane + 1,
                        ride_id_step=self._lane_modulus,
                        region_digest=self._digest,
                        fsync_every=sup.config.fsync_every,
                    ).close()
                fire("carved")
                slots_meta = []
                for entry_slot in range(len(sup.shards) + 1):
                    if entry_slot == slot:
                        meta = {"slot": slot, "active": True, "lane": lane,
                                "dir": os.path.basename(left_dir)}
                    elif entry_slot == new_slot:
                        meta = {"slot": new_slot, "active": True,
                                "lane": right_lane,
                                "dir": os.path.basename(right_dir)}
                    else:
                        meta = {
                            "slot": entry_slot,
                            "active": entry_slot not in self._redirect,
                            "lane": self._slot_lane[entry_slot],
                        }
                        entry_dir = sup.overrides.get(entry_slot, {}).get(
                            "wal_dir")
                        if entry_dir:
                            meta["dir"] = os.path.basename(entry_dir)
                    slots_meta.append(meta)
                lane_owner = list(self._lane_owner)
                lane_owner[right_lane] = new_slot
                ride_homes = dict(self._ride_homes)
                for ride_id in carved["moved_rides"]:
                    ride_homes[ride_id] = new_slot
                write_topology(
                    topology_path(sup.run_dir),
                    {
                        "epoch": generation,
                        "lane_modulus": self._lane_modulus,
                        "region_digest": self._digest,
                        "slots": slots_meta,
                        "assignment": list(new_assignment),
                        "lane_owner": lane_owner,
                        "next_lane": right_lane + 1,
                        "redirect": {str(s): d
                                     for s, d in self._redirect.items()},
                        "ride_homes": {str(r): s
                                       for r, s in ride_homes.items()},
                    },
                )
                committed = True
            except BaseException:
                if not committed:
                    # Old files untouched (the carve only read them):
                    # respawn the old generation and surface the error.
                    sup.resume_shard(slot, old_override or None)
                raise
            # --- committed: the manifest IS the new truth; roll forward ---
            hook_error: Optional[BaseException] = None
            try:
                fire("committed")
            except BaseException as exc:  # noqa: BLE001
                hook_error = exc
            modulus = self._lane_modulus
            sup.resume_shard(slot, {
                "wal_dir": left_dir,
                "ride_id_start": lane + 1,
                "ride_id_step": modulus,
            })
            sup.add_shard(new_slot, {
                "wal_dir": right_dir,
                "ride_id_start": right_lane + 1,
                "ride_id_step": modulus,
            })
            self._slot_lane.append(right_lane)
            self._lane_owner[right_lane] = new_slot
            self._next_lane = right_lane + 1
            self._ride_homes.update(
                (ride_id, new_slot) for ride_id in carved["moved_rides"])
            epoch = self.shard_map.swap(new_assignment, len(sup.shards))
            if self._g_epoch is not None:
                self._g_epoch.set(epoch)
            self.n_shards = len(sup.shards)
            self.name = f"Proc(XAR x{len(self.active_slot_ids())})"
            try:
                fire("swapped")
            except BaseException as exc:  # noqa: BLE001
                hook_error = hook_error or exc
            self._c_reshard.labels(action="split").inc()
            self._h_reshard.labels(action="split").observe(
                time.perf_counter() - started)
            self._c_migrated.inc(len(carved["moved_rides"]))
            if hook_error is not None:
                raise hook_error
            return new_slot

    # ------------------------------------------------------------------
    # Chaos + lifecycle
    # ------------------------------------------------------------------
    def crash_shard(self, shard_id: int, *, mid_book: bool = False,
                    kill: bool = True) -> None:
        self.supervisor.crash_shard(shard_id, mid_book=mid_book, kill=kill)

    def wait_all_live(self, timeout_s: float = 30.0) -> bool:
        return self.supervisor.wait_all_live(timeout_s)

    def close(self) -> None:
        self.supervisor.close()

    def __enter__(self) -> "ProcRouter":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
