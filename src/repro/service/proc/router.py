"""ProcRouter: the EngineAdapter-shaped façade over a process-shard fleet.

Same routing rules as the thread-mode :class:`~repro.service.router.ShardRouter`
— creates go to the shard owning the source cluster, ride ids encode their
home shard in an arithmetic lane, searches fan out to the walkable shards
and k-way-merge, tracking broadcasts behind a monotone watermark — but
every shard call crosses a process boundary through
:meth:`~repro.service.proc.supervisor.ProcShard.rpc`.

Degradation semantics carry over exactly:

* a shard that sheds (queue full) degrades a fan-out search to partial
  results; a *quarantined* shard does the same (``ShardQuarantinedError``
  is a ``ShardOverloadError``), so the router serves around a flapping
  shard without new code;
* a shard that is mid-restart fails searches fast (``wait_live_s=0``) and
  makes mutations wait, bounded by their deadline;
* ``book`` carries an idempotency key, so a booking whose connection died
  mid-call is retried safely: the recovered shard's ledger (rebuilt by WAL
  replay) answers the duplicate with the original record.

Anything that can drive one engine — the load generator, the differential
harness's workloads, the CLI — can drive the process fleet unchanged.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from ...core.booking import BookingRecord
from ...core.request import RideRequest
from ...core.search import MatchOption
from ...discretization import DiscretizedRegion
from ...exceptions import (
    DeadlineExceededError,
    RpcError,
    ShardOverloadError,
    WorkerCrashError,
    XARError,
)
from ...geo import GeoPoint
from ...obs import FANOUT_BUCKETS, MetricsRegistry
from ..merge import merge_matches
from ..sharding import ShardMap
from . import codec
from .rpc import book_idempotency_key
from .supervisor import ShardSupervisor, SupervisorConfig


class ProcRouter:
    """Sharded ride-matching service over subprocess shards."""

    def __init__(
        self,
        region: DiscretizedRegion,
        config: Optional[SupervisorConfig] = None,
        *,
        supervisor: Optional[ShardSupervisor] = None,
        fanout: str = "local",
        fanout_radius_m: Optional[float] = None,
        search_deadline_s: float = 5.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if fanout not in ("local", "all"):
            raise ValueError(f"fanout must be 'local' or 'all', got {fanout!r}")
        self.region = region
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if supervisor is None:
            supervisor = ShardSupervisor(region, config, metrics=self.metrics)
        self.supervisor = supervisor
        self.n_shards = supervisor.config.n_shards
        self.shard_map = ShardMap(region, self.n_shards)
        self.fanout = fanout
        self.fanout_radius_m = (
            fanout_radius_m
            if fanout_radius_m is not None
            else region.config.epsilon_m
        )
        self.search_deadline_s = search_deadline_s
        self.name = f"Proc(XAR x{self.n_shards})"
        # Same router-level series as thread mode, so dashboards and CI
        # assertions are mode-agnostic.
        self._c_partial = self.metrics.counter(
            "xar_router_partial_searches_total",
            "Fan-out searches that lost >= 1 shard to shedding but were "
            "still served from the rest (degraded recall, not failure)",
        )
        self._c_search_failures = self.metrics.counter(
            "xar_router_search_failures_total",
            "Per-shard search calls that raised and contributed an empty "
            "batch instead of failing the whole fan-out",
        )
        self._c_shed_searches = self.metrics.counter(
            "xar_router_shed_searches_total",
            "Searches refused outright: every consulted shard shed",
        )
        self._c_ticks = self.metrics.counter(
            "xar_router_track_ticks_total",
            "Tracking ticks by outcome (applied / coalesced / dropped)",
            labels=("outcome",),
        )
        self._h_fanout = self.metrics.histogram(
            "xar_router_fanout_width",
            "Shards consulted per fan-out search",
            buckets=FANOUT_BUCKETS,
        )
        for family in (self._c_partial, self._c_search_failures,
                       self._c_shed_searches, self._h_fanout):
            family.labels()
        for outcome in ("applied", "coalesced", "dropped"):
            self._c_ticks.labels(outcome=outcome)
        self._last_track_s: Optional[float] = None
        self._track_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of_ride(self, ride_id: int) -> int:
        return (ride_id - 1) % self.n_shards

    def shards_for_request(self, request: RideRequest) -> List[int]:
        if self.fanout == "all":
            return list(range(self.n_shards))
        return self.shard_map.shards_for_request(request, self.fanout_radius_m)

    @property
    def partial_searches(self) -> int:
        return int(self._c_partial.value)

    @property
    def search_failures(self) -> int:
        return int(self._c_search_failures.value)

    @property
    def last_recoveries(self) -> Dict[int, Dict[str, Any]]:
        """Latest per-shard recovery summaries (from respawn handshakes)."""
        return {
            shard.shard_id: shard.last_recovery
            for shard in self.supervisor.shards
            if shard.last_recovery is not None
        }

    # ------------------------------------------------------------------
    # EngineAdapter protocol
    # ------------------------------------------------------------------
    def create(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        depart_s: float,
        seats: Optional[int] = None,
        detour_limit_m: Optional[float] = None,
        shift_end_s: Optional[float] = None,
    ) -> Any:
        shard_id = self.shard_map.shard_of_point(source)
        result = self.supervisor.rpc(shard_id, "create", {
            "source": [source.lat, source.lon],
            "destination": [destination.lat, destination.lon],
            "depart_s": depart_s,
            "seats": seats,
            "detour_limit_m": detour_limit_m,
            "shift_end_s": shift_end_s,
        })
        return codec.ride_from(self.region, result["ride"])

    def search(self, request: RideRequest,
               k: Optional[int] = None) -> List[MatchOption]:
        """Fan out and k-way-merge; shed/quarantined/restarting shards
        degrade the search to partial results rather than failing it."""
        shed = 0
        batches: List[List[MatchOption]] = []
        errors: List[BaseException] = []
        shard_ids = self.shards_for_request(request)
        self._h_fanout.observe(len(shard_ids))
        record = codec.request_record(request)
        for shard_id in shard_ids:
            try:
                result = self.supervisor.rpc(
                    shard_id,
                    "search",
                    {"request": record, "k": k},
                    deadline_s=self.search_deadline_s,
                    readonly=True,
                    wait_live_s=0.0,
                )
                batches.append(codec.matches_from(result["matches"]))
            except ShardOverloadError:
                shed += 1
            except (WorkerCrashError, DeadlineExceededError, RpcError,
                    XARError) as exc:
                self._c_search_failures.inc()
                errors.append(exc)
        if shed and (batches or errors):
            self._c_partial.inc()
        if not batches:
            if shed or not errors:
                self._c_shed_searches.inc()
                raise ShardOverloadError(-1, "search")
            raise errors[0]
        return merge_matches(batches, k)

    def book(self, request: RideRequest, match: MatchOption) -> BookingRecord:
        shard_id = self.shard_of_ride(match.ride_id)
        result = self.supervisor.rpc(
            shard_id,
            "book",
            {"request": codec.request_record(request),
             "match": codec.match_record(match)},
            idem=book_idempotency_key(request.request_id, match.ride_id),
        )
        return codec.booking_from(result["booking"])

    def track_all(self, now_s: float) -> int:
        """Broadcast a tracking tick behind the monotone watermark.

        Same commit rule as thread mode: the watermark advances only once
        at least one shard swept, so a tick every shard refused is retried
        (not coalesced away) at the same simulated time.
        """
        with self._track_lock:
            if self._last_track_s is not None and now_s <= self._last_track_s:
                self._c_ticks.labels(outcome="coalesced").inc()
                return 0
            total = 0
            applied = 0
            for shard in self.supervisor.shards:
                try:
                    result = shard.rpc(
                        "track",
                        {"now_s": now_s},
                        idem=f"track:{now_s}",
                        wait_live_s=0.0,
                    )
                except (ShardOverloadError, WorkerCrashError,
                        DeadlineExceededError, RpcError):
                    continue
                total += int(result["affected"])
                applied += 1
            if applied:
                self._last_track_s = now_s
                self._c_ticks.labels(outcome="applied").inc()
            else:
                self._c_ticks.labels(outcome="dropped").inc()
            return total

    def cancel(self, ride: Any) -> None:
        shard_id = self.shard_of_ride(ride.ride_id)
        self.supervisor.rpc(shard_id, "cancel", {"ride_id": ride.ride_id})

    def cancel_booking(self, request_id: int, ride_id: int) -> Any:
        """Cancel one passenger's booking on the ride's home shard.

        Carries an idempotency key like ``book``: a retry whose first
        attempt died mid-call is answered from the recovered shard's
        cancellation ledger instead of un-splicing twice.
        """
        shard_id = self.shard_of_ride(ride_id)
        result = self.supervisor.rpc(
            shard_id,
            "cancel_booking",
            {"request_id": request_id, "ride_id": ride_id},
            idem=f"cancel_booking:{request_id}:{ride_id}",
        )
        return codec.cancellation_from(result["cancellation"])

    def active_rides(self) -> List[Any]:
        rides: List[Any] = []
        for shard in self.supervisor.shards:
            result = shard.rpc("active_rides", readonly=True)
            rides.extend(codec.ride_from(self.region, state)
                         for state in result["rides"])
        return rides

    def rollback_count(self) -> int:
        return sum(
            int(shard.rpc("rollback_count", readonly=True)["count"])
            for shard in self.supervisor.shards
        )

    def index_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for shard in self.supervisor.shards:
            stats = shard.rpc("index_stats", readonly=True)["stats"]
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    # Service introspection
    # ------------------------------------------------------------------
    def bookings(self) -> List[BookingRecord]:
        records: List[BookingRecord] = []
        for shard in self.supervisor.shards:
            result = shard.rpc("bookings", readonly=True)
            records.extend(codec.booking_from(state)
                           for state in result["bookings"])
        return records

    def find_ride(self, ride_id: int) -> Any:
        shard_id = self.shard_of_ride(ride_id)
        result = self.supervisor.rpc(shard_id, "find_ride",
                                     {"ride_id": ride_id}, readonly=True)
        return codec.ride_from(self.region, result["ride"])

    def audit(self, heal: bool = False) -> Dict[str, Any]:
        per_shard: Dict[int, int] = {}
        healed = 0
        for shard in self.supervisor.shards:
            result = shard.rpc("audit", {"heal": heal})
            per_shard[shard.shard_id] = int(result["violations"])
            healed += int(result["healed"])
        return {
            "violations": sum(per_shard.values()),
            "per_shard": per_shard,
            "healed": healed,
        }

    def checkpoint(self) -> None:
        for shard in self.supervisor.shards:
            shard.rpc("checkpoint")

    def stats(self) -> Dict[str, Any]:
        shard_stats = []
        total_shed = 0
        for shard in self.supervisor.shards:
            try:
                snapshot = shard.rpc("stats", readonly=True, deadline_s=5.0,
                                     wait_live_s=0.0)
            except (ShardOverloadError, WorkerCrashError,
                    DeadlineExceededError, RpcError):
                snapshot = {"unreachable": True}
            snapshot["shard_id"] = shard.shard_id
            snapshot["state"] = shard.state
            snapshot["restarts"] = shard.restarts
            total_shed += sum(snapshot.get("shed", {}).values())
            shard_stats.append(snapshot)
        return {
            "name": self.name,
            "n_shards": self.n_shards,
            "fanout": self.fanout,
            "fanout_radius_m": self.fanout_radius_m,
            "total_shed": total_shed,
            "partial_searches": self.partial_searches,
            "search_failures": self.search_failures,
            "states": self.supervisor.states(),
            "shards": shard_stats,
        }

    # ------------------------------------------------------------------
    # Chaos + lifecycle
    # ------------------------------------------------------------------
    def crash_shard(self, shard_id: int, *, mid_book: bool = False,
                    kill: bool = True) -> None:
        self.supervisor.crash_shard(shard_id, mid_book=mid_book, kill=kill)

    def wait_all_live(self, timeout_s: float = 30.0) -> bool:
        return self.supervisor.wait_all_live(timeout_s)

    def close(self) -> None:
        self.supervisor.close()

    def __enter__(self) -> "ProcRouter":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
